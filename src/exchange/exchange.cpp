#include "exchange/exchange.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "telemetry/trace.hpp"

namespace tsn::exchange {

namespace {

constexpr std::int64_t kPicosPerSecond = 1'000'000'000'000;

}  // namespace

// Per-feed-unit packing state.
struct Exchange::Unit {
  Unit(Exchange& owner, std::uint8_t index, net::Ipv4Addr group, net::Ipv4Addr group_b,
       std::size_t mtu)
      : group_(group),
        group_b_(group_b),
        builder_(index, mtu, [this, &owner](std::vector<std::byte> payload,
                                            const proto::pitch::UnitHeader& header) {
          owner.feed_stack_->send_multicast(group_, owner.config_.feed_port, payload);
          ++owner.stats_.feed_datagrams;
          if (owner.config_.dual_publish) {
            // The B line carries the exact same bytes (same unit, same
            // sequence) on a second group: path redundancy, not content.
            owner.feed_stack_->send_multicast(group_b_, owner.config_.feed_port, payload);
            ++owner.stats_.feed_datagrams_b;
          }
          (void)header;
        }) {}

  net::Ipv4Addr group_;
  net::Ipv4Addr group_b_;
  proto::pitch::FrameBuilder builder_;
  bool flush_scheduled = false;
  std::uint32_t last_time_second = 0xffffffff;
};

// One accepted TCP connection: the physical leg of a session. A session
// outlives its connections — each reconnect binds a fresh Connection to the
// same Session.
struct Exchange::Connection {
  net::TcpEndpoint* endpoint = nullptr;
  proto::boe::StreamParser parser;
  sim::Time last_rx;
  // Declared dead (timeout or transport death). Bytes and in-flight matcher
  // events for a dead connection are dropped; the object stays alive as a
  // post-mortem record so scheduled closures can never dangle.
  bool dead = false;
  Session* session = nullptr;  // bound at login
};

// The logical order-entry session: identified by the client-chosen
// session_id, authenticated by its login token, and resumable across
// connection deaths with exactly-once response replay.
struct Exchange::Session {
  std::uint32_t session_id = 0;
  std::uint64_t token = 0;
  std::uint32_t tx_seq = 1;  // next sequenced application message
  bool logged_in = false;
  Connection* conn = nullptr;  // live connection, nullptr while disconnected
  // Every sequenced application message ever sent, verbatim, keyed by its
  // sequence — the replay source. Session-level messages (seq 0) are never
  // journaled. Unbounded by design: a real venue prunes on replay
  // acknowledgement; a sim run is finite.
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> journal;
  // client order id -> exchange order id, for the orders this session owns
  // that are still live.
  std::unordered_map<proto::OrderId, proto::OrderId> open_orders;
  // Every client order id ever accepted, live or terminal: the dedupe set
  // that makes idempotent resubmission safe (a resubmitted id that already
  // executed gets kDuplicateOrderId instead of a second execution).
  std::unordered_set<proto::OrderId> used_client_ids;
};

// Converts book events for one symbol into feed messages and fills.
class Exchange::FeedListener final : public book::BookListener {
 public:
  FeedListener(Exchange& exchange, proto::Symbol symbol, std::uint8_t unit)
      : exchange_(exchange), symbol_(symbol), unit_(unit) {}

  void on_accept(const book::Order& order) override {
    proto::pitch::AddOrder m;
    m.time_offset_ns = exchange_.now_offset_ns();
    m.order_id = order.id;
    m.side = order.side;
    m.quantity = order.quantity;
    m.symbol = symbol_;
    m.price = order.price;
    exchange_.publish(m, unit_);
  }

  void on_execute(const book::Execution& execution) override {
    proto::pitch::OrderExecuted m;
    m.time_offset_ns = exchange_.now_offset_ns();
    m.order_id = execution.resting_id;
    m.executed_quantity = execution.quantity;
    m.execution_id = execution.exec_id;
    exchange_.publish(m, unit_);
    exchange_.notify_fill(execution);
  }

  void on_reduce(proto::OrderId order_id, book::Quantity cancelled) override {
    proto::pitch::ReduceSize m;
    m.time_offset_ns = exchange_.now_offset_ns();
    m.order_id = order_id;
    m.cancelled_quantity = cancelled;
    exchange_.publish(m, unit_);
  }

  void on_delete(proto::OrderId order_id) override {
    proto::pitch::DeleteOrder m;
    m.time_offset_ns = exchange_.now_offset_ns();
    m.order_id = order_id;
    exchange_.publish(m, unit_);
  }

  void on_replace(proto::OrderId order_id, book::Quantity /*new_quantity*/,
                  book::Price /*new_price*/) override {
    // A replace leaves the book and re-enters as a fresh order (losing
    // priority, possibly matching). On the feed that is a delete; the
    // matching engine's subsequent on_execute/on_accept events describe
    // what the re-entry did. Publishing a ModifyOrder *and* a later
    // AddOrder would double-count the order at every consumer.
    proto::pitch::DeleteOrder m;
    m.time_offset_ns = exchange_.now_offset_ns();
    m.order_id = order_id;
    exchange_.publish(m, unit_);
  }

 private:
  Exchange& exchange_;
  proto::Symbol symbol_;
  std::uint8_t unit_;
};

Exchange::Exchange(sim::Scheduler& engine, ExchangeConfig config)
    : engine_(engine), config_(std::move(config)) {
  if (!config_.feed_partitioning) {
    throw std::invalid_argument{"exchange requires a feed partitioning scheme"};
  }
  if (config_.feed_partitioning->partition_count() > 250) {
    throw std::invalid_argument{"at most 250 feed units"};
  }
  host_ = std::make_unique<net::Host>(engine_, config_.name, sim::micros(std::int64_t{1}));
  feed_nic_ = &host_->add_nic("feed", config_.feed_mac, config_.feed_ip);
  order_nic_ = &host_->add_nic("orders", config_.order_mac, config_.order_ip);
  feed_stack_ = std::make_unique<net::NetStack>(*feed_nic_);
  order_stack_ = std::make_unique<net::NetStack>(*order_nic_);

  const auto units = static_cast<std::uint8_t>(config_.feed_partitioning->partition_count());
  units_.reserve(units);
  for (std::uint8_t u = 0; u < units; ++u) {
    units_.push_back(std::make_unique<Unit>(*this, u, unit_group(u), unit_group_b(u),
                                            config_.feed_mtu_payload));
  }

  for (const auto& spec : config_.symbols) {
    const std::uint8_t unit =
        static_cast<std::uint8_t>(config_.feed_partitioning->partition_of(spec.symbol, spec.kind));
    auto listener = std::make_unique<FeedListener>(*this, spec.symbol, unit);
    auto book = std::make_unique<book::OrderBook>(spec.symbol, listener.get());
    // Pre-warm the SoA slabs at startup so the first burst of resting
    // orders never pays mid-update slab growth.
    book->reserve(1'024, 128);
    books_.emplace(spec.symbol, std::move(book));
    listeners_.emplace(spec.symbol, std::move(listener));
    kinds_.emplace(spec.symbol, spec.kind);
  }

  order_stack_->listen_tcp(config_.order_port,
                           [this](net::TcpEndpoint& endpoint) { on_accept_session(endpoint); });
}

Exchange::~Exchange() = default;

std::uint8_t Exchange::unit_count() const noexcept {
  return static_cast<std::uint8_t>(units_.size());
}

net::Ipv4Addr Exchange::unit_group(std::uint8_t unit) const noexcept {
  return net::Ipv4Addr{config_.feed_group_base.value() + unit};
}

std::uint8_t Exchange::unit_of(const proto::Symbol& symbol) const {
  const auto kind_it = kinds_.find(symbol);
  const auto kind = kind_it == kinds_.end() ? proto::InstrumentKind::kEquity : kind_it->second;
  return static_cast<std::uint8_t>(config_.feed_partitioning->partition_of(symbol, kind));
}

book::OrderBook& Exchange::book(const proto::Symbol& symbol) {
  auto it = books_.find(symbol);
  if (it == books_.end()) throw std::out_of_range{"symbol not listed: " + symbol.str()};
  return *it->second;
}

bool Exchange::lists(const proto::Symbol& symbol) const noexcept {
  return books_.contains(symbol);
}

std::uint32_t Exchange::now_seconds() const noexcept {
  return static_cast<std::uint32_t>(engine_.now().picos() / kPicosPerSecond);
}

std::uint32_t Exchange::now_offset_ns() const noexcept {
  return static_cast<std::uint32_t>((engine_.now().picos() % kPicosPerSecond) / 1000);
}

void Exchange::publish(const proto::pitch::Message& message, std::uint8_t unit_index) {
  Unit& unit = *units_.at(unit_index);
  const std::uint32_t second = now_seconds();
  if (unit.last_time_second != second) {
    unit.last_time_second = second;
    unit.builder_.append(proto::pitch::Time{second});
    ++stats_.feed_messages;
  }
  unit.builder_.append(message);
  ++stats_.feed_messages;
  schedule_flush(unit_index);
}

void Exchange::schedule_flush(std::uint8_t unit_index) {
  Unit& unit = *units_.at(unit_index);
  if (unit.flush_scheduled) return;
  unit.flush_scheduled = true;
  // Runs after every event at the current instant: same-instant messages
  // pack into one datagram, quiet-period messages go out alone.
  engine_.schedule_in(sim::Duration::zero(), [this, unit_index] {
    Unit& u = *units_.at(unit_index);
    u.flush_scheduled = false;
    // Each feed datagram flush is a trace origin: the datagram (and every
    // frame replicated from it downstream) carries a fresh trace id, so a
    // tick-to-trade chain can be reconstructed hop by hop.
    if (auto* s = telemetry::sink()) {
      telemetry::TraceScope scope{s->begin_trace(engine_.now())};
      u.builder_.flush();
    } else {
      u.builder_.flush();
    }
  });
}

void Exchange::start_snapshots() {
  if (snapshots_running_) return;
  if (config_.snapshot_interval <= sim::Duration::zero()) {
    throw std::invalid_argument{"snapshot_interval must be positive"};
  }
  snapshots_running_ = true;
  engine_.schedule_in(config_.snapshot_interval, [this] { snapshot_tick(); });
}

void Exchange::snapshot_tick() {
  // One snapshot cycle per unit: begin (with the live resume point), the
  // unit's resting orders, end. Each cycle rides its own datagrams on the
  // snapshot group so receivers never confuse it with the live stream.
  for (std::uint8_t u = 0; u < unit_count(); ++u) {
    proto::pitch::FrameBuilder builder{
        u, config_.feed_mtu_payload,
        [this, u](std::vector<std::byte> payload, const proto::pitch::UnitHeader&) {
          feed_stack_->send_multicast(snapshot_group(u), config_.snapshot_port, payload);
        }};
    builder.append(proto::pitch::SnapshotBegin{u, units_[u]->builder_.next_sequence()});
    std::uint32_t order_count = 0;
    for (const auto& spec : config_.symbols) {
      if (unit_of(spec.symbol) != u) continue;
      books_.at(spec.symbol)->for_each_order([&](const book::Order& order) {
        proto::pitch::AddOrder add;
        add.time_offset_ns = now_offset_ns();
        add.order_id = order.id;
        add.side = order.side;
        add.quantity = order.quantity;
        add.symbol = spec.symbol;
        add.price = order.price;
        builder.append(proto::pitch::Message{add});
        ++order_count;
      });
    }
    builder.append(proto::pitch::SnapshotEnd{u, order_count});
    builder.flush();
    ++snapshots_published_;
  }
  engine_.schedule_in(config_.snapshot_interval, [this] { snapshot_tick(); });
}

void Exchange::start_heartbeats() {
  if (heartbeats_running_) return;
  if (config_.heartbeat_interval <= sim::Duration::zero()) {
    throw std::invalid_argument{"heartbeat_interval must be positive"};
  }
  if (config_.session_timeout <= sim::Duration::zero()) {
    config_.session_timeout = config_.heartbeat_interval * 3;
  }
  heartbeats_running_ = true;
  engine_.schedule_in(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void Exchange::heartbeat_tick() {
  const sim::Time now = engine_.now();
  for (auto& conn : connections_) {
    if (conn->dead || conn->endpoint->state() != net::TcpState::kEstablished) continue;
    const auto idle = now - conn->last_rx;
    if (idle > config_.session_timeout) {
      // A dead counterparty: drop the connection and declare the bound
      // session dead — cancel-on-disconnect (when enabled) pulls its
      // resting orders and journals the cancels for replay at re-login.
      conn->dead = true;
      conn->endpoint->close();
      ++stats_.sessions_timed_out;
      if (conn->session != nullptr && conn->session->conn == conn.get()) {
        declare_session_dead(*conn->session);
      }
      continue;
    }
    if (idle > config_.heartbeat_interval) {
      send_conn(*conn, proto::boe::Heartbeat{});
      ++stats_.heartbeats_sent;
    }
  }
  engine_.schedule_in(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void Exchange::register_metrics(telemetry::Registry& registry, const std::string& prefix) const {
  registry.gauge(prefix + ".feed_messages",
                 [this] { return static_cast<double>(stats_.feed_messages); });
  registry.gauge(prefix + ".feed_datagrams",
                 [this] { return static_cast<double>(stats_.feed_datagrams); });
  registry.gauge(prefix + ".feed_datagrams_b",
                 [this] { return static_cast<double>(stats_.feed_datagrams_b); });
  registry.gauge(prefix + ".orders_received",
                 [this] { return static_cast<double>(stats_.orders_received); });
  registry.gauge(prefix + ".orders_accepted",
                 [this] { return static_cast<double>(stats_.orders_accepted); });
  registry.gauge(prefix + ".orders_rejected",
                 [this] { return static_cast<double>(stats_.orders_rejected); });
  registry.gauge(prefix + ".cancels_received",
                 [this] { return static_cast<double>(stats_.cancels_received); });
  registry.gauge(prefix + ".cancel_rejects",
                 [this] { return static_cast<double>(stats_.cancel_rejects); });
  registry.gauge(prefix + ".fills_sent", [this] { return static_cast<double>(stats_.fills_sent); });
  registry.gauge(prefix + ".heartbeats_sent",
                 [this] { return static_cast<double>(stats_.heartbeats_sent); });
  registry.gauge(prefix + ".sessions_timed_out",
                 [this] { return static_cast<double>(stats_.sessions_timed_out); });
  registry.gauge(prefix + ".sessions_resumed",
                 [this] { return static_cast<double>(stats_.sessions_resumed); });
  registry.gauge(prefix + ".sessions_taken_over",
                 [this] { return static_cast<double>(stats_.sessions_taken_over); });
  registry.gauge(prefix + ".replays_served",
                 [this] { return static_cast<double>(stats_.replays_served); });
  registry.gauge(prefix + ".replayed_messages",
                 [this] { return static_cast<double>(stats_.replayed_messages); });
  registry.gauge(prefix + ".cod_sessions",
                 [this] { return static_cast<double>(stats_.cod_sessions); });
  registry.gauge(prefix + ".cod_orders_cancelled",
                 [this] { return static_cast<double>(stats_.cod_orders_cancelled); });
  registry.gauge(prefix + ".duplicate_client_ids_rejected",
                 [this] { return static_cast<double>(stats_.duplicate_client_ids_rejected); });
  registry.gauge(prefix + ".snapshots_published",
                 [this] { return static_cast<double>(snapshots_published_); });
}

void Exchange::notify_fill(const book::Execution& execution) {
  struct Leg {
    proto::OrderId exchange_id;
    proto::Quantity remaining;
  };
  const Leg legs[2] = {{execution.resting_id, execution.resting_remaining},
                       {execution.aggressive_id, execution.aggressive_remaining}};
  for (const Leg& leg : legs) {
    auto owner_it = order_owner_.find(leg.exchange_id);
    if (owner_it == order_owner_.end()) continue;  // background-driver order
    Session& session = *owner_it->second;
    const auto client_it = exch_to_client_.find(leg.exchange_id);
    if (client_it == exch_to_client_.end()) continue;
    proto::boe::Fill fill;
    fill.client_order_id = client_it->second;
    fill.execution_id = execution.exec_id;
    fill.quantity = execution.quantity;
    fill.price = execution.price;
    fill.leaves_quantity = leg.remaining;
    send_app(session, fill);
    ++stats_.fills_sent;
    if (leg.remaining == 0) {
      session.open_orders.erase(client_it->second);
      order_owner_.erase(owner_it);
      exch_to_client_.erase(client_it);
      order_symbol_.erase(leg.exchange_id);
    }
  }
}

void Exchange::on_accept_session(net::TcpEndpoint& endpoint) {
  auto conn = std::make_unique<Connection>();
  conn->endpoint = &endpoint;
  conn->last_rx = engine_.now();
  Connection* raw = conn.get();
  connections_.push_back(std::move(conn));
  endpoint.set_data_handler([this, raw](std::span<const std::byte> bytes, sim::Time arrival) {
    if (raw->dead) return;  // post-mortem bytes from an already-dead leg
    raw->last_rx = engine_.now();
    raw->parser.feed(bytes);
    while (auto decoded = raw->parser.next()) {
      // Matching-engine latency separates wire arrival from book action.
      const proto::boe::Message message = decoded->message;
      const telemetry::TraceId trace = telemetry::current_trace();
      engine_.schedule_in(config_.matching_latency, [this, raw, message, trace, arrival] {
        // Deliberately no ambient TraceScope here: the matcher is the end
        // of the tick-to-trade chain, so responses and the feed events the
        // match produces are not stamped with the inbound order's trace
        // (feed flushes start traces of their own).
        if (raw->dead) return;  // declared dead while this was in flight
        on_session_message(*raw, message);
        telemetry::record_span(trace, config_.name, telemetry::SpanKind::kMatcher, arrival,
                               engine_.now());
      });
    }
  });
  endpoint.set_closed_handler([this, raw](net::TcpCloseReason) {
    if (raw->dead) return;
    raw->dead = true;
    if (raw->session != nullptr && raw->session->conn == raw) {
      declare_session_dead(*raw->session);
    }
  });
}

void Exchange::send_conn(Connection& conn, const proto::boe::Message& message) {
  conn.endpoint->send(proto::boe::encode(message, 0));
}

void Exchange::send_app(Session& session, const proto::boe::Message& message) {
  const std::uint32_t seq = session.tx_seq++;
  auto bytes = proto::boe::encode(message, seq);
  if (session.conn != nullptr && !session.conn->dead &&
      session.conn->endpoint->state() == net::TcpState::kEstablished) {
    session.conn->endpoint->send(bytes);
  }
  session.journal.emplace_back(seq, std::move(bytes));
}

Exchange::Session* Exchange::find_session(std::uint32_t session_id) noexcept {
  for (auto& session : sessions_) {
    if (session->session_id == session_id) return session.get();
  }
  return nullptr;
}

void Exchange::declare_session_dead(Session& session) {
  session.logged_in = false;
  if (session.conn != nullptr) {
    session.conn->dead = true;
    session.conn = nullptr;
  }
  if (!config_.cancel_on_disconnect || session.open_orders.empty()) return;
  ++stats_.cod_sessions;
  // Sorted sweep: open_orders iteration order is unordered, and the feed
  // deletes + journaled cancels this emits must be byte-identical across
  // replays of the same seed.
  std::vector<proto::OrderId> client_ids;
  client_ids.reserve(session.open_orders.size());
  // tsn-lint: allow(unordered-iter) order-independent: ids sorted before any cancel fires
  for (const auto& [client_id, exchange_id] : session.open_orders) {
    client_ids.push_back(client_id);
  }
  std::sort(client_ids.begin(), client_ids.end());
  for (const proto::OrderId client_id : client_ids) {
    const proto::OrderId exchange_id = session.open_orders.at(client_id);
    const auto symbol_it = order_symbol_.find(exchange_id);
    if (symbol_it != order_symbol_.end()) {
      // cancel() fires the book listener, which publishes the DeleteOrder
      // on the feed — disconnect-driven pulls are market data like any
      // other cancel.
      const auto cancelled = book(symbol_it->second).cancel(exchange_id);
      if (cancelled) {
        send_app(session, proto::boe::OrderCancelled{client_id, *cancelled});
        ++stats_.cod_orders_cancelled;
      }
    }
    order_owner_.erase(exchange_id);
    exch_to_client_.erase(exchange_id);
    order_symbol_.erase(exchange_id);
  }
  session.open_orders.clear();
}

void Exchange::on_session_message(Connection& conn, const proto::boe::Message& message) {
  using namespace proto::boe;
  if (const auto* login = std::get_if<LoginRequest>(&message)) {
    handle_login(conn, *login);
    return;
  }
  if (std::get_if<Heartbeat>(&message) != nullptr) {
    return;  // liveness only: the data handler already refreshed the timer
  }
  if (std::get_if<Logout>(&message) != nullptr) {
    if (conn.session != nullptr) conn.session->logged_in = false;
    return;
  }
  if (const auto* replay = std::get_if<ReplayRequest>(&message)) {
    handle_replay(conn, *replay);
    return;
  }
  if (const auto* order = std::get_if<NewOrder>(&message)) {
    if (conn.session == nullptr) {
      ++stats_.orders_received;
      ++stats_.orders_rejected;
      send_conn(conn, OrderRejected{order->client_order_id, RejectReason::kNotLoggedIn});
      return;
    }
    handle_new_order(*conn.session, *order);
    return;
  }
  if (const auto* cancel = std::get_if<CancelOrder>(&message)) {
    if (conn.session == nullptr) {
      ++stats_.cancels_received;
      ++stats_.cancel_rejects;
      send_conn(conn, CancelRejected{cancel->client_order_id, RejectReason::kTooLateToCancel});
      return;
    }
    handle_cancel(*conn.session, *cancel);
    return;
  }
  if (const auto* modify = std::get_if<ModifyOrder>(&message)) {
    if (conn.session == nullptr) {
      send_conn(conn, CancelRejected{modify->client_order_id, RejectReason::kUnknownOrder});
      return;
    }
    handle_modify(*conn.session, *modify);
    return;
  }
  // Exchange-to-client message types arriving inbound are protocol errors;
  // ignore them (a production gateway would reset the session).
}

void Exchange::handle_login(Connection& conn, const proto::boe::LoginRequest& login) {
  using namespace proto::boe;
  if (login.token == 0) {
    send_conn(conn, LoginRejected{RejectReason::kNotLoggedIn});
    return;
  }
  Session* session = find_session(login.session_id);
  if (session == nullptr) {
    // First login for this session id: create the logical session.
    auto fresh = std::make_unique<Session>();
    fresh->session_id = login.session_id;
    fresh->token = login.token;
    session = fresh.get();
    sessions_.push_back(std::move(fresh));
  } else if (session->token != login.token) {
    send_conn(conn, LoginRejected{RejectReason::kSessionInUse});
    return;
  } else if (session->conn == &conn) {
    // Duplicate login on the same connection: idempotent.
    send_conn(conn, LoginAccepted{});
    return;
  } else if (session->conn != nullptr && !session->conn->dead) {
    // Same credentials on a new connection while the old one still looks
    // alive: the client knows its old leg is gone even if we don't yet
    // (e.g. it aborted without a FIN). Take the session over — crucially
    // WITHOUT cancel-on-disconnect, since the session never died.
    session->conn->dead = true;
    session->conn->session = nullptr;
    session->conn->endpoint->close();
    session->conn = nullptr;
    ++stats_.sessions_taken_over;
  } else {
    ++stats_.sessions_resumed;
  }
  conn.session = session;
  session->conn = &conn;
  session->logged_in = true;
  send_conn(conn, LoginAccepted{});
}

void Exchange::handle_replay(Connection& conn, const proto::boe::ReplayRequest& request) {
  using namespace proto::boe;
  Session* session = conn.session;
  if (session == nullptr) return;  // replay without a login is a protocol error
  ++stats_.replays_served;
  // Journal entries are stored in send order with ascending seqs: replaying
  // the tail > last_seen_seq re-sends the original bytes verbatim, so the
  // client sees exactly the stream it missed — byte-identical, exactly once.
  for (const auto& [seq, bytes] : session->journal) {
    if (seq <= request.last_seen_seq) continue;
    conn.endpoint->send(bytes);
    ++stats_.replayed_messages;
  }
  send_conn(conn, SequenceReset{session->tx_seq});
}

void Exchange::handle_new_order(Session& session, const proto::boe::NewOrder& request) {
  using namespace proto::boe;
  ++stats_.orders_received;
  auto reject = [&](RejectReason reason) {
    ++stats_.orders_rejected;
    send_app(session, OrderRejected{request.client_order_id, reason});
  };
  if (!session.logged_in) return reject(RejectReason::kNotLoggedIn);
  if (!lists(request.symbol)) return reject(RejectReason::kInvalidSymbol);
  if (request.quantity == 0) return reject(RejectReason::kInvalidQuantity);
  if (request.price <= 0) return reject(RejectReason::kInvalidPrice);
  if (session.used_client_ids.contains(request.client_order_id)) {
    // Live OR terminal: the id was used before. This is what makes
    // resubmission after a reconnect idempotent — a resubmitted order whose
    // original already executed gets a reject, never a second execution.
    ++stats_.duplicate_client_ids_rejected;
    return reject(RejectReason::kDuplicateOrderId);
  }
  const proto::OrderId exchange_id = next_order_id();
  ++stats_.orders_accepted;
  OrderAccepted ack;
  ack.client_order_id = request.client_order_id;
  ack.exchange_order_id = exchange_id;
  ack.transact_time_ns = static_cast<std::uint64_t>(engine_.now().picos() / 1000);
  send_app(session, ack);

  session.used_client_ids.insert(request.client_order_id);
  session.open_orders.emplace(request.client_order_id, exchange_id);
  order_owner_.emplace(exchange_id, &session);
  exch_to_client_.emplace(exchange_id, request.client_order_id);
  order_symbol_.emplace(exchange_id, request.symbol);

  auto& target_book = book(request.symbol);
  const book::Order order{exchange_id, request.side, request.price, request.quantity};
  const bool ioc = request.tif == TimeInForce::kImmediateOrCancel;
  const auto outcome = target_book.submit(order, ioc);
  if (outcome.result == book::OrderBook::SubmitResult::kCancelled) {
    // IOC remainder evaporates; tell the client.
    OrderCancelled cancelled;
    cancelled.client_order_id = request.client_order_id;
    cancelled.cancelled_quantity = request.quantity - outcome.filled;
    send_app(session, cancelled);
  }
  // Fully-filled or IOC orders are no longer live.
  if (outcome.result == book::OrderBook::SubmitResult::kFilled ||
      outcome.result == book::OrderBook::SubmitResult::kCancelled) {
    session.open_orders.erase(request.client_order_id);
    order_owner_.erase(exchange_id);
    exch_to_client_.erase(exchange_id);
    order_symbol_.erase(exchange_id);
  }
}

void Exchange::handle_cancel(Session& session, const proto::boe::CancelOrder& request) {
  using namespace proto::boe;
  ++stats_.cancels_received;
  const auto it = session.open_orders.find(request.client_order_id);
  if (it == session.open_orders.end()) {
    // Unknown or already filled — the §2 cancel/fill race lands here.
    ++stats_.cancel_rejects;
    send_app(session, CancelRejected{request.client_order_id, RejectReason::kTooLateToCancel});
    return;
  }
  const proto::OrderId exchange_id = it->second;
  // Find the book holding the order: sessions don't say, so consult the
  // owner map's symbol via a linear scan fallback. To keep this O(1) we
  // track symbols alongside; see order_symbol_.
  const auto symbol_it = order_symbol_.find(exchange_id);
  if (symbol_it == order_symbol_.end()) {
    ++stats_.cancel_rejects;
    send_app(session, CancelRejected{request.client_order_id, RejectReason::kUnknownOrder});
    return;
  }
  auto cancelled = book(symbol_it->second).cancel(exchange_id);
  if (!cancelled) {
    ++stats_.cancel_rejects;
    send_app(session, CancelRejected{request.client_order_id, RejectReason::kTooLateToCancel});
    return;
  }
  send_app(session, OrderCancelled{request.client_order_id, *cancelled});
  session.open_orders.erase(it);
  order_owner_.erase(exchange_id);
  exch_to_client_.erase(exchange_id);
  order_symbol_.erase(exchange_id);
}

void Exchange::handle_modify(Session& session, const proto::boe::ModifyOrder& request) {
  using namespace proto::boe;
  const auto it = session.open_orders.find(request.client_order_id);
  if (it == session.open_orders.end()) {
    send_app(session, CancelRejected{request.client_order_id, RejectReason::kUnknownOrder});
    return;
  }
  const proto::OrderId exchange_id = it->second;
  const auto symbol_it = order_symbol_.find(exchange_id);
  if (symbol_it == order_symbol_.end() ||
      !book(symbol_it->second).replace(exchange_id, request.quantity, request.price)) {
    send_app(session, CancelRejected{request.client_order_id, RejectReason::kUnknownOrder});
    return;
  }
  send_app(session, OrderModified{request.client_order_id, request.quantity, request.price});
}

}  // namespace tsn::exchange
