#include "exchange/exchange.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "telemetry/trace.hpp"

namespace tsn::exchange {

namespace {

constexpr std::int64_t kPicosPerSecond = 1'000'000'000'000;

}  // namespace

// Per-feed-unit packing state.
struct Exchange::Unit {
  Unit(Exchange& owner, std::uint8_t index, net::Ipv4Addr group, net::Ipv4Addr group_b,
       std::size_t mtu)
      : group_(group),
        group_b_(group_b),
        builder_(index, mtu, [this, &owner](std::vector<std::byte> payload,
                                            const proto::pitch::UnitHeader& header) {
          if (owner.feed_muted_) {
            // Hot standby: the datagram is fully built (message sequences
            // advanced) but never transmitted. At promotion the unmuted
            // builder continues the stream exactly where the primary's left
            // off, so A/B consumers see one continuous feed.
            ++owner.stats_.feed_datagrams_muted;
            (void)header;
            return;
          }
          owner.feed_stack_->send_multicast(group_, owner.config_.feed_port, payload);
          ++owner.stats_.feed_datagrams;
          if (owner.config_.dual_publish) {
            // The B line carries the exact same bytes (same unit, same
            // sequence) on a second group: path redundancy, not content.
            owner.feed_stack_->send_multicast(group_b_, owner.config_.feed_port, payload);
            ++owner.stats_.feed_datagrams_b;
          }
          (void)header;
        }) {}

  net::Ipv4Addr group_;
  net::Ipv4Addr group_b_;
  proto::pitch::FrameBuilder builder_;
  bool flush_scheduled = false;
  std::uint32_t last_time_second = 0xffffffff;
};

// One accepted connection: the physical leg of a session — a TcpEndpoint
// for real legs, a DirectClient for in-process population-scale legs. A
// session outlives its connections — each reconnect binds a fresh
// Connection to the same pooled session row. All logical session state
// (journal, open orders, dedupe, tx_seq) lives in the SessionStore.
struct Exchange::Connection {
  net::TcpEndpoint* endpoint = nullptr;  // null for direct connections
  DirectClient* direct = nullptr;
  std::uint32_t index = 0;  // position in connections_
  proto::boe::StreamParser parser;
  sim::Time last_rx;
  // Declared dead (timeout or transport death). Bytes and in-flight matcher
  // events for a dead connection are dropped; the object stays alive as a
  // post-mortem record so scheduled closures can never dangle.
  bool dead = false;
  std::uint32_t session = SessionStore::kNullSlot;  // store slot, bound at login
  // Links for the unbound-live-connections sweep list.
  std::uint32_t live_prev = SessionStore::kNullSlot;
  std::uint32_t live_next = SessionStore::kNullSlot;
  bool in_unbound_list = false;
};

// Converts book events for one symbol into feed messages and fills.
class Exchange::FeedListener final : public book::BookListener {
 public:
  FeedListener(Exchange& exchange, proto::Symbol symbol, std::uint8_t unit)
      : exchange_(exchange), symbol_(symbol), unit_(unit) {}

  void on_accept(const book::Order& order) override {
    proto::pitch::AddOrder m;
    m.time_offset_ns = exchange_.now_offset_ns();
    m.order_id = order.id;
    m.side = order.side;
    m.quantity = order.quantity;
    m.symbol = symbol_;
    m.price = order.price;
    exchange_.publish(m, unit_);
  }

  void on_execute(const book::Execution& execution) override {
    proto::pitch::OrderExecuted m;
    m.time_offset_ns = exchange_.now_offset_ns();
    m.order_id = execution.resting_id;
    m.executed_quantity = execution.quantity;
    m.execution_id = execution.exec_id;
    exchange_.publish(m, unit_);
    exchange_.notify_fill(execution);
  }

  void on_reduce(proto::OrderId order_id, book::Quantity cancelled) override {
    proto::pitch::ReduceSize m;
    m.time_offset_ns = exchange_.now_offset_ns();
    m.order_id = order_id;
    m.cancelled_quantity = cancelled;
    exchange_.publish(m, unit_);
  }

  void on_delete(proto::OrderId order_id) override {
    proto::pitch::DeleteOrder m;
    m.time_offset_ns = exchange_.now_offset_ns();
    m.order_id = order_id;
    exchange_.publish(m, unit_);
  }

  void on_replace(proto::OrderId order_id, book::Quantity /*new_quantity*/,
                  book::Price /*new_price*/) override {
    // A replace leaves the book and re-enters as a fresh order (losing
    // priority, possibly matching). On the feed that is a delete; the
    // matching engine's subsequent on_execute/on_accept events describe
    // what the re-entry did. Publishing a ModifyOrder *and* a later
    // AddOrder would double-count the order at every consumer.
    proto::pitch::DeleteOrder m;
    m.time_offset_ns = exchange_.now_offset_ns();
    m.order_id = order_id;
    exchange_.publish(m, unit_);
  }

 private:
  Exchange& exchange_;
  proto::Symbol symbol_;
  std::uint8_t unit_;
};

Exchange::Exchange(sim::Scheduler& engine, ExchangeConfig config)
    : engine_(engine),
      config_(std::move(config)),
      store_(SessionStoreConfig{config_.session_shards}) {
  if (!config_.feed_partitioning) {
    throw std::invalid_argument{"exchange requires a feed partitioning scheme"};
  }
  if (config_.feed_partitioning->partition_count() > 250) {
    throw std::invalid_argument{"at most 250 feed units"};
  }
  host_ = std::make_unique<net::Host>(engine_, config_.name, sim::micros(std::int64_t{1}));
  feed_nic_ = &host_->add_nic("feed", config_.feed_mac, config_.feed_ip);
  order_nic_ = &host_->add_nic("orders", config_.order_mac, config_.order_ip);
  feed_stack_ = std::make_unique<net::NetStack>(*feed_nic_);
  order_stack_ = std::make_unique<net::NetStack>(*order_nic_);

  const auto units = static_cast<std::uint8_t>(config_.feed_partitioning->partition_count());
  units_.reserve(units);
  for (std::uint8_t u = 0; u < units; ++u) {
    units_.push_back(std::make_unique<Unit>(*this, u, unit_group(u), unit_group_b(u),
                                            config_.feed_mtu_payload));
  }

  for (const auto& spec : config_.symbols) {
    const std::uint8_t unit =
        static_cast<std::uint8_t>(config_.feed_partitioning->partition_of(spec.symbol, spec.kind));
    auto listener = std::make_unique<FeedListener>(*this, spec.symbol, unit);
    auto book = std::make_unique<book::OrderBook>(spec.symbol, listener.get());
    // Pre-warm the SoA slabs at startup so the first burst of resting
    // orders never pays mid-update slab growth.
    book->reserve(1'024, 128);
    symbol_idx_.emplace(spec.symbol, static_cast<std::uint16_t>(book_ptrs_.size()));
    book_ptrs_.push_back(book.get());
    books_.emplace(spec.symbol, std::move(book));
    listeners_.emplace(spec.symbol, std::move(listener));
    kinds_.emplace(spec.symbol, spec.kind);
  }

  if (config_.expected_sessions > 0) {
    store_.reserve(config_.expected_sessions, config_.expected_open_orders,
                   config_.expected_journal_bytes);
    connections_.reserve(config_.expected_sessions + 16);
    scratch_sweep_.reserve(
        (2 * config_.expected_sessions) / std::max<std::uint32_t>(1, store_.shard_count()) + 16);
  }
  scratch_tx_.reserve(64);
  scratch_cod_ids_.reserve(64);

  order_stack_->listen_tcp(config_.order_port,
                           [this](net::TcpEndpoint& endpoint) { on_accept_session(endpoint); });
}

Exchange::~Exchange() = default;

std::uint8_t Exchange::unit_count() const noexcept {
  return static_cast<std::uint8_t>(units_.size());
}

net::Ipv4Addr Exchange::unit_group(std::uint8_t unit) const noexcept {
  return net::Ipv4Addr{config_.feed_group_base.value() + unit};
}

std::uint8_t Exchange::unit_of(const proto::Symbol& symbol) const {
  const auto kind_it = kinds_.find(symbol);
  const auto kind = kind_it == kinds_.end() ? proto::InstrumentKind::kEquity : kind_it->second;
  return static_cast<std::uint8_t>(config_.feed_partitioning->partition_of(symbol, kind));
}

book::OrderBook& Exchange::book(const proto::Symbol& symbol) {
  auto it = books_.find(symbol);
  if (it == books_.end()) throw std::out_of_range{"symbol not listed: " + symbol.str()};
  return *it->second;
}

bool Exchange::lists(const proto::Symbol& symbol) const noexcept {
  return books_.contains(symbol);
}

std::uint32_t Exchange::now_seconds() const noexcept {
  return static_cast<std::uint32_t>(now_ps() / kPicosPerSecond);
}

std::uint32_t Exchange::now_offset_ns() const noexcept {
  return static_cast<std::uint32_t>((now_ps() % kPicosPerSecond) / 1000);
}

void Exchange::publish(const proto::pitch::Message& message, std::uint8_t unit_index) {
  Unit& unit = *units_.at(unit_index);
  const std::uint32_t second = now_seconds();
  if (unit.last_time_second != second) {
    unit.last_time_second = second;
    unit.builder_.append(proto::pitch::Time{second});
    ++stats_.feed_messages;
  }
  unit.builder_.append(message);
  ++stats_.feed_messages;
  schedule_flush(unit_index);
}

void Exchange::schedule_flush(std::uint8_t unit_index) {
  Unit& unit = *units_.at(unit_index);
  if (unit.flush_scheduled) return;
  unit.flush_scheduled = true;
  // Runs after every event at the current instant: same-instant messages
  // pack into one datagram, quiet-period messages go out alone.
  engine_.schedule_in(sim::Duration::zero(), [this, unit_index] {
    Unit& u = *units_.at(unit_index);
    u.flush_scheduled = false;
    if (halted_) return;  // a crashed/fenced process emits nothing further
    // Each feed datagram flush is a trace origin: the datagram (and every
    // frame replicated from it downstream) carries a fresh trace id, so a
    // tick-to-trade chain can be reconstructed hop by hop.
    if (auto* s = telemetry::sink()) {
      telemetry::TraceScope scope{s->begin_trace(engine_.now())};
      u.builder_.flush();
    } else {
      u.builder_.flush();
    }
  });
}

void Exchange::start_snapshots() {
  if (snapshots_running_) return;
  if (config_.snapshot_interval <= sim::Duration::zero()) {
    throw std::invalid_argument{"snapshot_interval must be positive"};
  }
  snapshots_running_ = true;
  engine_.schedule_in(config_.snapshot_interval, [this] { snapshot_tick(); });
}

void Exchange::snapshot_tick() {
  if (halted_) return;  // stops the cycle; nothing reschedules it
  // One snapshot cycle per unit: begin (with the live resume point), the
  // unit's resting orders, end. Each cycle rides its own datagrams on the
  // snapshot group so receivers never confuse it with the live stream.
  for (std::uint8_t u = 0; u < unit_count(); ++u) {
    proto::pitch::FrameBuilder builder{
        u, config_.feed_mtu_payload,
        [this, u](std::vector<std::byte> payload, const proto::pitch::UnitHeader&) {
          feed_stack_->send_multicast(snapshot_group(u), config_.snapshot_port, payload);
        }};
    builder.append(proto::pitch::SnapshotBegin{u, units_[u]->builder_.next_sequence()});
    std::uint32_t order_count = 0;
    for (const auto& spec : config_.symbols) {
      if (unit_of(spec.symbol) != u) continue;
      books_.at(spec.symbol)->for_each_order([&](const book::Order& order) {
        proto::pitch::AddOrder add;
        add.time_offset_ns = now_offset_ns();
        add.order_id = order.id;
        add.side = order.side;
        add.quantity = order.quantity;
        add.symbol = spec.symbol;
        add.price = order.price;
        builder.append(proto::pitch::Message{add});
        ++order_count;
      });
    }
    builder.append(proto::pitch::SnapshotEnd{u, order_count});
    builder.flush();
    ++snapshots_published_;
  }
  engine_.schedule_in(config_.snapshot_interval, [this] { snapshot_tick(); });
}

void Exchange::start_heartbeats() {
  if (heartbeats_running_) return;
  if (config_.heartbeat_interval <= sim::Duration::zero()) {
    throw std::invalid_argument{"heartbeat_interval must be positive"};
  }
  if (config_.session_timeout <= sim::Duration::zero()) {
    config_.session_timeout = config_.heartbeat_interval * 3;
  }
  heartbeats_running_ = true;
  engine_.schedule_in(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void Exchange::check_liveness(Connection& conn, sim::Time now) {
  const auto idle = now - conn.last_rx;
  if (idle > config_.session_timeout) {
    // A dead counterparty: drop the connection and declare the bound
    // session dead — cancel-on-disconnect (when enabled) pulls its
    // resting orders and journals the cancels for replay at re-login.
    conn.dead = true;
    if (conn.in_unbound_list) unlink_unbound(conn);
    close_leg(conn);
    ++stats_.sessions_timed_out;
    if (conn.session != SessionStore::kNullSlot && store_.conn(conn.session) == conn.index) {
      declare_session_dead(conn.session);
    }
    return;
  }
  if (idle > config_.heartbeat_interval) {
    send_conn(conn, proto::boe::Heartbeat{});
    ++stats_.heartbeats_sent;
  }
}

void Exchange::heartbeat_tick() {
  if (halted_) return;  // stops liveness sweeps; nothing reschedules them
  const sim::Time now = engine_.now();
  if (!config_.sharded_liveness_sweep) {
    // Legacy sweep: every connection, every tick — PR 5's exact semantics.
    for (auto& conn : connections_) {
      if (conn->dead) continue;
      if (conn->endpoint != nullptr && conn->endpoint->state() != net::TcpState::kEstablished) {
        continue;
      }
      check_liveness(*conn, now);
    }
  } else {
    // O(shard) sweep: pre-login legs every tick (they are few and
    // short-lived), bound sessions one directory shard per tick in bind
    // order. Collect first — a timeout kill unbinds mid-walk.
    for (std::uint32_t ci = unbound_head_; ci != SessionStore::kNullSlot;) {
      Connection& conn = *connections_[ci];
      ci = conn.live_next;  // the kill path unlinks `conn`
      if (conn.dead) continue;
      if (conn.endpoint != nullptr && conn.endpoint->state() != net::TcpState::kEstablished) {
        continue;
      }
      check_liveness(conn, now);
    }
    const std::uint32_t shard = sweep_cursor_++ & (store_.shard_count() - 1);
    scratch_sweep_.clear();
    store_.for_each_connected(shard,
                              [this](std::uint32_t slot) { scratch_sweep_.push_back(slot); });
    for (const std::uint32_t slot : scratch_sweep_) {
      const std::uint32_t ci = store_.conn(slot);
      if (ci == SessionStore::kNullSlot) continue;
      Connection& conn = *connections_[ci];
      if (conn.dead) continue;
      if (conn.endpoint != nullptr && conn.endpoint->state() != net::TcpState::kEstablished) {
        continue;
      }
      check_liveness(conn, now);
    }
  }
  engine_.schedule_in(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void Exchange::register_metrics(telemetry::Registry& registry, const std::string& prefix) const {
  registry.gauge(prefix + ".feed_messages",
                 [this] { return static_cast<double>(stats_.feed_messages); });
  registry.gauge(prefix + ".feed_datagrams",
                 [this] { return static_cast<double>(stats_.feed_datagrams); });
  registry.gauge(prefix + ".feed_datagrams_b",
                 [this] { return static_cast<double>(stats_.feed_datagrams_b); });
  registry.gauge(prefix + ".feed_datagrams_muted",
                 [this] { return static_cast<double>(stats_.feed_datagrams_muted); });
  registry.gauge(prefix + ".orders_received",
                 [this] { return static_cast<double>(stats_.orders_received); });
  registry.gauge(prefix + ".orders_accepted",
                 [this] { return static_cast<double>(stats_.orders_accepted); });
  registry.gauge(prefix + ".orders_rejected",
                 [this] { return static_cast<double>(stats_.orders_rejected); });
  registry.gauge(prefix + ".cancels_received",
                 [this] { return static_cast<double>(stats_.cancels_received); });
  registry.gauge(prefix + ".cancel_rejects",
                 [this] { return static_cast<double>(stats_.cancel_rejects); });
  registry.gauge(prefix + ".fills_sent", [this] { return static_cast<double>(stats_.fills_sent); });
  registry.gauge(prefix + ".heartbeats_sent",
                 [this] { return static_cast<double>(stats_.heartbeats_sent); });
  registry.gauge(prefix + ".sessions_timed_out",
                 [this] { return static_cast<double>(stats_.sessions_timed_out); });
  registry.gauge(prefix + ".sessions_resumed",
                 [this] { return static_cast<double>(stats_.sessions_resumed); });
  registry.gauge(prefix + ".sessions_taken_over",
                 [this] { return static_cast<double>(stats_.sessions_taken_over); });
  registry.gauge(prefix + ".replays_served",
                 [this] { return static_cast<double>(stats_.replays_served); });
  registry.gauge(prefix + ".replayed_messages",
                 [this] { return static_cast<double>(stats_.replayed_messages); });
  registry.gauge(prefix + ".cod_sessions",
                 [this] { return static_cast<double>(stats_.cod_sessions); });
  registry.gauge(prefix + ".cod_orders_cancelled",
                 [this] { return static_cast<double>(stats_.cod_orders_cancelled); });
  registry.gauge(prefix + ".duplicate_client_ids_rejected",
                 [this] { return static_cast<double>(stats_.duplicate_client_ids_rejected); });
  registry.gauge(prefix + ".snapshots_published",
                 [this] { return static_cast<double>(snapshots_published_); });
  registry.gauge(prefix + ".sessions_live",
                 [this] { return static_cast<double>(store_.session_count()); });
  registry.gauge(prefix + ".session_open_orders",
                 [this] { return static_cast<double>(store_.open_orders_total()); });
  registry.gauge(prefix + ".journal_appends",
                 [this] { return static_cast<double>(store_.stats().journal_appends); });
  registry.gauge(prefix + ".journal_flushes",
                 [this] { return static_cast<double>(store_.stats().journal_flushes); });
  registry.gauge(prefix + ".journal_bytes",
                 [this] { return static_cast<double>(store_.stats().journal_bytes); });
}

// tsn-lint: hotpath
void Exchange::notify_fill(const book::Execution& execution) {
  struct Leg {
    proto::OrderId exchange_id;
    proto::Quantity remaining;
  };
  const Leg legs[2] = {{execution.resting_id, execution.resting_remaining},
                       {execution.aggressive_id, execution.aggressive_remaining}};
  for (const Leg& leg : legs) {
    const std::uint32_t order = store_.find_by_exchange(leg.exchange_id);
    if (order == SessionStore::kNullSlot) continue;  // background-driver order
    const std::uint32_t session = store_.order_session(order);
    proto::boe::Fill fill;
    fill.client_order_id = store_.order_client_id(order);
    fill.execution_id = execution.exec_id;
    fill.quantity = execution.quantity;
    fill.price = execution.price;
    fill.leaves_quantity = leg.remaining;
    send_app(session, fill);
    ++stats_.fills_sent;
    if (leg.remaining == 0) store_.close_order(order);
  }
}

void Exchange::link_unbound(Connection& conn) noexcept {
  conn.live_prev = unbound_tail_;
  conn.live_next = SessionStore::kNullSlot;
  if (unbound_tail_ != SessionStore::kNullSlot) {
    connections_[unbound_tail_]->live_next = conn.index;
  } else {
    unbound_head_ = conn.index;
  }
  unbound_tail_ = conn.index;
  conn.in_unbound_list = true;
}

void Exchange::unlink_unbound(Connection& conn) noexcept {
  if (!conn.in_unbound_list) return;
  if (conn.live_prev != SessionStore::kNullSlot) {
    connections_[conn.live_prev]->live_next = conn.live_next;
  } else {
    unbound_head_ = conn.live_next;
  }
  if (conn.live_next != SessionStore::kNullSlot) {
    connections_[conn.live_next]->live_prev = conn.live_prev;
  } else {
    unbound_tail_ = conn.live_prev;
  }
  conn.live_prev = SessionStore::kNullSlot;
  conn.live_next = SessionStore::kNullSlot;
  conn.in_unbound_list = false;
}

void Exchange::close_leg(Connection& conn) {
  if (conn.endpoint != nullptr) {
    conn.endpoint->close();
  } else if (conn.direct != nullptr) {
    conn.direct->on_direct_closed(conn.index);
  }
}

void Exchange::send_bytes(Connection& conn, std::span<const std::byte> bytes) {
  if (conn.endpoint != nullptr) {
    conn.endpoint->send(bytes);
  } else {
    conn.direct->on_direct_bytes(conn.index, bytes);
  }
}

std::uint32_t Exchange::open_direct(DirectClient& client) {
  auto conn = std::make_unique<Connection>();
  conn->direct = &client;
  conn->index = static_cast<std::uint32_t>(connections_.size());
  conn->last_rx = engine_.now();
  connections_.push_back(std::move(conn));
  link_unbound(*connections_.back());
  return connections_.back()->index;
}

void Exchange::deliver_direct(std::uint32_t conn, const proto::boe::Message& message) {
  Connection& c = *connections_.at(conn);
  if (c.dead) return;
  c.last_rx = engine_.now();
  // Same matcher latency as the TCP path; dead-leg drop re-checked at the
  // matcher instant so post-mortem messages can never act.
  engine_.schedule_in(config_.matching_latency, [this, conn, message] {
    Connection& cc = *connections_[conn];
    if (cc.dead) return;
    on_session_message(cc, message);
  });
}

void Exchange::close_direct(std::uint32_t conn) {
  Connection& c = *connections_.at(conn);
  if (c.dead) return;
  c.dead = true;
  if (c.in_unbound_list) unlink_unbound(c);
  if (c.session != SessionStore::kNullSlot && store_.conn(c.session) == c.index) {
    declare_session_dead(c.session);
  }
}

void Exchange::on_accept_session(net::TcpEndpoint& endpoint) {
  if (halted_ || !accepting_) {
    // A dead process's kernel (or a fenced/following standby) refuses the
    // session: FIN right back so the gateway fails over to its next
    // endpoint instead of waiting out a timeout.
    endpoint.close();
    return;
  }
  auto conn = std::make_unique<Connection>();
  conn->endpoint = &endpoint;
  conn->index = static_cast<std::uint32_t>(connections_.size());
  conn->last_rx = engine_.now();
  Connection* raw = conn.get();
  connections_.push_back(std::move(conn));
  link_unbound(*raw);
  endpoint.set_data_handler([this, raw](std::span<const std::byte> bytes, sim::Time arrival) {
    if (raw->dead) return;  // post-mortem bytes from an already-dead leg
    raw->last_rx = engine_.now();
    raw->parser.feed(bytes);
    while (auto decoded = raw->parser.next()) {
      // Matching-engine latency separates wire arrival from book action.
      const proto::boe::Message message = decoded->message;
      const telemetry::TraceId trace = telemetry::current_trace();
      engine_.schedule_in(config_.matching_latency, [this, raw, message, trace, arrival] {
        // Deliberately no ambient TraceScope here: the matcher is the end
        // of the tick-to-trade chain, so responses and the feed events the
        // match produces are not stamped with the inbound order's trace
        // (feed flushes start traces of their own).
        if (raw->dead) return;  // declared dead while this was in flight
        on_session_message(*raw, message);
        telemetry::record_span(trace, config_.name, telemetry::SpanKind::kMatcher, arrival,
                               engine_.now());
      });
    }
  });
  endpoint.set_closed_handler([this, raw](net::TcpCloseReason) {
    if (raw->dead) return;
    raw->dead = true;
    if (raw->in_unbound_list) unlink_unbound(*raw);
    if (raw->session != SessionStore::kNullSlot && store_.conn(raw->session) == raw->index) {
      declare_session_dead(raw->session);
    }
  });
}

void Exchange::send_conn(Connection& conn, const proto::boe::Message& message) {
  scratch_tx_.clear();
  proto::boe::encode_into(message, 0, scratch_tx_);
  send_bytes(conn, scratch_tx_);
}

// tsn-lint: hotpath
void Exchange::send_app(std::uint32_t session, const proto::boe::Message& message) {
  const std::uint32_t seq = store_.next_seq(session);
  scratch_tx_.clear();
  proto::boe::encode_into(message, seq, scratch_tx_);
  const std::uint32_t ci = store_.conn(session);
  if (ci != SessionStore::kNullSlot) {
    Connection& conn = *connections_[ci];
    if (!conn.dead &&
        (conn.endpoint == nullptr || conn.endpoint->state() == net::TcpState::kEstablished)) {
      send_bytes(conn, scratch_tx_);
    }
  }
  store_.journal_stage(session, seq, scratch_tx_);
  schedule_journal_flush();
}

void Exchange::schedule_journal_flush() {
  if (journal_flush_scheduled_) return;
  journal_flush_scheduled_ = true;
  // Runs after the current event cascade: every message staged at this
  // instant — across all sessions — commits in one arena append.
  engine_.schedule_in(sim::Duration::zero(), [this] {
    journal_flush_scheduled_ = false;
    store_.journal_flush();
  });
}

void Exchange::declare_session_dead(std::uint32_t session) {
  // Replicate the death verdict itself (not the cancels it causes): the
  // backup runs the same deterministic sweep and journals the same bytes.
  if (input_listener_ != nullptr) {
    input_listener_->on_admitted_session_dead(store_.session_id(session));
  }
  store_.set_logged_in(session, false);
  const std::uint32_t ci = store_.conn(session);
  if (ci != SessionStore::kNullSlot) {
    connections_[ci]->dead = true;
    store_.unbind(session);
  }
  if (!config_.cancel_on_disconnect || store_.open_order_count(session) == 0) return;
  ++stats_.cod_sessions;
  // Sorted sweep: the feed deletes + journaled cancels this emits must be
  // byte-identical across replays of the same seed, independent of the
  // order chain's (insertion-history-dependent) layout.
  store_.collect_open_client_ids(session, scratch_cod_ids_);
  for (const proto::OrderId client_id : scratch_cod_ids_) {
    const std::uint32_t order = store_.find_open(session, client_id);
    if (order == SessionStore::kNullSlot) continue;
    // cancel() fires the book listener, which publishes the DeleteOrder
    // on the feed — disconnect-driven pulls are market data like any
    // other cancel.
    const auto cancelled =
        book_ptrs_[store_.order_symbol(order)]->cancel(store_.order_exchange_id(order));
    if (cancelled) {
      send_app(session, proto::boe::OrderCancelled{client_id, *cancelled});
      ++stats_.cod_orders_cancelled;
    }
    store_.close_order(order);
  }
}

void Exchange::on_session_message(Connection& conn, const proto::boe::Message& message) {
  using namespace proto::boe;
  if (const auto* login = std::get_if<LoginRequest>(&message)) {
    handle_login(conn, *login);
    return;
  }
  if (std::get_if<Heartbeat>(&message) != nullptr) {
    return;  // liveness only: the data handler already refreshed the timer
  }
  if (std::get_if<Logout>(&message) != nullptr) {
    if (conn.session != SessionStore::kNullSlot) {
      if (input_listener_ != nullptr) {
        input_listener_->on_admitted_message(store_.session_id(conn.session), message);
      }
      store_.set_logged_in(conn.session, false);
    }
    return;
  }
  if (const auto* replay = std::get_if<ReplayRequest>(&message)) {
    handle_replay(conn, *replay);
    return;
  }
  if (const auto* order = std::get_if<NewOrder>(&message)) {
    if (conn.session == SessionStore::kNullSlot) {
      ++stats_.orders_received;
      ++stats_.orders_rejected;
      send_conn(conn, OrderRejected{order->client_order_id, RejectReason::kNotLoggedIn});
      return;
    }
    if (input_listener_ != nullptr) {
      input_listener_->on_admitted_message(store_.session_id(conn.session), message);
    }
    handle_new_order(conn.session, *order);
    return;
  }
  if (const auto* cancel = std::get_if<CancelOrder>(&message)) {
    if (conn.session == SessionStore::kNullSlot) {
      ++stats_.cancels_received;
      ++stats_.cancel_rejects;
      send_conn(conn, CancelRejected{cancel->client_order_id, RejectReason::kTooLateToCancel});
      return;
    }
    if (input_listener_ != nullptr) {
      input_listener_->on_admitted_message(store_.session_id(conn.session), message);
    }
    handle_cancel(conn.session, *cancel);
    return;
  }
  if (const auto* modify = std::get_if<ModifyOrder>(&message)) {
    if (conn.session == SessionStore::kNullSlot) {
      send_conn(conn, CancelRejected{modify->client_order_id, RejectReason::kUnknownOrder});
      return;
    }
    if (input_listener_ != nullptr) {
      input_listener_->on_admitted_message(store_.session_id(conn.session), message);
    }
    handle_modify(conn.session, *modify);
    return;
  }
  // Exchange-to-client message types arriving inbound are protocol errors;
  // ignore them (a production gateway would reset the session).
}

void Exchange::handle_login(Connection& conn, const proto::boe::LoginRequest& login) {
  using namespace proto::boe;
  if (login.token == 0) {
    send_conn(conn, LoginRejected{RejectReason::kNotLoggedIn});
    return;
  }
  const auto result = store_.login(login.session_id, login.token);
  if (result.verdict == LoginVerdict::kInUse) {
    send_conn(conn, LoginRejected{RejectReason::kSessionInUse});
    return;
  }
  const std::uint32_t session = result.slot;
  if (result.verdict == LoginVerdict::kMatch) {
    const std::uint32_t cur = store_.conn(session);
    if (cur == conn.index) {
      // Duplicate login on the same connection: idempotent.
      send_conn(conn, LoginAccepted{});
      return;
    }
    if (cur != SessionStore::kNullSlot && !connections_[cur]->dead) {
      // Same credentials on a new connection while the old one still looks
      // alive: the client knows its old leg is gone even if we don't yet
      // (e.g. it aborted without a FIN). Take the session over — crucially
      // WITHOUT cancel-on-disconnect, since the session never died.
      Connection& old = *connections_[cur];
      old.dead = true;
      old.session = SessionStore::kNullSlot;
      store_.unbind(session);
      close_leg(old);
      ++stats_.sessions_taken_over;
    } else {
      if (cur != SessionStore::kNullSlot) store_.unbind(session);
      ++stats_.sessions_resumed;
    }
  }
  conn.session = session;
  if (conn.in_unbound_list) unlink_unbound(conn);
  store_.bind(session, conn.index);
  store_.set_logged_in(session, true);
  // Every successful admission (first login, resume, takeover) replicates:
  // the backup mirrors the row creation / logged-in transition. The
  // idempotent duplicate-login return above changes no state and is not
  // replicated.
  if (input_listener_ != nullptr) {
    input_listener_->on_admitted_login(login.session_id, login.token);
  }
  send_conn(conn, LoginAccepted{});
}

void Exchange::handle_replay(Connection& conn, const proto::boe::ReplayRequest& request) {
  using namespace proto::boe;
  if (conn.session == SessionStore::kNullSlot) return;  // replay without a login
  ++stats_.replays_served;
  // Journal records are chained in send order with ascending seqs:
  // replaying the tail > last_seen_seq re-sends the original bytes
  // verbatim, so the client sees exactly the stream it missed —
  // byte-identical, exactly once.
  store_.replay(conn.session, request.last_seen_seq,
                [this, &conn](std::uint32_t, std::span<const std::byte> bytes) {
                  send_bytes(conn, bytes);
                  ++stats_.replayed_messages;
                });
  send_conn(conn, SequenceReset{store_.tx_seq(conn.session)});
}

// tsn-lint: hotpath
void Exchange::handle_new_order(std::uint32_t session, const proto::boe::NewOrder& request) {
  using namespace proto::boe;
  ++stats_.orders_received;
  auto reject = [&](RejectReason reason) {
    ++stats_.orders_rejected;
    send_app(session, OrderRejected{request.client_order_id, reason});
  };
  if (!store_.logged_in(session)) return reject(RejectReason::kNotLoggedIn);
  const auto symbol_it = symbol_idx_.find(request.symbol);
  if (symbol_it == symbol_idx_.end()) return reject(RejectReason::kInvalidSymbol);
  if (request.quantity == 0) return reject(RejectReason::kInvalidQuantity);
  if (request.price <= 0) return reject(RejectReason::kInvalidPrice);
  if (store_.client_id_used(session, request.client_order_id)) {
    // Live OR terminal: the id was used before. This is what makes
    // resubmission after a reconnect idempotent — a resubmitted order whose
    // original already executed gets a reject, never a second execution.
    ++stats_.duplicate_client_ids_rejected;
    return reject(RejectReason::kDuplicateOrderId);
  }
  const proto::OrderId exchange_id = next_order_id();
  ++stats_.orders_accepted;
  OrderAccepted ack;
  ack.client_order_id = request.client_order_id;
  ack.exchange_order_id = exchange_id;
  ack.transact_time_ns = static_cast<std::uint64_t>(now_ps() / 1000);
  send_app(session, ack);

  store_.register_order(session, request.client_order_id, exchange_id, symbol_it->second);

  auto& target_book = *book_ptrs_[symbol_it->second];
  const book::Order order{exchange_id, request.side, request.price, request.quantity};
  const bool ioc = request.tif == TimeInForce::kImmediateOrCancel;
  const auto outcome = target_book.submit(order, ioc);
  if (outcome.result == book::OrderBook::SubmitResult::kCancelled) {
    // IOC remainder evaporates; tell the client.
    OrderCancelled cancelled;
    cancelled.client_order_id = request.client_order_id;
    cancelled.cancelled_quantity = request.quantity - outcome.filled;
    send_app(session, cancelled);
  }
  // Fully-filled or IOC orders are no longer live. A full fill was already
  // closed by notify_fill inside submit(), hence the re-lookup.
  if (outcome.result == book::OrderBook::SubmitResult::kFilled ||
      outcome.result == book::OrderBook::SubmitResult::kCancelled) {
    const std::uint32_t open = store_.find_open(session, request.client_order_id);
    if (open != SessionStore::kNullSlot) store_.close_order(open);
  }
}

// tsn-lint: hotpath
void Exchange::handle_cancel(std::uint32_t session, const proto::boe::CancelOrder& request) {
  using namespace proto::boe;
  ++stats_.cancels_received;
  const std::uint32_t order = store_.find_open(session, request.client_order_id);
  if (order == SessionStore::kNullSlot) {
    // Unknown or already filled — the §2 cancel/fill race lands here.
    ++stats_.cancel_rejects;
    send_app(session, CancelRejected{request.client_order_id, RejectReason::kTooLateToCancel});
    return;
  }
  auto cancelled =
      book_ptrs_[store_.order_symbol(order)]->cancel(store_.order_exchange_id(order));
  if (!cancelled) {
    ++stats_.cancel_rejects;
    send_app(session, CancelRejected{request.client_order_id, RejectReason::kTooLateToCancel});
    return;
  }
  send_app(session, OrderCancelled{request.client_order_id, *cancelled});
  store_.close_order(order);
}

void Exchange::handle_modify(std::uint32_t session, const proto::boe::ModifyOrder& request) {
  using namespace proto::boe;
  const std::uint32_t order = store_.find_open(session, request.client_order_id);
  if (order == SessionStore::kNullSlot) {
    send_app(session, CancelRejected{request.client_order_id, RejectReason::kUnknownOrder});
    return;
  }
  // replace() can rematch and fully fill via notify_fill, which closes the
  // order row — don't touch `order` after this call.
  if (!book_ptrs_[store_.order_symbol(order)]->replace(store_.order_exchange_id(order),
                                                       request.quantity, request.price)) {
    send_app(session, CancelRejected{request.client_order_id, RejectReason::kUnknownOrder});
    return;
  }
  send_app(session, OrderModified{request.client_order_id, request.quantity, request.price});
}

// --- hot-standby replication & failover ------------------------------------

void Exchange::halt_connections() {
  // Every live leg FINs — for crash() that is the host kernel reaping the
  // dead process's sockets, for fence() a voluntary resignation — so
  // gateways get a fast closed notification and re-home instead of waiting
  // out a session timeout. Deliberately no declare_session_dead: the store
  // and books freeze as-is (a halted matcher cannot run cancel-on-
  // disconnect), keeping the state digest comparable post-mortem.
  for (auto& conn : connections_) {
    if (conn->dead) continue;
    conn->dead = true;
    if (conn->in_unbound_list) unlink_unbound(*conn);
    if (conn->endpoint != nullptr) conn->endpoint->close();
  }
}

void Exchange::crash() {
  if (halted_) return;
  halted_ = true;
  halt_connections();
}

void Exchange::fence() {
  if (halted_) return;
  halted_ = true;
  fenced_ = true;
  feed_muted_ = true;
  accepting_ = false;
  halt_connections();
}

void Exchange::apply_replicated_login(std::uint32_t session_id, std::uint64_t token,
                                      std::int64_t at_ps) {
  replicated_now_ps_ = at_ps;
  const auto result = store_.login(session_id, token);
  if (result.verdict != LoginVerdict::kInUse) store_.set_logged_in(result.slot, true);
  replicated_now_ps_ = -1;
}

void Exchange::apply_replicated_message(std::uint32_t session_id,
                                        const proto::boe::Message& message, std::int64_t at_ps) {
  using namespace proto::boe;
  const std::uint32_t session = store_.lookup(session_id);
  if (session == SessionStore::kNullSlot) return;  // login record lost upstream
  replicated_now_ps_ = at_ps;
  if (std::get_if<Logout>(&message) != nullptr) {
    store_.set_logged_in(session, false);
  } else if (const auto* order = std::get_if<NewOrder>(&message)) {
    handle_new_order(session, *order);
  } else if (const auto* cancel = std::get_if<CancelOrder>(&message)) {
    handle_cancel(session, *cancel);
  } else if (const auto* modify = std::get_if<ModifyOrder>(&message)) {
    handle_modify(session, *modify);
  }
  replicated_now_ps_ = -1;
}

void Exchange::apply_replicated_session_dead(std::uint32_t session_id, std::int64_t at_ps) {
  const std::uint32_t session = store_.lookup(session_id);
  if (session == SessionStore::kNullSlot) return;
  replicated_now_ps_ = at_ps;
  declare_session_dead(session);
  replicated_now_ps_ = -1;
}

std::uint64_t Exchange::state_digest() const {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = store_.state_digest();
  auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= kPrime;
    }
  };
  fold(next_order_id_);
  // config_.symbols order is construction order: identical on both halves
  // of a pair built from the same config.
  for (const auto& spec : config_.symbols) {
    const book::OrderBook& b = *books_.at(spec.symbol);
    b.for_each_order([&](const book::Order& order) {
      fold(order.id);
      fold(static_cast<std::uint64_t>(order.side));
      fold(static_cast<std::uint64_t>(order.price));
      fold(order.quantity);
    });
  }
  return h;
}

std::uint64_t Exchange::econ_digest() const {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= kPrime;
    }
  };
  std::vector<std::tuple<std::uint8_t, std::int64_t, std::uint64_t>> rows;
  for (const auto& spec : config_.symbols) {
    rows.clear();
    books_.at(spec.symbol)->for_each_order([&](const book::Order& order) {
      rows.emplace_back(static_cast<std::uint8_t>(order.side),
                        static_cast<std::int64_t>(order.price), order.quantity);
    });
    // Sorted: a resubmitted order re-enters at the back of its price level,
    // so raw book order differs from a never-failed control — economically
    // equal books must still digest equal.
    std::sort(rows.begin(), rows.end());
    fold(rows.size());
    for (const auto& [side, price, qty] : rows) {
      fold(side);
      fold(static_cast<std::uint64_t>(price));
      fold(qty);
    }
  }
  return h;
}

}  // namespace tsn::exchange
