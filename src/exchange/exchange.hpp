// A simulated exchange (§2).
//
// The exchange owns a price-time-priority book per listed symbol, publishes
// every book change on its PITCH-style multicast feed (partitioned across
// units by a configurable scheme), and accepts BOE-style order-entry
// sessions over TCP. It runs on a Host with two NICs: NIC 0 publishes
// market data, NIC 1 terminates order sessions — mirroring how real
// cross-connects separate the two (§2).
//
// Message packing: events that occur at the same simulation instant pack
// into one datagram (the flush runs after the current event cascade), which
// is how real feeds end up with multi-message frames during bursts and
// single-message frames when quiet — the bimodal frame-length mix of
// Table 1.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "book/order_book.hpp"
#include "exchange/session_store.hpp"
#include "net/stack.hpp"
#include "proto/boe.hpp"
#include "proto/partition.hpp"
#include "proto/pitch.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::exchange {

// In-process order-entry transport for population-scale load: a direct
// connection skips TcpLite entirely (no endpoint, no stream parser, no
// per-byte simulation) while running the identical session state machine —
// login, journal, replay, dedupe, cancel-on-disconnect, liveness. The
// exchange pushes every outbound message through on_direct_bytes; inbound
// messages are injected with Exchange::deliver_direct and still pay
// matching_latency before the matcher acts.
//
// Callbacks run inside the exchange's own send path: implementations must
// not call back into close_direct/deliver_direct synchronously (schedule a
// zero-delay event instead) — the same re-entrancy rule as
// net::TcpEndpoint::abort.
class DirectClient {
 public:
  virtual ~DirectClient() = default;
  virtual void on_direct_bytes(std::uint32_t conn, std::span<const std::byte> bytes) = 0;
  // The exchange dropped the connection (liveness timeout or takeover).
  virtual void on_direct_closed(std::uint32_t conn) { (void)conn; }
};

// Admission tap for hot-standby replication: the primary exchange reports
// every state-changing admitted input — successful logins, messages
// dispatched for a bound session, and session-death declarations — in
// admission order, inside the same event cascade that produces the client's
// acknowledgement. A ReplicaStream forwards the taps to a backup exchange,
// which applies them through the identical handlers, so the pair's state
// digests stay byte-equal at every replication sequence point.
class InputListener {
 public:
  virtual ~InputListener() = default;
  virtual void on_admitted_login(std::uint32_t session_id, std::uint64_t token) = 0;
  virtual void on_admitted_message(std::uint32_t session_id,
                                   const proto::boe::Message& message) = 0;
  virtual void on_admitted_session_dead(std::uint32_t session_id) = 0;
};

struct SymbolSpec {
  proto::Symbol symbol;
  proto::InstrumentKind kind = proto::InstrumentKind::kEquity;
  proto::Price reference_price = proto::price_from_dollars(100.0);
};

struct ExchangeConfig {
  std::string name = "EXCH";
  std::uint8_t exchange_id = 0;
  std::vector<SymbolSpec> symbols;
  // Maps a symbol to a feed unit in [0, unit_count).
  std::shared_ptr<const proto::PartitionScheme> feed_partitioning;
  // Multicast group for unit u is feed_group_base + u.
  net::Ipv4Addr feed_group_base{239, 100, 0, 0};
  std::uint16_t feed_port = 30001;
  // Redundant A/B publication: real feeds publish every datagram twice, on
  // two groups that traverse disjoint paths, so receivers can arbitrate and
  // survive single-path loss (§4). When enabled, unit u's datagrams also go
  // to feed_group_b_base + u with byte-identical payloads (same sequences).
  bool dual_publish = false;
  net::Ipv4Addr feed_group_b_base{239, 102, 0, 0};
  // Snapshot (gap-recovery) channel: unit u's snapshots go to
  // snapshot_group_base + u on snapshot_port. Started via start_snapshots().
  net::Ipv4Addr snapshot_group_base{239, 101, 0, 0};
  std::uint16_t snapshot_port = 30002;
  sim::Duration snapshot_interval = sim::millis(std::int64_t{10});
  std::uint16_t order_port = 34000;
  // Session liveness: when heartbeat_interval is positive (and
  // start_heartbeats() is called), the exchange sends a Heartbeat to any
  // session idle longer than the interval and declares sessions dead after
  // session_timeout of silence (default 3x the interval). Incoming
  // heartbeats are pure liveness: they refresh the timer and get no reply
  // (reply-to-heartbeat schemes ping-pong forever).
  sim::Duration heartbeat_interval = sim::Duration::zero();
  sim::Duration session_timeout = sim::Duration::zero();
  // Cancel-on-disconnect: when a session is declared dead (timeout or
  // connection death), purge its resting orders from the books. The
  // resulting DeleteOrder messages go out on the feed, and the
  // OrderCancelled responses are journaled for replay at re-login — the
  // §2/§4.2 safety contract real venues offer the firm's gateway.
  bool cancel_on_disconnect = false;
  std::size_t feed_mtu_payload = 1458;
  // Internal processing time between an order-entry message arriving and
  // the matching engine acting on it (and between a match and the
  // acknowledgement leaving).
  sim::Duration matching_latency = sim::micros(std::int64_t{5});
  // --- million-session scale-out (ROADMAP item 2) ---
  // Session-directory shards (rounded up to a power of two). Lookups hash
  // straight to a shard; 1 keeps PR 5's single-directory behavior.
  std::uint32_t session_shards = 1;
  // When true, each heartbeat tick sweeps only the connected sessions of
  // shard (tick % session_shards) plus every pre-login connection, so a
  // tick costs O(population / shards) instead of O(population). A silent
  // session is then declared dead up to (shards - 1) ticks later than the
  // legacy full scan — deterministic, just coarser. False preserves PR 5's
  // exact per-tick semantics.
  bool sharded_liveness_sweep = false;
  // Pre-sizing for the pooled session store (sessions / concurrently open
  // orders / journal byte arena). Zero leaves growth on demand.
  std::size_t expected_sessions = 0;
  std::size_t expected_open_orders = 0;
  std::size_t expected_journal_bytes = 0;
  net::MacAddr feed_mac;
  net::Ipv4Addr feed_ip;
  net::MacAddr order_mac;
  net::Ipv4Addr order_ip;
};

struct ExchangeStats {
  std::uint64_t feed_messages = 0;
  std::uint64_t feed_datagrams = 0;
  std::uint64_t feed_datagrams_b = 0;      // B-line copies (dual_publish only)
  std::uint64_t feed_datagrams_muted = 0;  // built but suppressed (hot standby)
  std::uint64_t orders_received = 0;
  std::uint64_t orders_accepted = 0;
  std::uint64_t orders_rejected = 0;
  std::uint64_t cancels_received = 0;
  std::uint64_t cancel_rejects = 0;  // includes the §2 cancel/fill race
  std::uint64_t fills_sent = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t sessions_timed_out = 0;
  std::uint64_t sessions_resumed = 0;     // re-login onto an existing session
  std::uint64_t sessions_taken_over = 0;  // re-login displacing a live connection
  std::uint64_t replays_served = 0;
  std::uint64_t replayed_messages = 0;
  std::uint64_t cod_sessions = 0;          // cancel-on-disconnect sweeps
  std::uint64_t cod_orders_cancelled = 0;  // resting orders pulled by those sweeps
  std::uint64_t duplicate_client_ids_rejected = 0;
};

class Exchange {
 public:
  Exchange(sim::Scheduler& engine, ExchangeConfig config);
  ~Exchange();
  Exchange(const Exchange&) = delete;
  Exchange& operator=(const Exchange&) = delete;

  // The two NICs to wire into a topology.
  [[nodiscard]] net::Nic& feed_nic() noexcept { return *feed_nic_; }
  [[nodiscard]] net::Nic& order_nic() noexcept { return *order_nic_; }

  [[nodiscard]] const ExchangeConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint8_t unit_count() const noexcept;
  [[nodiscard]] net::Ipv4Addr unit_group(std::uint8_t unit) const noexcept;
  [[nodiscard]] net::Ipv4Addr unit_group_b(std::uint8_t unit) const noexcept {
    return net::Ipv4Addr{config_.feed_group_b_base.value() + unit};
  }
  [[nodiscard]] net::Ipv4Addr snapshot_group(std::uint8_t unit) const noexcept {
    return net::Ipv4Addr{config_.snapshot_group_base.value() + unit};
  }
  [[nodiscard]] std::uint8_t unit_of(const proto::Symbol& symbol) const;

  // Begins heartbeat emission and session-timeout enforcement (requires a
  // positive heartbeat_interval).
  void start_heartbeats();

  // Begins the periodic snapshot cycle (§2-adjacent operational machinery:
  // real feeds pair the incremental stream with a recovery channel).
  // Publishes every unit's resting orders each interval until the run ends.
  void start_snapshots();
  [[nodiscard]] std::uint64_t snapshots_published() const noexcept {
    return snapshots_published_;
  }

  // Direct book access, used by the background activity driver. Changes
  // made through the returned book are published on the feed.
  [[nodiscard]] book::OrderBook& book(const proto::Symbol& symbol);
  [[nodiscard]] bool lists(const proto::Symbol& symbol) const noexcept;
  [[nodiscard]] const std::vector<SymbolSpec>& symbols() const noexcept {
    return config_.symbols;
  }

  // Allocates an exchange-side order id (the activity driver uses these so
  // its ids never collide with session orders).
  [[nodiscard]] proto::OrderId next_order_id() noexcept { return next_order_id_++; }

  [[nodiscard]] const ExchangeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] sim::Scheduler& engine() noexcept { return engine_; }

  // --- direct (in-process) order-entry connections ---------------------
  // Opens a TCP-less connection bound to `client`; returns its connection
  // id for deliver_direct/close_direct. Session semantics are identical to
  // the TCP path.
  [[nodiscard]] std::uint32_t open_direct(DirectClient& client);
  // Injects one inbound message; the matcher acts after matching_latency.
  void deliver_direct(std::uint32_t conn, const proto::boe::Message& message);
  // Client-side drop (no on_direct_closed callback). Like
  // net::TcpEndpoint::abort, safe to call only from outside the exchange's
  // own callbacks.
  void close_direct(std::uint32_t conn);

  // Pooled session/order/journal state (read-only; tests and benches).
  [[nodiscard]] const SessionStore& session_store() const noexcept { return store_; }

  // --- hot-standby replication & failover ------------------------------
  // Primary side: taps every admitted input (borrowed; may be null).
  void set_input_listener(InputListener* listener) noexcept { input_listener_ = listener; }
  // Backup side: feed datagrams are built (sequences advance in lockstep
  // with the primary) but not transmitted until promotion unmutes them —
  // the promoted backup then continues the A/B streams seamlessly.
  void set_feed_muted(bool muted) noexcept { feed_muted_ = muted; }
  [[nodiscard]] bool feed_muted() const noexcept { return feed_muted_; }
  // While not accepting, new order-port connections are closed immediately
  // (a follower must not admit inputs of its own); promotion re-opens.
  void set_accepting(bool accepting) noexcept { accepting_ = accepting; }

  // Backup side: applies one replicated admission through the identical
  // handlers the primary ran, with the exchange clock pinned to the
  // primary's admission instant `at_ps` so every timestamped byte (feed
  // time offsets, journaled ack transact times) comes out byte-identical.
  void apply_replicated_login(std::uint32_t session_id, std::uint64_t token,
                              std::int64_t at_ps);
  void apply_replicated_message(std::uint32_t session_id, const proto::boe::Message& message,
                                std::int64_t at_ps);
  void apply_replicated_session_dead(std::uint32_t session_id, std::int64_t at_ps);

  // Process death (fault::FaultInjector kProcessCrash): freezes all state —
  // no sends, no matching, no ticks — while the "kernel" FINs every live
  // leg and any later accepted connection, exactly what a dead box looks
  // like from a gateway. No cancel-on-disconnect runs: a dead matcher
  // cannot pull its own orders.
  void crash();
  // Epoch fencing: a stale primary that learns a higher-epoch leader exists
  // silences itself — feed muted, accepts refused, live legs closed so
  // clients re-home — but its books stay intact for post-mortem parity.
  void fence();
  [[nodiscard]] bool halted() const noexcept { return halted_; }
  [[nodiscard]] bool fenced() const noexcept { return fenced_; }

  // Replication-parity digest: session-store rows + order-id allocator +
  // full book content, folded in deterministic (slot/config) order. Equal
  // digests mean the pair would serve identical state from here on.
  [[nodiscard]] std::uint64_t state_digest() const;
  // Economic digest for failover-vs-control parity: per-symbol sorted
  // (side, price, quantity) book tuples. Excludes exchange order ids —
  // resubmitted orders draw fresh ids (and may lose time priority), but the
  // surviving economic book must match a rig that never failed.
  [[nodiscard]] std::uint64_t econ_digest() const;

  // Registers feed/order-flow/session gauges under "<prefix>".
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const;

 private:
  class FeedListener;
  struct Connection;  // one accepted connection (physical: TCP or direct)
  struct Unit;

  void publish(const proto::pitch::Message& message, std::uint8_t unit);
  void schedule_flush(std::uint8_t unit);
  void notify_fill(const book::Execution& execution);
  void snapshot_tick();
  void heartbeat_tick();
  void check_liveness(Connection& conn, sim::Time now);
  void on_accept_session(net::TcpEndpoint& endpoint);
  void on_session_message(Connection& conn, const proto::boe::Message& message);
  void handle_login(Connection& conn, const proto::boe::LoginRequest& login);
  void handle_replay(Connection& conn, const proto::boe::ReplayRequest& request);
  void handle_new_order(std::uint32_t session, const proto::boe::NewOrder& request);
  void handle_cancel(std::uint32_t session, const proto::boe::CancelOrder& request);
  void handle_modify(std::uint32_t session, const proto::boe::ModifyOrder& request);
  // Declares the session dead: unbinds its connection and, when
  // cancel_on_disconnect is set, pulls its resting orders (feed deletes +
  // journaled OrderCancelled responses).
  void declare_session_dead(std::uint32_t session);
  // Unsequenced session-level send (logins, heartbeats, SequenceReset):
  // carries seq 0 and is never journaled or replayed.
  void send_conn(Connection& conn, const proto::boe::Message& message);
  // Sequenced application send: consumes the session's tx_seq, stages the
  // encoded bytes in the shared journal ring, and transmits only while the
  // session has a live established connection.
  void send_app(std::uint32_t session, const proto::boe::Message& message);
  // Transport-agnostic byte push: TcpEndpoint::send or on_direct_bytes.
  void send_bytes(Connection& conn, std::span<const std::byte> bytes);
  // Severs the remote leg: TCP close or on_direct_closed notification.
  void close_leg(Connection& conn);
  void link_unbound(Connection& conn) noexcept;
  void unlink_unbound(Connection& conn) noexcept;
  // Commits staged journal entries after the current event cascade (one
  // group flush per instant, like the feed flush).
  void schedule_journal_flush();
  // Exchange-local clock in picos: the engine's, unless an apply_replicated_*
  // call has pinned it to the primary's admission instant.
  [[nodiscard]] std::int64_t now_ps() const noexcept {
    return replicated_now_ps_ >= 0 ? replicated_now_ps_ : engine_.now().picos();
  }
  void halt_connections();
  [[nodiscard]] std::uint32_t now_seconds() const noexcept;
  [[nodiscard]] std::uint32_t now_offset_ns() const noexcept;

  sim::Scheduler& engine_;
  ExchangeConfig config_;
  std::unique_ptr<net::Host> host_;
  net::Nic* feed_nic_ = nullptr;
  net::Nic* order_nic_ = nullptr;
  std::unique_ptr<net::NetStack> feed_stack_;
  std::unique_ptr<net::NetStack> order_stack_;

  std::vector<std::unique_ptr<Unit>> units_;
  std::unordered_map<proto::Symbol, std::unique_ptr<book::OrderBook>> books_;
  std::unordered_map<proto::Symbol, std::unique_ptr<FeedListener>> listeners_;
  std::unordered_map<proto::Symbol, proto::InstrumentKind> kinds_;
  // Dense symbol handles: the session hot path stores u16 indexes instead
  // of 6-byte symbols and resolves books through one vector load.
  std::unordered_map<proto::Symbol, std::uint16_t> symbol_idx_;
  std::vector<book::OrderBook*> book_ptrs_;

  // Connections live for the exchange's lifetime (dead ones stay as
  // post-mortem records) so in-flight matcher events can never dangle.
  std::vector<std::unique_ptr<Connection>> connections_;
  // Intrusive list of live connections not yet bound to a session: the
  // sharded liveness sweep walks these every tick (bound sessions are
  // swept via the store's per-shard connected lists).
  std::uint32_t unbound_head_ = SessionStore::kNullSlot;
  std::uint32_t unbound_tail_ = SessionStore::kNullSlot;

  // All per-session, per-order and journal state, pooled (SoA slabs).
  SessionStore store_;
  proto::OrderId next_order_id_ = 1'000'000'000ULL;

  // Hot-path scratch (reserved once, reused per message/sweep).
  std::vector<std::byte> scratch_tx_;
  std::vector<proto::OrderId> scratch_cod_ids_;
  std::vector<std::uint32_t> scratch_sweep_;
  bool journal_flush_scheduled_ = false;
  std::uint32_t sweep_cursor_ = 0;

  ExchangeStats stats_;
  bool snapshots_running_ = false;
  std::uint64_t snapshots_published_ = 0;
  bool heartbeats_running_ = false;

  // --- hot-standby replication & failover state ---
  InputListener* input_listener_ = nullptr;
  bool feed_muted_ = false;
  bool accepting_ = true;
  bool halted_ = false;  // crashed or fenced: every activity source returns early
  bool fenced_ = false;
  std::int64_t replicated_now_ps_ = -1;  // <0: use the engine clock
};

}  // namespace tsn::exchange
