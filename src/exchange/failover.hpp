// Heartbeat-driven failover state machine for the hot-standby pair.
//
// Polls the ReplicaApplier's heartbeat watermark and walks
//
//   kFollowing -> kSuspect -> kPromoting -> kActive
//
// with hysteresis: a heartbeat that resumes while merely *suspect* demotes
// back to kFollowing (counted as a false suspect) — a transient link stall
// must not split the brain. Once promotion starts it runs to completion:
// the applier bumps its epoch (fencing any stale primary on contact), the
// promote-replay window lets journaled in-flight records drain into the
// backup book, then the feed unmutes and the listener opens so re-homing
// gateways land on a book byte-identical to the primary's last acked state.
#pragma once

#include <cstdint>
#include <string>

#include "exchange/replica.hpp"

namespace tsn::exchange {

enum class FailoverState : std::uint8_t {
  kFollowing = 0,
  kSuspect = 1,
  kPromoting = 2,
  kActive = 3,
};

[[nodiscard]] const char* to_string(FailoverState state) noexcept;

struct FailoverConfig {
  // Detector poll cadence; keep well under suspect_after for tight bounds.
  sim::Duration poll_interval = sim::micros(std::int64_t{200});
  // Heartbeat silence before the primary is suspected (>= 2 intervals so a
  // single lost heartbeat never trips it).
  sim::Duration suspect_after = sim::millis(std::int64_t{2});
  // Additional silence, while suspect, before promotion begins.
  sim::Duration promote_after = sim::millis(std::int64_t{1});
  // Journal-tail drain: records already on the wire at promotion land
  // during this window and are applied before the book goes live.
  sim::Duration promote_replay = sim::micros(std::int64_t{200});
};

struct FailoverStats {
  std::uint64_t suspects = 0;
  std::uint64_t false_suspects = 0;
  std::uint64_t promotions = 0;
};

class FailoverController {
 public:
  FailoverController(sim::Scheduler& engine, Exchange& backup, ReplicaApplier& applier,
                     FailoverConfig config);

  // Starts the poll chain. The applier must be start()ed first so its
  // heartbeat watermark is initialized.
  void start();

  [[nodiscard]] FailoverState state() const noexcept { return state_; }
  [[nodiscard]] sim::Time suspected_at() const noexcept { return suspected_at_; }
  [[nodiscard]] sim::Time promoted_at() const noexcept { return promoted_at_; }
  // Outage as the clients saw it: last heartbeat the detector trusted to
  // the instant the backup opened for business.
  [[nodiscard]] sim::Duration recovery_duration() const noexcept { return recovery_; }
  [[nodiscard]] const FailoverStats& stats() const noexcept { return stats_; }

  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const;

 private:
  void tick();

  sim::Scheduler& engine_;
  Exchange& backup_;
  ReplicaApplier& applier_;
  FailoverConfig config_;
  FailoverState state_ = FailoverState::kFollowing;
  sim::Time last_heartbeat_seen_;  // watermark backing recovery_duration()
  sim::Time suspected_at_;
  sim::Time promote_started_;
  sim::Time promoted_at_;
  sim::Duration recovery_ = sim::Duration::zero();
  FailoverStats stats_;
};

}  // namespace tsn::exchange
