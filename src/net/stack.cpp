#include "net/stack.hpp"

#include <utility>

namespace tsn::net {

NetStack::NetStack(Nic& nic) : nic_(nic) {
  nic_.set_rx_handler([this](const PacketPtr& packet, sim::Time arrival) {
    on_frame(packet, arrival);
  });
}

void NetStack::bind_udp(std::uint16_t port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void NetStack::unbind_udp(std::uint16_t port) { udp_handlers_.erase(port); }

void NetStack::send_udp(MacAddr dst_mac, Ipv4Addr dst_ip, std::uint16_t src_port,
                        std::uint16_t dst_port, std::span<const std::byte> payload) {
  build_udp_frame_into(tx_scratch_, nic_.mac(), dst_mac, nic_.ip(), dst_ip, src_port, dst_port,
                       payload);
  nic_.send_frame(std::span<const std::byte>{tx_scratch_});
}

void NetStack::send_multicast(Ipv4Addr group, std::uint16_t port,
                              std::span<const std::byte> payload) {
  build_multicast_frame_into(tx_scratch_, nic_.mac(), nic_.ip(), group, port, payload);
  nic_.send_frame(std::span<const std::byte>{tx_scratch_});
}

TcpEndpoint& NetStack::connect_tcp(MacAddr dst_mac, Ipv4Addr dst_ip, std::uint16_t dst_port,
                                   std::uint16_t src_port) {
  if (src_port == 0) src_port = next_ephemeral_++;
  auto endpoint = std::make_unique<TcpEndpoint>(*this, dst_mac, dst_ip, dst_port, src_port,
                                                TcpConfig{});
  TcpEndpoint& ref = *endpoint;
  tcp_flows_.emplace(FlowKey{src_port, dst_ip.value(), dst_port}, std::move(endpoint));
  ref.start_connect();
  return ref;
}

void NetStack::listen_tcp(std::uint16_t port, AcceptHandler on_accept) {
  tcp_listeners_[port] = std::move(on_accept);
}

std::size_t NetStack::reap_closed() {
  std::size_t reaped = 0;
  for (auto it = tcp_flows_.begin(); it != tcp_flows_.end();) {
    if (it->second->state() == TcpState::kClosed) {
      it = tcp_flows_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

void NetStack::on_frame(const PacketPtr& packet, sim::Time arrival) {
  auto frame = decode_frame(packet->frame());
  if (!frame || !frame->ip) return;
  if (frame->udp) {
    ++udp_rx_;
    auto it = udp_handlers_.find(frame->udp->dst_port);
    if (it == udp_handlers_.end()) {
      ++udp_unbound_;
      return;
    }
    it->second(*frame->ip, *frame->udp, frame->payload, arrival);
    return;
  }
  if (frame->tcp) {
    handle_tcp(*frame, arrival);
    return;
  }
  if (frame->ip->protocol == kIpProtoIgmp && igmp_handler_) {
    igmp_handler_(frame->payload, arrival);
  }
}

void NetStack::handle_tcp(const DecodedFrame& frame, sim::Time arrival) {
  const TcpHeader& tcp = *frame.tcp;
  const FlowKey key{tcp.dst_port, frame.ip->src.value(), tcp.src_port};
  auto it = tcp_flows_.find(key);
  if (it != tcp_flows_.end()) {
    it->second->on_segment(tcp, frame.payload, arrival);
    return;
  }
  // New flow: only a bare SYN to a listening port opens one.
  const bool bare_syn =
      (tcp.flags & TcpHeader::kSyn) != 0 && (tcp.flags & TcpHeader::kAck) == 0;
  if (!bare_syn) return;
  auto listener = tcp_listeners_.find(tcp.dst_port);
  if (listener == tcp_listeners_.end()) return;
  auto endpoint = std::make_unique<TcpEndpoint>(*this, frame.eth.src, frame.ip->src,
                                                tcp.src_port, tcp.dst_port, TcpConfig{});
  TcpEndpoint& ref = *endpoint;
  tcp_flows_.emplace(key, std::move(endpoint));
  ref.accept_syn(tcp.seq);
  listener->second(ref);
}

}  // namespace tsn::net
