#include "net/headers.hpp"

namespace tsn::net {

void EthernetHeader::encode(WireWriter& w) const {
  w.bytes(std::as_bytes(std::span{dst.octets()}));
  w.bytes(std::as_bytes(std::span{src.octets()}));
  w.u16(ethertype);
}

std::optional<EthernetHeader> EthernetHeader::decode(WireReader& r) {
  EthernetHeader h;
  auto dst = r.bytes(6);
  auto src = r.bytes(6);
  h.ethertype = r.u16();
  if (!r.ok()) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(dst[static_cast<std::size_t>(i)]);
  h.dst = MacAddr{octets};
  for (int i = 0; i < 6; ++i) octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(src[static_cast<std::size_t>(i)]);
  h.src = MacAddr{octets};
  return h;
}

std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | static_cast<std::uint32_t>(data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void Ipv4Header::encode(WireWriter& w) const {
  // Written straight into the output buffer; the checksum is computed over
  // the in-place header and patched, so encoding allocates nothing.
  const std::size_t start = w.size();
  w.u8(0x45);  // version 4, IHL 5
  w.u8(dscp);
  w.u16(total_length);
  w.u16(identification);
  w.u16(0x4000);  // flags: DF, fragment offset 0
  w.u8(ttl);
  w.u8(protocol);
  w.u16(0);  // checksum placeholder
  w.u32(src.value());
  w.u32(dst.value());
  const std::uint16_t sum = internet_checksum(w.written(start, kIpv4HeaderSize));
  w.patch_u16(start + 10, sum);
}

std::optional<Ipv4Header> Ipv4Header::decode(WireReader& r) {
  auto raw = r.bytes(kIpv4HeaderSize);
  if (!r.ok()) return std::nullopt;
  if (internet_checksum(raw) != 0) return std::nullopt;
  WireReader hr{raw};
  const std::uint8_t version_ihl = hr.u8();
  if (version_ihl != 0x45) return std::nullopt;  // options unsupported
  Ipv4Header h;
  h.dscp = hr.u8();
  h.total_length = hr.u16();
  h.identification = hr.u16();
  hr.skip(2);  // flags/fragment
  h.ttl = hr.u8();
  h.protocol = hr.u8();
  h.checksum = hr.u16();
  h.src = Ipv4Addr{hr.u32()};
  h.dst = Ipv4Addr{hr.u32()};
  if (!hr.ok()) return std::nullopt;
  return h;
}

void UdpHeader::encode(WireWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(0);  // checksum optional in IPv4; zero = not computed
}

std::optional<UdpHeader> UdpHeader::decode(WireReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  (void)r.u16();  // checksum
  if (!r.ok()) return std::nullopt;
  return h;
}

void TcpHeader::encode(WireWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(0x50);  // data offset 5 words
  w.u8(flags);
  w.u16(window);
  w.u16(0);  // checksum (not modelled; links are reliable unless told not to be)
  w.u16(0);  // urgent pointer
}

std::optional<TcpHeader> TcpHeader::decode(WireReader& r) {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  const std::uint8_t offset = r.u8();
  h.flags = r.u8();
  h.window = r.u16();
  r.skip(4);  // checksum + urgent
  if (!r.ok() || offset != 0x50) return std::nullopt;
  return h;
}

std::optional<DecodedFrame> decode_frame(std::span<const std::byte> frame) {
  WireReader r{frame};
  auto eth = EthernetHeader::decode(r);
  if (!eth) return std::nullopt;
  DecodedFrame out;
  out.eth = *eth;
  if (eth->ethertype != kEtherTypeIpv4) {
    out.payload = frame.subspan(r.position());
    return out;
  }
  auto ip = Ipv4Header::decode(r);
  if (!ip) return std::nullopt;
  out.ip = *ip;
  if (ip->total_length < kIpv4HeaderSize) return std::nullopt;
  const std::size_t l3_payload = ip->total_length - kIpv4HeaderSize;
  if (r.remaining() < l3_payload) return std::nullopt;
  if (ip->protocol == kIpProtoUdp) {
    auto udp = UdpHeader::decode(r);
    if (!udp || udp->length < kUdpHeaderSize) return std::nullopt;
    out.udp = *udp;
    const std::size_t l4_payload = udp->length - kUdpHeaderSize;
    if (r.remaining() < l4_payload) return std::nullopt;
    out.payload = frame.subspan(r.position(), l4_payload);
  } else if (ip->protocol == kIpProtoTcp) {
    if (l3_payload < kTcpHeaderSize) return std::nullopt;
    auto tcp = TcpHeader::decode(r);
    if (!tcp) return std::nullopt;
    out.tcp = *tcp;
    const std::size_t l4_payload = l3_payload - kTcpHeaderSize;
    if (r.remaining() < l4_payload) return std::nullopt;
    out.payload = frame.subspan(r.position(), l4_payload);
  } else {
    out.payload = frame.subspan(r.position(), l3_payload);
  }
  return out;
}

namespace {

// Pads to the Ethernet minimum and appends a 4-byte FCS placeholder.
void finish_frame(std::vector<std::byte>& frame) {
  if (frame.size() + kEthernetFcsSize < kMinEthernetFrame) {
    frame.resize(kMinEthernetFrame - kEthernetFcsSize, std::byte{0});
  }
  frame.insert(frame.end(), kEthernetFcsSize, std::byte{0});
}

}  // namespace

void build_udp_frame_into(std::vector<std::byte>& frame, MacAddr src_mac, MacAddr dst_mac,
                          Ipv4Addr src_ip, Ipv4Addr dst_ip, std::uint16_t src_port,
                          std::uint16_t dst_port, std::span<const std::byte> payload) {
  frame.clear();
  frame.reserve(kEthernetHeaderSize + kIpv4HeaderSize + kUdpHeaderSize + payload.size() +
                kEthernetFcsSize);
  WireWriter w{frame};
  EthernetHeader{dst_mac, src_mac, kEtherTypeIpv4}.encode(w);
  Ipv4Header ip;
  ip.total_length =
      static_cast<std::uint16_t>(kIpv4HeaderSize + kUdpHeaderSize + payload.size());
  ip.protocol = kIpProtoUdp;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.encode(w);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderSize + payload.size());
  udp.encode(w);
  w.bytes(payload);
  finish_frame(frame);
}

std::vector<std::byte> build_udp_frame(MacAddr src_mac, MacAddr dst_mac, Ipv4Addr src_ip,
                                       Ipv4Addr dst_ip, std::uint16_t src_port,
                                       std::uint16_t dst_port,
                                       std::span<const std::byte> payload) {
  std::vector<std::byte> frame;
  build_udp_frame_into(frame, src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, payload);
  return frame;
}

std::vector<std::byte> build_tcp_frame(MacAddr src_mac, MacAddr dst_mac, Ipv4Addr src_ip,
                                       Ipv4Addr dst_ip, const TcpHeader& tcp,
                                       std::span<const std::byte> payload) {
  std::vector<std::byte> frame;
  frame.reserve(kEthernetHeaderSize + kIpv4HeaderSize + kTcpHeaderSize + payload.size() +
                kEthernetFcsSize);
  WireWriter w{frame};
  EthernetHeader{dst_mac, src_mac, kEtherTypeIpv4}.encode(w);
  Ipv4Header ip;
  ip.total_length =
      static_cast<std::uint16_t>(kIpv4HeaderSize + kTcpHeaderSize + payload.size());
  ip.protocol = kIpProtoTcp;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.encode(w);
  tcp.encode(w);
  w.bytes(payload);
  finish_frame(frame);
  return frame;
}

std::vector<std::byte> build_multicast_frame(MacAddr src_mac, Ipv4Addr src_ip, Ipv4Addr group,
                                             std::uint16_t dst_port,
                                             std::span<const std::byte> payload) {
  return build_udp_frame(src_mac, multicast_mac(group), src_ip, group, dst_port, dst_port,
                         payload);
}

void build_multicast_frame_into(std::vector<std::byte>& frame, MacAddr src_mac, Ipv4Addr src_ip,
                                Ipv4Addr group, std::uint16_t dst_port,
                                std::span<const std::byte> payload) {
  build_udp_frame_into(frame, src_mac, multicast_mac(group), src_ip, group, dst_port, dst_port,
                       payload);
}

}  // namespace tsn::net
