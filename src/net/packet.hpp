// The unit of transfer in the simulator: an immutable Ethernet frame plus
// simulation metadata.
//
// Packets are shared immutably (`PacketPtr`) so that multicast fan-out
// through switches does not copy payload bytes — mirroring how a real switch
// replicates a frame by reference until egress.
//
// Hot-path memory model: the paper's workloads are tiny frames at extreme
// rates (26 B new-order / 14 B cancel, ≥500k events/s — PAPER §3, Table 1),
// so frames up to `Packet::kInlineCapacity` live inside the Packet object
// itself, and `PacketFactory` recycles the shared_ptr control block + Packet
// allocation through a freelist (`detail::BlockPool`). Once the pool is
// warm, a make → fan-out → drop cycle performs zero heap allocations; only
// MTU-scale frames (PITCH unit batches) fall back to heap payload storage.
// Recycling is reference-safe by construction: a block returns to the
// freelist only when the last PacketPtr (and weak ref) drops, so a recycled
// frame can never alias through a still-held pointer.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/trace.hpp"

namespace tsn::net {

// Per-frame Ethernet wire overhead that never appears in the frame buffer:
// preamble + start-of-frame delimiter, and the inter-packet gap. Shared by
// Packet::wire_bytes(), the link serialization model, and the analytical
// latency model so they can never disagree.
inline constexpr std::size_t kPreambleSfdBytes = 8;
inline constexpr std::size_t kInterPacketGapBytes = 12;
inline constexpr std::size_t kWireOverheadBytes = kPreambleSfdBytes + kInterPacketGapBytes;

class Packet {
 public:
  // Covers every PITCH/BOE message frame in the paper's Table 1 (14–42 B
  // payloads; full frames stay ≤ 64 B only for the compressed/L1 formats,
  // so this is sized to the common small-control/market-message case).
  static constexpr std::size_t kInlineCapacity = 64;

  // Large frames move the vector in (zero copy); small ones are copied into
  // inline storage and the vector is discarded.
  // tsn-lint: hotpath
  Packet(std::vector<std::byte> frame, sim::Time created, std::uint64_t id,
         telemetry::TraceId trace = 0) noexcept
      : created_(created), id_(id), trace_(trace) {
    if (frame.size() <= kInlineCapacity) {
      size_ = static_cast<std::uint32_t>(frame.size());
      // Bounds-checked by the branch above (size <= kInlineCapacity).
      if (!frame.empty()) std::memcpy(inline_frame_.data(), frame.data(), frame.size());  // tsn-lint: allow(raw-memcpy)
    } else {
      heap_frame_ = std::move(frame);
      size_ = static_cast<std::uint32_t>(heap_frame_.size());
      inline_stored_ = false;
    }
  }

  // Copies the bytes (inline when they fit), leaving the caller free to
  // reuse its scratch buffer — the allocation-free path for small frames.
  // tsn-lint: hotpath
  Packet(std::span<const std::byte> frame, sim::Time created, std::uint64_t id,
         telemetry::TraceId trace = 0)
      : created_(created), id_(id), trace_(trace) {
    size_ = static_cast<std::uint32_t>(frame.size());
    if (frame.size() <= kInlineCapacity) {
      // Bounds-checked by the branch above (size <= kInlineCapacity).
      if (!frame.empty()) std::memcpy(inline_frame_.data(), frame.data(), frame.size());  // tsn-lint: allow(raw-memcpy)
    } else {
      heap_frame_.assign(frame.begin(), frame.end());
      inline_stored_ = false;
    }
  }

  [[nodiscard]] std::span<const std::byte> frame() const noexcept {
    return inline_stored_ ? std::span<const std::byte>{inline_frame_.data(), size_}
                          : std::span<const std::byte>{heap_frame_};
  }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return size_; }
  // On-the-wire size including preamble + SFD and inter-packet gap, which is
  // what serialization delay must account for.
  [[nodiscard]] std::size_t wire_bytes() const noexcept { return size_ + kWireOverheadBytes; }
  // True when the frame lives inside the Packet object (no heap payload).
  [[nodiscard]] bool inline_stored() const noexcept { return inline_stored_; }

  // Origin timestamp: when the sender handed the frame to its NIC.
  [[nodiscard]] sim::Time created() const noexcept { return created_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  // Telemetry trace this frame belongs to (0 = untraced). Rewritten copies
  // of a frame (switch MAC rewrite, protocol relays) must carry it forward.
  [[nodiscard]] telemetry::TraceId trace() const noexcept { return trace_; }

 private:
  std::vector<std::byte> heap_frame_;  // empty when inline_stored_
  std::array<std::byte, kInlineCapacity> inline_frame_;
  sim::Time created_;
  std::uint64_t id_;
  telemetry::TraceId trace_ = 0;
  std::uint32_t size_ = 0;
  bool inline_stored_ = true;
};

using PacketPtr = std::shared_ptr<const Packet>;

namespace detail {

// Freelist of fixed-size blocks backing pooled shared_ptr allocations. The
// block size is pinned by the first allocation (the allocate_shared
// control-block-plus-Packet node); other sizes fall through to the global
// allocator untracked. Single-threaded by design, like the simulator.
class BlockPool {
 public:
  BlockPool() = default;
  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  ~BlockPool() {
    for (void* block : free_) ::operator delete(block);
  }

  // tsn-lint: hotpath
  [[nodiscard]] void* allocate(std::size_t bytes) {
    if (block_size_ == 0) block_size_ = bytes;
    if (bytes != block_size_) {
      ++fallback_allocations_;
      // tsn-lint: allow(hotpath-alloc) off-size fallback: MTU-scale frames only, counted
      return ::operator new(bytes);
    }
    if (!free_.empty()) {
      void* block = free_.back();
      free_.pop_back();
      ++reused_;
      return block;
    }
    ++allocated_;
    // tsn-lint: allow(hotpath-alloc) cold-start growth: never taken once the pool is warm
    return ::operator new(bytes);
  }

  // tsn-lint: hotpath
  void deallocate(void* block, std::size_t bytes) noexcept {
    if (bytes != block_size_) {
      // tsn-lint: allow(hotpath-alloc) off-size fallback release, pairs with the fallback new
      ::operator delete(block);
      return;
    }
    // push_back cannot allocate here: capacity was reserved to cover every
    // block this pool has ever handed out.
    free_.push_back(block);
  }

  // Called after each fresh allocation to keep the freelist pre-sized.
  void reserve_freelist() { free_.reserve(allocated_); }

  [[nodiscard]] std::uint64_t blocks_allocated() const noexcept { return allocated_; }
  [[nodiscard]] std::uint64_t blocks_reused() const noexcept { return reused_; }
  [[nodiscard]] std::size_t free_blocks() const noexcept { return free_.size(); }

 private:
  std::vector<void*> free_;
  std::size_t block_size_ = 0;
  std::uint64_t allocated_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t fallback_allocations_ = 0;
};

// Minimal allocator over a shared BlockPool. Copies (including the one the
// shared_ptr control block keeps) share the pool and keep it alive, so
// blocks released after the factory is gone still return safely.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(std::shared_ptr<BlockPool> pool) noexcept : pool_(std::move(pool)) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) noexcept : pool_(other.pool_) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "pooled blocks are max_align_t-aligned");
    T* p = static_cast<T*>(pool_->allocate(n * sizeof(T)));
    pool_->reserve_freelist();
    return p;
  }
  void deallocate(T* p, std::size_t n) noexcept { pool_->deallocate(p, n * sizeof(T)); }

  template <typename U>
  [[nodiscard]] bool operator==(const PoolAllocator<U>& other) const noexcept {
    return pool_ == other.pool_;
  }

 private:
  template <typename U>
  friend class PoolAllocator;
  std::shared_ptr<BlockPool> pool_;
};

}  // namespace detail

// Process-wide monotonic packet ids; simulation determinism does not depend
// on ids, only uniqueness within a run. Packets are carved out of a
// per-factory freelist pool; see the file header for the recycling contract.
class PacketFactory {
 public:
  // New frames are stamped with the ambient trace id, so a packet sent from
  // inside a TraceScope joins that scope's trace with no per-call plumbing.
  // tsn-lint: hotpath
  [[nodiscard]] PacketPtr make(std::vector<std::byte> frame, sim::Time created) {
    return std::allocate_shared<Packet>(alloc(), std::move(frame), created, next_id_++,
                                        telemetry::current_trace());
  }
  // tsn-lint: hotpath
  [[nodiscard]] PacketPtr make(std::span<const std::byte> frame, sim::Time created) {
    return std::allocate_shared<Packet>(alloc(), frame, created, next_id_++,
                                        telemetry::current_trace());
  }

  // Rewritten copy of an existing frame (e.g. a switch's last-hop MAC
  // rewrite): keeps the original id/timestamp/trace — it is the same frame
  // on the wire.
  // tsn-lint: hotpath
  [[nodiscard]] PacketPtr remake(std::span<const std::byte> frame, sim::Time created,
                                 std::uint64_t id, telemetry::TraceId trace) {
    return std::allocate_shared<Packet>(alloc(), frame, created, id, trace);
  }

  // Pre-warms the freelist to at least `packets` recycled blocks.
  void reserve(std::size_t packets) {
    std::vector<PacketPtr> warm;
    warm.reserve(packets);
    const std::byte seed[1] = {};
    while (pool_->blocks_allocated() < packets) {
      warm.push_back(remake(std::span<const std::byte>{seed, 0}, sim::Time::zero(), 0, 0));
    }
  }

  [[nodiscard]] std::uint64_t pool_blocks_allocated() const noexcept {
    return pool_->blocks_allocated();
  }
  [[nodiscard]] std::uint64_t pool_blocks_reused() const noexcept {
    return pool_->blocks_reused();
  }

 private:
  [[nodiscard]] detail::PoolAllocator<Packet> alloc() const noexcept {
    return detail::PoolAllocator<Packet>{pool_};
  }

  std::uint64_t next_id_ = 1;
  std::shared_ptr<detail::BlockPool> pool_ = std::make_shared<detail::BlockPool>();
};

}  // namespace tsn::net
