// The unit of transfer in the simulator: an immutable Ethernet frame plus
// simulation metadata.
//
// Packets are shared immutably (`PacketPtr`) so that multicast fan-out
// through switches does not copy payload bytes — mirroring how a real switch
// replicates a frame by reference until egress.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/trace.hpp"

namespace tsn::net {

class Packet {
 public:
  Packet(std::vector<std::byte> frame, sim::Time created, std::uint64_t id,
         telemetry::TraceId trace = 0) noexcept
      : frame_(std::move(frame)), created_(created), id_(id), trace_(trace) {}

  [[nodiscard]] std::span<const std::byte> frame() const noexcept { return frame_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return frame_.size(); }
  // On-the-wire size including preamble + SFD (8) and inter-packet gap (12),
  // which is what serialization delay must account for.
  [[nodiscard]] std::size_t wire_bytes() const noexcept { return frame_.size() + 20; }

  // Origin timestamp: when the sender handed the frame to its NIC.
  [[nodiscard]] sim::Time created() const noexcept { return created_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  // Telemetry trace this frame belongs to (0 = untraced). Rewritten copies
  // of a frame (switch MAC rewrite, protocol relays) must carry it forward.
  [[nodiscard]] telemetry::TraceId trace() const noexcept { return trace_; }

 private:
  std::vector<std::byte> frame_;
  sim::Time created_;
  std::uint64_t id_;
  telemetry::TraceId trace_ = 0;
};

using PacketPtr = std::shared_ptr<const Packet>;

// Process-wide monotonic packet ids; simulation determinism does not depend
// on ids, only uniqueness within a run.
class PacketFactory {
 public:
  // New frames are stamped with the ambient trace id, so a packet sent from
  // inside a TraceScope joins that scope's trace with no per-call plumbing.
  [[nodiscard]] PacketPtr make(std::vector<std::byte> frame, sim::Time created) {
    return std::make_shared<Packet>(std::move(frame), created, next_id_++,
                                    telemetry::current_trace());
  }

 private:
  std::uint64_t next_id_ = 1;
};

}  // namespace tsn::net
