#include "net/link.hpp"

#include <cassert>
#include <utility>

#include "telemetry/trace.hpp"

namespace tsn::net {

// 128-bit intermediate for rate arithmetic; __extension__ keeps the GCC
// builtin usable under -Wpedantic.
__extension__ typedef __int128 Int128;

Link::Link(sim::Scheduler& engine, std::string name, LinkConfig config)
    : engine_(engine), name_(std::move(name)), config_(config) {}

void Link::connect_to(Device& destination, PortId destination_port) noexcept {
  destination_ = &destination;
  destination_port_ = destination_port;
}

sim::Duration Link::serialization_delay(std::size_t wire_bytes) const noexcept {
  if (config_.rate_bps == 0) return sim::Duration::zero();
  // picoseconds = bits * 1e12 / rate_bps
  const auto bits = static_cast<std::uint64_t>(wire_bytes) * 8;
  return sim::Duration{
      static_cast<std::int64_t>((static_cast<Int128>(bits) * 1'000'000'000'000) /
                                config_.rate_bps)};
}

sim::Duration Link::current_backlog() const noexcept {
  const sim::Time now = engine_.now();
  return egress_free_at_ > now ? egress_free_at_ - now : sim::Duration::zero();
}

void Link::transmit(const PacketPtr& packet) {
  assert((destination_ != nullptr || remote_delivery_) && "link not connected");
  if (!admin_up_) {
    ++stats_.frames_dropped_down;
    return;
  }
  const double loss = effective_loss();
  if (loss > 0.0 && rng_.bernoulli(loss)) {
    ++stats_.frames_dropped_loss;
    return;
  }
  const sim::Time now = engine_.now();
  const sim::Duration backlog = current_backlog();
  // Backlog expressed in buffered bytes at line rate; infinite-rate links
  // never queue.
  if (config_.rate_bps != 0) {
    const auto backlog_bytes = static_cast<std::size_t>(
        (static_cast<Int128>(backlog.picos()) * config_.rate_bps) / (8 * 1'000'000'000'000LL));
    if (backlog_bytes + packet->size_bytes() > config_.queue_capacity_bytes) {
      ++stats_.frames_dropped_queue;
      return;
    }
  }
  if (backlog > stats_.max_queue_delay) stats_.max_queue_delay = backlog;
  const sim::Duration ser = serialization_delay(packet->wire_bytes());
  const sim::Time start = now + backlog;
  egress_free_at_ = start + ser;
  const sim::Time arrival = egress_free_at_ + config_.propagation;
  ++stats_.frames_delivered;
  stats_.bytes_delivered += packet->size_bytes();
  // Link span: sender hand-off (including queue wait) to wire arrival, so a
  // path's link + hop spans tile the timeline exactly.
  telemetry::record_span(packet->trace(), name_, config_.span_kind, now, arrival);
  if (remote_delivery_) {
    remote_delivery_(arrival, packet);
    return;
  }
  Device* dst = destination_;
  const PortId port = destination_port_;
  engine_.schedule_at(arrival, [dst, port, packet] { dst->receive(packet, port); });
}

}  // namespace tsn::net
