// NICs and hosts.
//
// A `Nic` is the Device endpoint a server exposes on the network. A `Host`
// owns one or more NICs (the paper's servers use separate NICs for
// management, market data, and orders — Figure 1(d)) and models the
// software hop: a configurable delay between a frame arriving at the NIC
// and the application handler running (kernel-bypass stacks put this below
// one microsecond, §3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/addr.hpp"
#include "net/device.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"

namespace tsn::net {

class Nic final : public PortedDevice {
 public:
  // Handler invoked when a frame is delivered to software (after the host's
  // software latency, if the NIC belongs to a host).
  using RxHandler = std::function<void(const PacketPtr&, sim::Time arrival)>;

  Nic(sim::Scheduler& engine, std::string name, MacAddr mac, Ipv4Addr ip);

  void attach_port(PortId port, Link& egress) noexcept override;
  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }
  // Extra delay between NIC arrival and the handler running (software hop).
  void set_rx_delay(sim::Duration delay) noexcept { rx_delay_ = delay; }
  // If true (default), frames whose destination MAC is neither this NIC's
  // unicast address, broadcast, nor a subscribed multicast MAC are dropped,
  // like a real NIC's hardware filter.
  void set_promiscuous(bool on) noexcept { promiscuous_ = on; }
  void subscribe_multicast_mac(MacAddr mac);
  void unsubscribe_multicast_mac(MacAddr mac);

  // Transmits a pre-built frame.
  void send(const PacketPtr& packet);
  // Convenience: wraps bytes in a Packet stamped with the current time.
  PacketPtr send_frame(std::vector<std::byte> frame);
  // Allocation-free variant for hot senders: the bytes are copied into the
  // pooled Packet (inline for small frames), so the caller can reuse its
  // scratch buffer across sends.
  PacketPtr send_frame(std::span<const std::byte> frame);
  // Pooled packet source for this NIC (pre-warm or inspect reuse counters).
  [[nodiscard]] PacketFactory& packets() noexcept { return factory_; }

  void receive(const PacketPtr& packet, PortId port) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  [[nodiscard]] MacAddr mac() const noexcept { return mac_; }
  [[nodiscard]] Ipv4Addr ip() const noexcept { return ip_; }
  [[nodiscard]] std::uint64_t rx_frames() const noexcept { return rx_frames_; }
  [[nodiscard]] std::uint64_t tx_frames() const noexcept { return tx_frames_; }
  [[nodiscard]] std::uint64_t rx_filtered() const noexcept { return rx_filtered_; }
  [[nodiscard]] sim::Scheduler& engine() noexcept { return engine_; }

 private:
  sim::Scheduler& engine_;
  std::string name_;
  MacAddr mac_;
  Ipv4Addr ip_;
  Link* egress_ = nullptr;
  RxHandler rx_handler_;
  sim::Duration rx_delay_ = sim::Duration::zero();
  bool promiscuous_ = false;
  std::vector<MacAddr> mcast_macs_;
  PacketFactory factory_;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t tx_frames_ = 0;
  std::uint64_t rx_filtered_ = 0;
};

// A bare-metal server with one or more NICs and a modelled application
// processing latency.
class Host {
 public:
  Host(sim::Scheduler& engine, std::string name, sim::Duration software_latency);

  // Adds a NIC; rx frames reach handlers software_latency after arrival.
  Nic& add_nic(std::string suffix, MacAddr mac, Ipv4Addr ip);

  [[nodiscard]] Nic& nic(std::size_t index) { return *nics_.at(index); }
  [[nodiscard]] const Nic& nic(std::size_t index) const { return *nics_.at(index); }
  [[nodiscard]] std::size_t nic_count() const noexcept { return nics_.size(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] sim::Duration software_latency() const noexcept { return software_latency_; }
  [[nodiscard]] sim::Scheduler& engine() noexcept { return engine_; }

 private:
  sim::Scheduler& engine_;
  std::string name_;
  sim::Duration software_latency_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace tsn::net
