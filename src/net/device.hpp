// The device abstraction every simulated box implements: hosts' NICs,
// commodity switches, Layer-1 switches, taps, and exchange access ports.
#pragma once

#include <cstdint>
#include <string_view>

#include "net/packet.hpp"

namespace tsn::net {

using PortId = std::uint32_t;

class Link;

class Device {
 public:
  virtual ~Device() = default;

  // Called by the attached Link when a frame finishes arriving on `port`.
  virtual void receive(const PacketPtr& packet, PortId port) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

// Devices with attachable egress ports (switches, NICs) implement this so
// that wiring helpers can connect cables generically.
class PortedDevice : public Device {
 public:
  virtual void attach_port(PortId port, Link& egress) noexcept = 0;
};

// Fault-injection control surface (driven by fault::FaultInjector). Links
// and switches implement it so scripted failure drills can flip
// availability and loss rates by name, without reaching into entity state.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  // Administrative availability. While down the entity drops everything it
  // is handed — a pulled cable, a faded microwave path, a dead linecard.
  virtual void set_admin_up(bool up) noexcept = 0;
  [[nodiscard]] virtual bool admin_up() const noexcept = 0;

  // Dynamic loss override: replaces the configured loss probability until
  // cleared. Negative values clear the override.
  virtual void set_loss_override(double probability) noexcept = 0;
  [[nodiscard]] virtual double loss_override() const noexcept = 0;
};

}  // namespace tsn::net
