// Cross-shard link bridging for the sharded simulation engine.
//
// A bridged link models exactly the same wire as a local one — admin state,
// loss, egress queueing, serialization, and propagation all run on the
// sending shard — but its delivery hop crosses domains through
// `Domain::post_to` instead of a local `schedule_at`. The link's propagation
// delay is registered with the ShardedEngine as a lookahead bound, which is
// what makes conservative window synchronization sound: no frame can arrive
// on the far shard sooner than the shortest bridged propagation delay.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/check.hpp"
#include "net/device.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/domain.hpp"
#include "sim/sharded_engine.hpp"

namespace tsn::net {

// Wires `link` (owned by shard `src`, typically via Fabric::make_remote_link
// on that shard's fabric) to `destination` living on shard `dst`. Frame
// bytes are copied out and the packet rebuilt in the destination fabric's
// factory: packet pools are single-threaded by design, so a PacketPtr must
// never cross shards. The frame's id and origin timestamp survive the
// rebuild; its trace id does not (traces are shard-local).
inline void bridge_domains(sim::ShardedEngine& engine, sim::Domain& src, Link& link,
                           sim::Domain& dst, PacketFactory& dst_packets, Device& destination,
                           PortId destination_port) {
  TSN_ASSERT(src.domain_id() != dst.domain_id(), "bridging a domain to itself");
  TSN_ASSERT(link.config().propagation > sim::Duration::zero(),
             "a cross-domain link needs nonzero propagation to bound the lookahead");
  engine.note_cross_domain_delay(link.config().propagation);
  sim::Domain* source = &src;
  const sim::DomainId dst_id = dst.domain_id();
  PacketFactory* packets = &dst_packets;
  Device* device = &destination;
  link.set_remote_delivery([source, dst_id, packets, device, destination_port](
                               sim::Time arrival, const PacketPtr& packet) {
    std::vector<std::byte> bytes{packet->frame().begin(), packet->frame().end()};
    source->post_to(dst_id, arrival,
                    [packets, device, destination_port, bytes = std::move(bytes),
                     created = packet->created(), id = packet->id()] {
                      device->receive(packets->remake(bytes, created, id, 0), destination_port);
                    });
  });
}

}  // namespace tsn::net
