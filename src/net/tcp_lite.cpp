#include "net/tcp_lite.hpp"

#include <algorithm>

#include "net/stack.hpp"
#include "telemetry/trace.hpp"

namespace tsn::net {

TcpEndpoint::TcpEndpoint(NetStack& stack, MacAddr peer_mac, Ipv4Addr peer_ip,
                         std::uint16_t peer_port, std::uint16_t local_port, TcpConfig config)
    : stack_(stack),
      peer_mac_(peer_mac),
      peer_ip_(peer_ip),
      peer_port_(peer_port),
      local_port_(local_port),
      config_(config) {}

TcpEndpoint::~TcpEndpoint() {
  // A pending RTO lambda captures `this`; cancel it so destruction (e.g.
  // NetStack::reap_closed) cannot leave a dangling timer in the engine.
  stack_.engine().cancel(rto_timer_);
}

void TcpEndpoint::set_state(TcpState state) {
  if (state_ == state) return;
  state_ = state;
  if (state_handler_) state_handler_(state);
}

void TcpEndpoint::notify_closed(TcpCloseReason reason) {
  if (closed_notified_) return;
  closed_notified_ = true;
  close_reason_ = reason;
  if (closed_handler_) closed_handler_(reason);
}

void TcpEndpoint::transmit_segment(std::uint32_t seq, std::span<const std::byte> payload,
                                   std::uint8_t flags) {
  TcpHeader tcp;
  tcp.src_port = local_port_;
  tcp.dst_port = peer_port_;
  tcp.seq = seq;
  tcp.ack = rcv_next_;
  tcp.flags = flags;
  auto frame = build_tcp_frame(stack_.nic().mac(), peer_mac_, stack_.nic().ip(), peer_ip_, tcp,
                               payload);
  stack_.nic().send_frame(std::move(frame));
}

void TcpEndpoint::start_connect() {
  set_state(TcpState::kSynSent);
  transmit_segment(0, {}, TcpHeader::kSyn);
  arm_rto();
}

void TcpEndpoint::accept_syn(std::uint32_t peer_isn) {
  rcv_next_ = peer_isn + 1;
  set_state(TcpState::kSynReceived);
  transmit_segment(0, {}, static_cast<std::uint8_t>(TcpHeader::kSyn | TcpHeader::kAck));
  arm_rto();
}

void TcpEndpoint::send(std::span<const std::byte> bytes) {
  // Segmentize immediately; segments created before establishment sit in
  // unacked_ and flush once the handshake completes.
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const std::size_t len = std::min(config_.mss, bytes.size() - offset);
    std::vector<std::byte> segment{bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                                   bytes.begin() + static_cast<std::ptrdiff_t>(offset + len)};
    const std::uint32_t seq = snd_next_;
    snd_next_ += static_cast<std::uint32_t>(len);
    unacked_.emplace_back(seq, std::move(segment));
    if (state_ == TcpState::kEstablished) {
      const auto& stored = unacked_.back().second;
      transmit_segment(seq, stored,
                       static_cast<std::uint8_t>(TcpHeader::kAck | TcpHeader::kPsh));
      bytes_sent_ += len;
    }
    offset += len;
  }
  if (!unacked_.empty()) arm_rto();
}

void TcpEndpoint::flush_send_queue() {
  for (const auto& [seq, segment] : unacked_) {
    transmit_segment(seq, segment, static_cast<std::uint8_t>(TcpHeader::kAck | TcpHeader::kPsh));
    bytes_sent_ += segment.size();
  }
  if (!unacked_.empty()) arm_rto();
}

void TcpEndpoint::close() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) return;
  closed_notified_ = true;  // locally initiated: the owner already knows
  transmit_segment(snd_next_, {}, static_cast<std::uint8_t>(TcpHeader::kFin | TcpHeader::kAck));
  ++snd_next_;  // FIN consumes a sequence number
  set_state(state_ == TcpState::kCloseWait ? TcpState::kClosed : TcpState::kFinWait);
}

void TcpEndpoint::abort() {
  if (state_ == TcpState::kClosed) return;
  stack_.engine().cancel(rto_timer_);
  rto_timer_ = sim::EventHandle{};
  unacked_.clear();
  out_of_order_.clear();
  set_state(TcpState::kClosed);
  notify_closed(TcpCloseReason::kAborted);
}

void TcpEndpoint::send_ack() {
  // Pure ACKs ride outside any trace: a traced data segment's delivery
  // triggers an ACK in the opposite direction, which would fork the trace
  // into a non-linear graph and break span tiling.
  telemetry::TraceScope untraced{0};
  transmit_segment(snd_next_, {}, TcpHeader::kAck);
}

void TcpEndpoint::arm_rto() {
  stack_.engine().cancel(rto_timer_);
  rto_timer_ = stack_.engine().schedule_in(config_.rto, [this] { on_rto(); });
}

void TcpEndpoint::on_rto() {
  if (state_ == TcpState::kClosed) return;
  // Retransmissions are recovery traffic, not part of the original path.
  telemetry::TraceScope untraced{0};
  if (++rto_strikes_ > config_.max_retransmits) {
    // The peer is unreachable. Tell the owner — stalling here silently is
    // exactly how a gateway loses track of its exchange session.
    set_state(TcpState::kClosed);
    notify_closed(TcpCloseReason::kRetransmitExhausted);
    return;
  }
  ++retransmits_;
  switch (state_) {
    case TcpState::kSynSent:
      transmit_segment(0, {}, TcpHeader::kSyn);
      break;
    case TcpState::kSynReceived:
      transmit_segment(0, {}, static_cast<std::uint8_t>(TcpHeader::kSyn | TcpHeader::kAck));
      break;
    default:
      // Go-back-N: retransmit everything outstanding.
      for (const auto& [seq, segment] : unacked_) {
        transmit_segment(seq, segment,
                         static_cast<std::uint8_t>(TcpHeader::kAck | TcpHeader::kPsh));
      }
      break;
  }
  if (!unacked_.empty() || state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived) {
    arm_rto();
  }
}

void TcpEndpoint::deliver_in_order() {
  // Drain any out-of-order segments that are now contiguous.
  auto it = out_of_order_.begin();
  while (it != out_of_order_.end() && it->first <= rcv_next_) {
    if (it->first + it->second.size() > rcv_next_) {
      const std::size_t skip = rcv_next_ - it->first;
      std::span<const std::byte> fresh{it->second.data() + skip, it->second.size() - skip};
      rcv_next_ += static_cast<std::uint32_t>(fresh.size());
      bytes_received_ += fresh.size();
      if (data_handler_) data_handler_(fresh, stack_.engine().now());
    }
    it = out_of_order_.erase(it);
  }
}

void TcpEndpoint::on_segment(const TcpHeader& tcp, std::span<const std::byte> payload,
                             sim::Time arrival) {
  if ((tcp.flags & TcpHeader::kSyn) != 0 && (tcp.flags & TcpHeader::kAck) != 0) {
    if (state_ == TcpState::kSynSent) {
      rcv_next_ = tcp.seq + 1;
      rto_strikes_ = 0;
      stack_.engine().cancel(rto_timer_);
      rto_timer_ = sim::EventHandle{};
      set_state(TcpState::kEstablished);
      send_ack();
      flush_send_queue();
    } else {
      send_ack();  // duplicate SYN-ACK: our ACK was lost
    }
    return;
  }

  if ((tcp.flags & TcpHeader::kAck) != 0) {
    if (state_ == TcpState::kSynReceived) {
      rto_strikes_ = 0;
      stack_.engine().cancel(rto_timer_);
      rto_timer_ = sim::EventHandle{};
      set_state(TcpState::kEstablished);
      flush_send_queue();
    }
    bool advanced = false;
    while (!unacked_.empty()) {
      const auto& [seq, segment] = unacked_.front();
      if (seq + segment.size() <= tcp.ack) {
        unacked_.pop_front();
        advanced = true;
      } else {
        break;
      }
    }
    if (advanced) {
      snd_una_ = tcp.ack;
      rto_strikes_ = 0;
      stack_.engine().cancel(rto_timer_);
      rto_timer_ = sim::EventHandle{};
      if (!unacked_.empty()) arm_rto();
    }
  }

  if (!payload.empty() && state_ == TcpState::kEstablished) {
    if (tcp.seq == rcv_next_) {
      rcv_next_ += static_cast<std::uint32_t>(payload.size());
      bytes_received_ += payload.size();
      if (data_handler_) data_handler_(payload, arrival);
      deliver_in_order();
      send_ack();
    } else if (tcp.seq > rcv_next_) {
      out_of_order_.emplace(tcp.seq,
                            std::vector<std::byte>{payload.begin(), payload.end()});
      send_ack();  // duplicate ack signalling the gap
    } else {
      send_ack();  // stale retransmission
    }
  }

  if ((tcp.flags & TcpHeader::kFin) != 0) {
    rcv_next_ = tcp.seq + static_cast<std::uint32_t>(payload.size()) + 1;
    send_ack();
    if (state_ == TcpState::kFinWait) {
      set_state(TcpState::kClosed);
    } else if (state_ == TcpState::kEstablished) {
      set_state(TcpState::kCloseWait);
      notify_closed(TcpCloseReason::kPeerFin);
    }
  }
}

}  // namespace tsn::net
