// Byte-level wire encoding and decoding.
//
// `WireWriter` appends big-endian (network order) fields to a growable
// buffer; `WireReader` consumes them from a span. Both are used by the
// Ethernet/IP/UDP/TCP codecs (big-endian) and, with the _le variants, by the
// exchange protocols in tsn::proto, which — like real PITCH/BOE — are
// little-endian.
//
// A reader that runs past the end sets a sticky failure flag and returns
// zeros rather than throwing: truncated frames are data, not logic errors.
// Multi-byte reads fail atomically — a read straddling the end of the buffer
// yields zero, never a value assembled from partial bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/check.hpp"

namespace tsn::net {

class WireWriter {
 public:
  explicit WireWriter(std::vector<std::byte>& out) noexcept : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }

  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

  void u16_le(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32_le(std::uint32_t v) {
    u16_le(static_cast<std::uint16_t>(v));
    u16_le(static_cast<std::uint16_t>(v >> 16));
  }
  void u64_le(std::uint64_t v) {
    u32_le(static_cast<std::uint32_t>(v));
    u32_le(static_cast<std::uint32_t>(v >> 32));
  }

  void bytes(std::span<const std::byte> data) { out_.insert(out_.end(), data.begin(), data.end()); }

  // Writes exactly `width` bytes: the string truncated or right-padded with
  // spaces (the convention exchange protocols use for symbols).
  void ascii(std::string_view text, std::size_t width) {
    for (std::size_t i = 0; i < width; ++i) {
      u8(i < text.size() ? static_cast<std::uint8_t>(text[i]) : std::uint8_t{' '});
    }
  }

  void zeros(std::size_t n) { out_.insert(out_.end(), n, std::byte{0}); }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

  // Read-back view of previously-written bytes (e.g. to checksum a header
  // in place instead of staging it in a scratch buffer).
  [[nodiscard]] std::span<const std::byte> written(std::size_t offset, std::size_t len) const {
    TSN_ASSERT(offset + len <= out_.size(), "written() range past end of buffer");
    return std::span<const std::byte>{out_}.subspan(offset, len);
  }

  // Patches a previously-written big-endian u16 at `offset` (e.g. a length
  // field known only after the body is written).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    TSN_ASSERT(offset + 2 <= out_.size(), "patch_u16 offset past end of buffer");
    out_[offset] = static_cast<std::byte>(v >> 8);
    out_[offset + 1] = static_cast<std::byte>(v);
  }
  void patch_u16_le(std::size_t offset, std::uint16_t v) {
    TSN_ASSERT(offset + 2 <= out_.size(), "patch_u16_le offset past end of buffer");
    out_[offset] = static_cast<std::byte>(v);
    out_[offset + 1] = static_cast<std::byte>(v >> 8);
  }

 private:
  std::vector<std::byte>& out_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t u8() noexcept {
    const std::byte* p = take(1);
    return p == nullptr ? 0 : static_cast<std::uint8_t>(p[0]);
  }
  [[nodiscard]] std::uint16_t u16() noexcept { return static_cast<std::uint16_t>(be(2)); }
  [[nodiscard]] std::uint32_t u32() noexcept { return static_cast<std::uint32_t>(be(4)); }
  [[nodiscard]] std::uint64_t u64() noexcept { return be(8); }

  [[nodiscard]] std::uint16_t u16_le() noexcept { return static_cast<std::uint16_t>(le(2)); }
  [[nodiscard]] std::uint32_t u32_le() noexcept { return static_cast<std::uint32_t>(le(4)); }
  [[nodiscard]] std::uint64_t u64_le() noexcept { return le(8); }

  [[nodiscard]] std::span<const std::byte> bytes(std::size_t n) noexcept {
    if (pos_ + n > data_.size()) {
      failed_ = true;
      pos_ = data_.size();
      return {};
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  // Reads `width` bytes and strips trailing spaces.
  [[nodiscard]] std::string_view ascii(std::size_t width) noexcept {
    auto raw = bytes(width);
    std::size_t len = raw.size();
    while (len > 0 && static_cast<char>(raw[len - 1]) == ' ') --len;
    // The span is bounds-checked by bytes(); viewing it as chars is safe.
    return {reinterpret_cast<const char*>(raw.data()), len};  // tsn-lint: allow(raw-cast)
  }

  void skip(std::size_t n) noexcept { (void)bytes(n); }

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool ok() const noexcept { return !failed_; }

 private:
  // Bounds-checks and consumes `n` bytes. On a short buffer the whole read
  // fails atomically: no partial bytes leak into the returned value, the
  // position clamps to the end, and the sticky flag is set.
  [[nodiscard]] const std::byte* take(std::size_t n) noexcept {
    if (failed_ || n > data_.size() - pos_) {
      failed_ = true;
      pos_ = data_.size();
      return nullptr;
    }
    const std::byte* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  [[nodiscard]] std::uint64_t be(std::size_t n) noexcept {
    const std::byte* p = take(n);
    if (p == nullptr) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) v = (v << 8) | static_cast<std::uint8_t>(p[i]);
    return v;
  }

  [[nodiscard]] std::uint64_t le(std::size_t n) noexcept {
    const std::byte* p = take(n);
    if (p == nullptr) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= std::uint64_t{static_cast<std::uint8_t>(p[i])} << (8 * i);
    }
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace tsn::net
