// Wire-accurate Ethernet II, IPv4, UDP and TCP header codecs.
//
// Frames in the simulator are real byte buffers: every hop that claims to
// parse or rewrite headers does so against these encodings, and all size
// accounting (the paper's Table 1 and §5 header-overhead discussion) is
// grounded in the actual encoded lengths.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/addr.hpp"
#include "net/wire.hpp"

namespace tsn::net {

inline constexpr std::size_t kEthernetHeaderSize = 14;
inline constexpr std::size_t kEthernetFcsSize = 4;
inline constexpr std::size_t kIpv4HeaderSize = 20;  // no options
inline constexpr std::size_t kUdpHeaderSize = 8;
inline constexpr std::size_t kTcpHeaderSize = 20;  // no options
// Minimum Ethernet frame (header + payload + FCS).
inline constexpr std::size_t kMinEthernetFrame = 64;

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint8_t kIpProtoUdp = 17;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoIgmp = 2;

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = kEtherTypeIpv4;

  void encode(WireWriter& w) const;
  [[nodiscard]] static std::optional<EthernetHeader> decode(WireReader& r);
};

struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // header + payload
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  std::uint16_t checksum = 0;  // filled in by encode()
  Ipv4Addr src;
  Ipv4Addr dst;

  // Encodes with a correct header checksum (computed, not trusted).
  void encode(WireWriter& w) const;
  // Decodes and verifies the checksum; returns nullopt on corruption.
  [[nodiscard]] static std::optional<Ipv4Header> decode(WireReader& r);
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload

  void encode(WireWriter& w) const;
  [[nodiscard]] static std::optional<UdpHeader> decode(WireReader& r);
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;  // FIN=0x01 SYN=0x02 RST=0x04 PSH=0x08 ACK=0x10
  std::uint16_t window = 65535;

  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;

  void encode(WireWriter& w) const;
  [[nodiscard]] static std::optional<TcpHeader> decode(WireReader& r);
};

// RFC 1071 internet checksum over a byte range.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept;

// A decoded view into one Ethernet frame. `payload` aliases the original
// buffer (L4 payload for UDP/TCP frames, L3 payload otherwise).
struct DecodedFrame {
  EthernetHeader eth;
  std::optional<Ipv4Header> ip;
  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  std::span<const std::byte> payload;

  [[nodiscard]] bool is_udp() const noexcept { return udp.has_value(); }
  [[nodiscard]] bool is_tcp() const noexcept { return tcp.has_value(); }
};

// Parses a full frame (without FCS validation — the FCS bytes, if present,
// are the last four and are excluded from `payload` by the length fields).
[[nodiscard]] std::optional<DecodedFrame> decode_frame(std::span<const std::byte> frame);

// Frame builders. The result includes Ethernet header, IP/L4 headers,
// payload, minimum-size padding, and a 4-byte FCS placeholder, so
// `result.size()` is the on-the-wire frame length that Table 1 measures.
[[nodiscard]] std::vector<std::byte> build_udp_frame(MacAddr src_mac, MacAddr dst_mac,
                                                     Ipv4Addr src_ip, Ipv4Addr dst_ip,
                                                     std::uint16_t src_port,
                                                     std::uint16_t dst_port,
                                                     std::span<const std::byte> payload);

// Builds into a caller-owned scratch buffer (cleared, capacity reused), so
// per-frame senders on the hot path allocate nothing once warm.
void build_udp_frame_into(std::vector<std::byte>& frame, MacAddr src_mac, MacAddr dst_mac,
                          Ipv4Addr src_ip, Ipv4Addr dst_ip, std::uint16_t src_port,
                          std::uint16_t dst_port, std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> build_tcp_frame(MacAddr src_mac, MacAddr dst_mac,
                                                     Ipv4Addr src_ip, Ipv4Addr dst_ip,
                                                     const TcpHeader& tcp,
                                                     std::span<const std::byte> payload);

// Multicast UDP frame addressed to `group` with the RFC 1112 MAC mapping.
[[nodiscard]] std::vector<std::byte> build_multicast_frame(MacAddr src_mac, Ipv4Addr src_ip,
                                                           Ipv4Addr group, std::uint16_t dst_port,
                                                           std::span<const std::byte> payload);

void build_multicast_frame_into(std::vector<std::byte>& frame, MacAddr src_mac, Ipv4Addr src_ip,
                                Ipv4Addr group, std::uint16_t dst_port,
                                std::span<const std::byte> payload);

}  // namespace tsn::net
