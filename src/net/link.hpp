// Point-to-point links with serialization, propagation, queueing, and loss.
//
// A `Link` is one direction of a cable: frames handed to `transmit()` are
// serialized at the line rate (one at a time — the egress is a single
// transceiver), propagate for a fixed delay, and are delivered to the far
// device. A bounded egress queue models output buffering; when the backlog
// would exceed it, the frame is dropped (tail drop), which is how merged
// market-data feeds lose packets under bursts (§4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/device.hpp"
#include "sim/scheduler.hpp"
#include "sim/random.hpp"
#include "telemetry/trace.hpp"

namespace tsn::net {

struct LinkConfig {
  // Line rate in bits per second. 0 means infinite (no serialization delay).
  std::uint64_t rate_bps = 10'000'000'000;  // 10 GbE, the paper's cross-connect speed
  // One-way propagation delay (distance / signal speed).
  sim::Duration propagation = sim::nanos(std::int64_t{50});
  // Egress buffering limit in bytes; a frame that cannot fit is dropped.
  std::size_t queue_capacity_bytes = 1 << 20;
  // Random independent frame loss (microwave rain fade etc.). 0 = lossless.
  double loss_probability = 0.0;
  // Telemetry span kind recorded per delivery: kLink for in-building cables,
  // kWan for metro/long-haul segments (set by wan_link_config).
  telemetry::SpanKind span_kind = telemetry::SpanKind::kLink;
};

struct LinkStats {
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped_queue = 0;
  std::uint64_t frames_dropped_loss = 0;
  std::uint64_t frames_dropped_down = 0;  // handed over while admin-down
  std::uint64_t bytes_delivered = 0;
  sim::Duration max_queue_delay = sim::Duration::zero();
};

class Link : public FaultHook {
 public:
  Link(sim::Scheduler& engine, std::string name, LinkConfig config);

  // Attaches the receiving end. Must be called before transmit().
  void connect_to(Device& destination, PortId destination_port) noexcept;

  // Frame-level delivery override for links whose far end lives on another
  // simulation shard: instead of scheduling `Device::receive` locally, the
  // link hands (arrival time, frame) to this hook, which is expected to
  // `post_to` the destination domain (see net/bridge.hpp). The hook runs
  // after loss/queueing/serialization — everything up to the wire is still
  // modeled on the sending shard.
  using RemoteDelivery = std::function<void(sim::Time arrival, const PacketPtr& packet)>;
  void set_remote_delivery(RemoteDelivery deliver) { remote_delivery_ = std::move(deliver); }

  // Hands one frame to the egress. Never blocks; drops on overflow.
  void transmit(const PacketPtr& packet);

  // Queueing delay a frame handed over right now would experience.
  [[nodiscard]] sim::Duration current_backlog() const noexcept;

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }

  // Serialization time for a frame of `wire_bytes` at this link's rate.
  [[nodiscard]] sim::Duration serialization_delay(std::size_t wire_bytes) const noexcept;

  // Deterministic loss draws: the link owns its RNG stream.
  void seed_loss(std::uint64_t seed) noexcept { rng_ = sim::Rng{seed}; }

  // FaultHook: admin state and dynamic loss override (failure drills).
  void set_admin_up(bool up) noexcept override { admin_up_ = up; }
  [[nodiscard]] bool admin_up() const noexcept override { return admin_up_; }
  void set_loss_override(double probability) noexcept override {
    loss_override_ = probability;
  }
  [[nodiscard]] double loss_override() const noexcept override { return loss_override_; }
  // The loss probability currently in force (override beats config).
  [[nodiscard]] double effective_loss() const noexcept {
    return loss_override_ >= 0.0 ? loss_override_ : config_.loss_probability;
  }

 private:
  sim::Scheduler& engine_;
  std::string name_;
  LinkConfig config_;
  Device* destination_ = nullptr;
  PortId destination_port_ = 0;
  RemoteDelivery remote_delivery_;
  sim::Time egress_free_at_ = sim::Time::zero();
  LinkStats stats_;
  sim::Rng rng_{0xd1cefa11};
  bool admin_up_ = true;
  double loss_override_ = -1.0;  // negative: use config_.loss_probability
};

// A full-duplex cable: two links, one per direction.
struct Cable {
  Link* a_to_b = nullptr;
  Link* b_to_a = nullptr;
};

}  // namespace tsn::net
