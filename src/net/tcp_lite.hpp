// A lightweight TCP: connection setup, ordered reliable byte streams,
// cumulative ACKs, and go-back-N retransmission on timeout.
//
// Order entry in trading systems runs on long-lived TCP connections (§2).
// This implementation provides the properties the paper's protocols rely on
// (in-order reliable delivery over possibly-lossy links) without modelling
// congestion control — trading order links are engineered to run far below
// capacity, so loss here comes from link loss models, not congestion.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "net/headers.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace tsn::net {

class NetStack;

enum class TcpState : std::uint8_t {
  kClosed,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait,
  kCloseWait,
};

struct TcpConfig {
  std::size_t mss = 1400;
  sim::Duration rto = sim::millis(std::int64_t{5});
  int max_retransmits = 8;
};

// Why a connection died. Delivered once through the closed handler so the
// owner (e.g. the order gateway) can react instead of silently stalling.
enum class TcpCloseReason : std::uint8_t {
  kNone,                  // still open, or closed locally via close()
  kPeerFin,               // orderly shutdown initiated by the peer
  kRetransmitExhausted,   // max_retransmits strikes without an ACK
  kAborted,               // local abort() — immediate teardown, nothing on the wire
};

class TcpEndpoint {
 public:
  using DataHandler = std::function<void(std::span<const std::byte> bytes, sim::Time arrival)>;
  using StateHandler = std::function<void(TcpState state)>;
  using ClosedHandler = std::function<void(TcpCloseReason reason)>;

  // Construction is done by NetStack (active or passive open).
  TcpEndpoint(NetStack& stack, MacAddr peer_mac, Ipv4Addr peer_ip, std::uint16_t peer_port,
              std::uint16_t local_port, TcpConfig config);
  ~TcpEndpoint();

  void set_data_handler(DataHandler handler) { data_handler_ = std::move(handler); }
  void set_state_handler(StateHandler handler) { state_handler_ = std::move(handler); }
  // Fired exactly once when the connection dies for a reason the owner did
  // not initiate through close(): peer FIN, retransmit exhaustion, abort().
  void set_closed_handler(ClosedHandler handler) { closed_handler_ = std::move(handler); }

  // Queues bytes for ordered reliable delivery to the peer.
  void send(std::span<const std::byte> bytes);
  // Graceful close (FIN).
  void close();
  // Immediate local teardown: no FIN, pending retransmissions cancelled, the
  // closed handler fires with kAborted. Safe to call only from outside this
  // endpoint's own callbacks (it may destroy in-flight delivery state).
  void abort();

  [[nodiscard]] TcpState state() const noexcept { return state_; }
  [[nodiscard]] TcpCloseReason close_reason() const noexcept { return close_reason_; }
  [[nodiscard]] std::uint16_t local_port() const noexcept { return local_port_; }
  [[nodiscard]] std::uint16_t peer_port() const noexcept { return peer_port_; }
  [[nodiscard]] Ipv4Addr peer_ip() const noexcept { return peer_ip_; }
  [[nodiscard]] std::uint64_t retransmit_count() const noexcept { return retransmits_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept { return bytes_received_; }

 private:
  friend class NetStack;

  void start_connect();              // SYN (active open)
  void accept_syn(std::uint32_t peer_isn);  // passive open path
  void on_segment(const TcpHeader& tcp, std::span<const std::byte> payload, sim::Time arrival);
  void transmit_segment(std::uint32_t seq, std::span<const std::byte> payload, std::uint8_t flags);
  void send_ack();
  void flush_send_queue();
  void arm_rto();
  void on_rto();
  void set_state(TcpState state);
  void deliver_in_order();
  void notify_closed(TcpCloseReason reason);

  NetStack& stack_;
  MacAddr peer_mac_;
  Ipv4Addr peer_ip_;
  std::uint16_t peer_port_;
  std::uint16_t local_port_;
  TcpConfig config_;
  TcpState state_ = TcpState::kClosed;

  // Send side.
  std::uint32_t snd_next_ = 1;  // next new sequence to assign
  std::uint32_t snd_una_ = 1;   // oldest unacknowledged
  std::deque<std::pair<std::uint32_t, std::vector<std::byte>>> unacked_;  // (seq, segment)
  sim::EventHandle rto_timer_;
  int rto_strikes_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t bytes_sent_ = 0;

  // Receive side.
  std::uint32_t rcv_next_ = 0;
  std::map<std::uint32_t, std::vector<std::byte>> out_of_order_;
  std::uint64_t bytes_received_ = 0;

  DataHandler data_handler_;
  StateHandler state_handler_;
  ClosedHandler closed_handler_;
  TcpCloseReason close_reason_ = TcpCloseReason::kNone;
  bool closed_notified_ = false;
};

}  // namespace tsn::net
