// Link-layer and network-layer address types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tsn::net {

// 48-bit Ethernet MAC address.
class MacAddr {
 public:
  constexpr MacAddr() noexcept = default;
  constexpr explicit MacAddr(std::array<std::uint8_t, 6> octets) noexcept : octets_(octets) {}

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets() const noexcept {
    return octets_;
  }

  // Least-significant bit of the first octet set => group (multicast) address.
  [[nodiscard]] constexpr bool is_multicast() const noexcept { return (octets_[0] & 0x01) != 0; }
  [[nodiscard]] constexpr bool is_broadcast() const noexcept {
    for (auto o : octets_) {
      if (o != 0xff) return false;
    }
    return true;
  }

  [[nodiscard]] static constexpr MacAddr broadcast() noexcept {
    return MacAddr{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }

  // Locally-administered unicast address derived from a small integer id;
  // used when wiring up simulated hosts.
  [[nodiscard]] static constexpr MacAddr from_host_id(std::uint32_t id) noexcept {
    return MacAddr{{0x02, 0x00, static_cast<std::uint8_t>(id >> 24),
                    static_cast<std::uint8_t>(id >> 16), static_cast<std::uint8_t>(id >> 8),
                    static_cast<std::uint8_t>(id)}};
  }

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<MacAddr> parse(std::string_view text);

  constexpr auto operator<=>(const MacAddr&) const noexcept = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

// IPv4 address stored in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() noexcept = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
               std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  // 224.0.0.0/4.
  [[nodiscard]] constexpr bool is_multicast() const noexcept {
    return (value_ & 0xf0000000u) == 0xe0000000u;
  }

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<Ipv4Addr> parse(std::string_view text);

  constexpr auto operator<=>(const Ipv4Addr&) const noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

// RFC 1112 mapping from an IPv4 multicast group to its Ethernet MAC: the
// low 23 bits of the group address under the 01:00:5e prefix.
[[nodiscard]] constexpr MacAddr multicast_mac(Ipv4Addr group) noexcept {
  const std::uint32_t low23 = group.value() & 0x007fffffu;
  return MacAddr{{0x01, 0x00, 0x5e, static_cast<std::uint8_t>(low23 >> 16),
                  static_cast<std::uint8_t>(low23 >> 8), static_cast<std::uint8_t>(low23)}};
}

}  // namespace tsn::net

template <>
struct std::hash<tsn::net::Ipv4Addr> {
  std::size_t operator()(const tsn::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
