#include "net/addr.hpp"

#include <cstdio>

namespace tsn::net {

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0], octets_[1],
                octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

std::optional<MacAddr> MacAddr::parse(std::string_view text) {
  std::array<std::uint8_t, 6> octets{};
  std::size_t pos = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != ':') return std::nullopt;
      ++pos;
    }
    if (pos + 2 > text.size()) return std::nullopt;
    unsigned value = 0;
    for (int j = 0; j < 2; ++j) {
      const char c = text[pos++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
    }
    octets[i] = static_cast<std::uint8_t>(value);
  }
  if (pos != text.size()) return std::nullopt;
  return MacAddr{octets};
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return std::nullopt;
    std::uint32_t octet = 0;
    std::size_t digits = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      octet = octet * 10 + static_cast<std::uint32_t>(text[pos] - '0');
      ++pos;
      if (++digits > 3 || octet > 255) return std::nullopt;
    }
    value = (value << 8) | octet;
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Addr{value};
}

}  // namespace tsn::net
