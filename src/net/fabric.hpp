// Fabric: owns the links (and cables) of a simulated network and provides
// the wiring helpers topology builders use.
#pragma once

#include <deque>
#include <string>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::net {

class Fabric {
 public:
  explicit Fabric(sim::Scheduler& engine) noexcept : engine_(engine) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Creates a unidirectional link delivering into (device, port).
  Link& make_link(std::string name, const LinkConfig& config, Device& destination,
                  PortId destination_port) {
    auto& link = links_.emplace_back(engine_, std::move(name), config);
    link.connect_to(destination, destination_port);
    return link;
  }

  // Creates a unidirectional link with no local destination: its far end
  // lives on another simulation shard, and the caller attaches the
  // cross-shard delivery hook via net/bridge.hpp.
  Link& make_remote_link(std::string name, const LinkConfig& config) {
    return links_.emplace_back(engine_, std::move(name), config);
  }

  // Wires a full-duplex cable between two ported devices: both directions
  // share one LinkConfig. Each device learns its egress via attach_port.
  Cable connect(PortedDevice& a, PortId port_a, PortedDevice& b, PortId port_b,
                const LinkConfig& config) {
    Link& ab = make_link(std::string{a.name()} + "->" + std::string{b.name()}, config, b, port_b);
    Link& ba = make_link(std::string{b.name()} + "->" + std::string{a.name()}, config, a, port_a);
    a.attach_port(port_a, ab);
    b.attach_port(port_b, ba);
    return Cable{&ab, &ba};
  }

  [[nodiscard]] sim::Scheduler& engine() noexcept { return engine_; }
  [[nodiscard]] PacketFactory& packets() noexcept { return packets_; }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }

  // Aggregate drop counters across every link in the fabric.
  [[nodiscard]] LinkStats total_stats() const noexcept {
    LinkStats total;
    for (const auto& link : links_) {
      total.frames_delivered += link.stats().frames_delivered;
      total.frames_dropped_queue += link.stats().frames_dropped_queue;
      total.frames_dropped_loss += link.stats().frames_dropped_loss;
      total.bytes_delivered += link.stats().bytes_delivered;
      if (link.stats().max_queue_delay > total.max_queue_delay) {
        total.max_queue_delay = link.stats().max_queue_delay;
      }
    }
    return total;
  }

  // Exposes aggregate link accounting as gauges (sampled at snapshot time),
  // so any deployment can export fabric health without per-link plumbing.
  void register_metrics(telemetry::Registry& registry,
                        const std::string& prefix = "fabric") const {
    registry.gauge(prefix + ".links", [this] { return static_cast<double>(links_.size()); });
    registry.gauge(prefix + ".frames_delivered",
                   [this] { return static_cast<double>(total_stats().frames_delivered); });
    registry.gauge(prefix + ".frames_dropped_queue",
                   [this] { return static_cast<double>(total_stats().frames_dropped_queue); });
    registry.gauge(prefix + ".frames_dropped_loss",
                   [this] { return static_cast<double>(total_stats().frames_dropped_loss); });
    registry.gauge(prefix + ".bytes_delivered",
                   [this] { return static_cast<double>(total_stats().bytes_delivered); });
    registry.gauge(prefix + ".max_queue_delay_ns",
                   [this] { return total_stats().max_queue_delay.nanos(); });
  }

 private:
  sim::Scheduler& engine_;
  PacketFactory packets_;
  std::deque<Link> links_;  // deque: stable addresses as links are added
};

}  // namespace tsn::net
