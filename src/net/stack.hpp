// Per-NIC protocol stack: demultiplexes received frames to UDP port
// bindings and TCP endpoints, and owns the lightweight TCP implementation
// (see tcp_lite.hpp). One NetStack installs itself as its NIC's rx handler.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "net/headers.hpp"
#include "net/nic.hpp"
#include "net/tcp_lite.hpp"

namespace tsn::net {

class NetStack {
 public:
  using UdpHandler = std::function<void(const Ipv4Header& ip, const UdpHeader& udp,
                                        std::span<const std::byte> payload, sim::Time arrival)>;
  using AcceptHandler = std::function<void(TcpEndpoint& endpoint)>;
  // Raw IGMP payload (IP protocol 2); decoding is the subscriber's job so
  // the net layer stays independent of the mcast layer.
  using IgmpHandler = std::function<void(std::span<const std::byte> payload, sim::Time arrival)>;

  explicit NetStack(Nic& nic);

  // --- UDP ------------------------------------------------------------------
  void bind_udp(std::uint16_t port, UdpHandler handler);
  void unbind_udp(std::uint16_t port);
  // Sends a UDP datagram. `dst_mac` is the next-hop MAC (the ToR's router
  // MAC for routed fabrics, or the RFC1112 mapping for multicast).
  void send_udp(MacAddr dst_mac, Ipv4Addr dst_ip, std::uint16_t src_port, std::uint16_t dst_port,
                std::span<const std::byte> payload);
  void send_multicast(Ipv4Addr group, std::uint16_t port, std::span<const std::byte> payload);

  // --- TCP ------------------------------------------------------------------
  // Active open. The returned endpoint is owned by the stack and lives until
  // closed and reaped.
  TcpEndpoint& connect_tcp(MacAddr dst_mac, Ipv4Addr dst_ip, std::uint16_t dst_port,
                           std::uint16_t src_port);
  // Passive open: `on_accept` fires once per new established connection.
  void listen_tcp(std::uint16_t port, AcceptHandler on_accept);
  // Destroys every flow whose endpoint reached kClosed, freeing its port.
  // Must be called from outside any endpoint callback (it deletes the
  // endpoints); returns the number of flows reaped.
  std::size_t reap_closed();
  [[nodiscard]] std::size_t tcp_flow_count() const noexcept { return tcp_flows_.size(); }

  // --- IGMP -----------------------------------------------------------------
  void set_igmp_handler(IgmpHandler handler) { igmp_handler_ = std::move(handler); }

  [[nodiscard]] Nic& nic() noexcept { return nic_; }
  [[nodiscard]] sim::Scheduler& engine() noexcept { return nic_.engine(); }
  [[nodiscard]] std::uint64_t udp_rx_count() const noexcept { return udp_rx_; }
  [[nodiscard]] std::uint64_t udp_unbound_drops() const noexcept { return udp_unbound_; }

 private:
  friend class TcpEndpoint;

  struct FlowKey {
    std::uint16_t local_port = 0;
    std::uint32_t peer_ip = 0;
    std::uint16_t peer_port = 0;

    auto operator<=>(const FlowKey&) const = default;
  };

  void on_frame(const PacketPtr& packet, sim::Time arrival);
  void handle_tcp(const DecodedFrame& frame, sim::Time arrival);

  Nic& nic_;
  // Reused frame-build buffer: UDP/multicast sends stay allocation-free
  // once its capacity covers the largest frame sent.
  std::vector<std::byte> tx_scratch_;
  IgmpHandler igmp_handler_;
  std::map<std::uint16_t, UdpHandler> udp_handlers_;
  std::map<std::uint16_t, AcceptHandler> tcp_listeners_;
  std::map<FlowKey, std::unique_ptr<TcpEndpoint>> tcp_flows_;
  std::uint16_t next_ephemeral_ = 49152;
  std::uint64_t udp_rx_ = 0;
  std::uint64_t udp_unbound_ = 0;
};

}  // namespace tsn::net
