#include "net/nic.hpp"

#include <algorithm>

#include "net/headers.hpp"
#include "telemetry/trace.hpp"

namespace tsn::net {

Nic::Nic(sim::Scheduler& engine, std::string name, MacAddr mac, Ipv4Addr ip)
    : engine_(engine), name_(std::move(name)), mac_(mac), ip_(ip) {}

void Nic::attach_port(PortId /*port*/, Link& egress) noexcept { egress_ = &egress; }

void Nic::subscribe_multicast_mac(MacAddr mac) {
  if (std::find(mcast_macs_.begin(), mcast_macs_.end(), mac) == mcast_macs_.end()) {
    mcast_macs_.push_back(mac);
  }
}

void Nic::unsubscribe_multicast_mac(MacAddr mac) {
  std::erase(mcast_macs_, mac);
}

void Nic::send(const PacketPtr& packet) {
  if (egress_ == nullptr) return;  // unplugged NIC: frame vanishes, as in life
  ++tx_frames_;
  egress_->transmit(packet);
}

PacketPtr Nic::send_frame(std::vector<std::byte> frame) {
  auto packet = factory_.make(std::move(frame), engine_.now());
  send(packet);
  return packet;
}

PacketPtr Nic::send_frame(std::span<const std::byte> frame) {
  auto packet = factory_.make(frame, engine_.now());
  send(packet);
  return packet;
}

void Nic::receive(const PacketPtr& packet, PortId /*port*/) {
  if (!promiscuous_) {
    WireReader r{packet->frame()};
    const auto eth = EthernetHeader::decode(r);
    const bool accept =
        eth && (eth->dst == mac_ || eth->dst.is_broadcast() ||
                std::find(mcast_macs_.begin(), mcast_macs_.end(), eth->dst) != mcast_macs_.end());
    if (!accept) {
      ++rx_filtered_;
      return;
    }
  }
  ++rx_frames_;
  if (!rx_handler_) return;
  const sim::Time arrival = engine_.now();
  // Auxiliary span (nested inside the host's software span): NIC arrival to
  // handler run. The handler executes inside the frame's trace scope so any
  // frames it sends — or work it defers — stay on the same trace.
  telemetry::record_span(packet->trace(), name_, telemetry::SpanKind::kNicRx, arrival,
                         arrival + rx_delay_);
  if (rx_delay_ == sim::Duration::zero()) {
    telemetry::TraceScope scope{packet->trace()};
    rx_handler_(packet, arrival);
    return;
  }
  // Capture by value: the handler may be replaced while deliveries are in
  // flight; the frame still goes to the handler installed at arrival time.
  auto handler = rx_handler_;
  engine_.schedule_in(rx_delay_, [handler, packet, arrival] {
    telemetry::TraceScope scope{packet->trace()};
    handler(packet, arrival);
  });
}

Host::Host(sim::Scheduler& engine, std::string name, sim::Duration software_latency)
    : engine_(engine), name_(std::move(name)), software_latency_(software_latency) {}

Nic& Host::add_nic(std::string suffix, MacAddr mac, Ipv4Addr ip) {
  auto nic = std::make_unique<Nic>(engine_, name_ + "/" + std::move(suffix), mac, ip);
  nic->set_rx_delay(software_latency_);
  nics_.push_back(std::move(nic));
  return *nics_.back();
}

}  // namespace tsn::net
