// The scheduling API every event producer talks to.
//
// Links, switches, the exchange, trading apps, and the fault injector all
// schedule through a `Scheduler&` — never through a concrete engine. Two
// implementations exist: `Engine` (the classic single-threaded loop, domain
// 0) and `Domain` (one shard of a `ShardedEngine`). Components built against
// a Domain are automatically confined to that shard; anything that must
// cross shards goes through `Domain::post_to`, which is how the sharded
// runtime keeps per-shard execution race-free.
//
// Event handles are domain-qualified: a handle remembers which shard its
// event lives on, and cancelling it through a scheduler of a different
// domain is a TSN_DCHECK-able bug (the slot index would silently name an
// unrelated event on the other shard's pool).
#pragma once

#include <cstdint>
#include <utility>

#include "sim/action.hpp"
#include "sim/time.hpp"

namespace tsn::sim {

// Identifies one event-queue shard. A plain `Engine` is always domain 0.
using DomainId = std::uint16_t;
inline constexpr DomainId kMainDomain = 0;

class EventQueue;

// Opaque handle for cancelling a scheduled event. Generation-checked: a
// handle kept past its event's firing (or past a cancel) goes stale and all
// later cancels through it return false, even after the slot is reused.
class EventHandle {
 public:
  EventHandle() noexcept = default;

  [[nodiscard]] bool valid() const noexcept { return generation_ != 0; }
  // Which shard the event lives on. Handles may only be cancelled through
  // the scheduler of the same domain.
  [[nodiscard]] DomainId domain() const noexcept { return domain_; }

 private:
  friend class EventQueue;
  EventHandle(std::uint32_t slot, std::uint32_t generation, DomainId domain) noexcept
      : slot_(slot), generation_(generation), domain_(domain) {}
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
  DomainId domain_ = kMainDomain;
};

// Abstract scheduling interface. Implementations: `Engine` (single-threaded
// reference), `Domain` (one shard of a `ShardedEngine`). Both are `final`,
// so calls through a concrete reference devirtualize.
class Scheduler {
 public:
  using Action = InlineAction;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Current simulation time of this scheduler's shard. Monotonically
  // non-decreasing.
  [[nodiscard]] virtual Time now() const noexcept = 0;

  // Schedules `action` to run at absolute time `at` on this scheduler's
  // shard. Scheduling into the past clamps to `now()` (the event fires
  // next, after already-due events).
  virtual EventHandle schedule_at(Time at, Action action) = 0;

  // Cancels a pending event in O(1). Returns true if the event existed and
  // had not yet fired; stale handles (fired, already cancelled, or slot
  // reused) return false. Cancelling a handle from a different domain is a
  // TSN_DCHECK failure (and returns false in release builds).
  virtual bool cancel(EventHandle handle) = 0;

  // Which shard this scheduler runs. Plain engines report kMainDomain.
  [[nodiscard]] virtual DomainId domain_id() const noexcept = 0;

  // Schedules `action` to run `delay` after now. Negative delays clamp to 0.
  EventHandle schedule_in(Duration delay, Action action) {
    if (delay < Duration::zero()) delay = Duration::zero();
    return schedule_at(now() + delay, std::move(action));
  }

 protected:
  // Components hold `Scheduler&` but never own the engine; destruction is
  // always through the concrete type.
  ~Scheduler() = default;
};

}  // namespace tsn::sim
