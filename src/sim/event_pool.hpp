// Slab-allocated pool of event slots for the simulation engine.
//
// Slots live in fixed-size slabs that are never freed during a run, so slot
// addresses are stable and steady-state acquire/release touches only the
// freelist (a vector whose capacity is pre-reserved alongside each slab —
// release never allocates). Each slot carries a generation counter, bumped
// on release, which is what makes engine cancellation O(1) and safe against
// handle reuse: a stale handle's generation no longer matches the slot's.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/check.hpp"
#include "sim/action.hpp"
#include "sim/time.hpp"

namespace tsn::sim {

class EventPool {
 public:
  static constexpr std::uint32_t kSlabSlots = 256;

  struct Slot {
    Time at;
    std::uint64_t seq = 0;
    std::uint32_t generation = 1;  // 0 never names a live event (invalid-handle marker)
    bool armed = false;            // scheduled and not yet fired/cancelled
    InlineAction action;
  };

  // Pops a free slot, growing by one slab when the pool is exhausted.
  [[nodiscard]] std::uint32_t acquire() {
    if (free_.empty()) grow();
    const std::uint32_t index = free_.back();
    free_.pop_back();
    ++in_use_;
    return index;
  }

  // Destroys the action, bumps the generation (invalidating outstanding
  // handles and heap entries), and returns the slot to the freelist.
  void release(std::uint32_t index) noexcept {
    Slot& s = slot(index);
    TSN_DCHECK(in_use_ > 0, "release without a matching acquire");
    s.action.reset();
    s.armed = false;
    ++s.generation;
    free_.push_back(index);  // never reallocates: capacity reserved at grow()
    --in_use_;
  }

  [[nodiscard]] Slot& slot(std::uint32_t index) noexcept {
    return slabs_[index / kSlabSlots][index % kSlabSlots];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t index) const noexcept {
    return slabs_[index / kSlabSlots][index % kSlabSlots];
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slabs_.size() * kSlabSlots; }
  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }

  // Pre-warms the pool to at least `slots` capacity.
  void reserve(std::size_t slots) {
    while (capacity() < slots) grow();
  }

 private:
  void grow() {
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSlots));
    free_.reserve(capacity());
    const auto base = static_cast<std::uint32_t>((slabs_.size() - 1) * kSlabSlots);
    // Lowest index on top of the freelist: cosmetic, keeps early runs dense.
    for (std::uint32_t i = kSlabSlots; i > 0; --i) free_.push_back(base + i - 1);
  }

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<std::uint32_t> free_;
  std::size_t in_use_ = 0;
};

}  // namespace tsn::sim
