#include "sim/engine.hpp"

#include <utility>

#include "core/check.hpp"

namespace tsn::sim {

// tsn-lint: hotpath
EventHandle Engine::schedule_at(Time at, Action action) {
  if (at < now_) at = now_;
  return queue_.push(at, next_seq_++, std::move(action));
}

// tsn-lint: hotpath
bool Engine::cancel(EventHandle handle) {
  TSN_DCHECK(!handle.valid() || handle.domain() == kMainDomain,
             "cancelling a sharded Domain's handle through a plain Engine");
  if (handle.valid() && handle.domain() != kMainDomain) return false;
  return queue_.cancel(handle);
}

std::uint64_t Engine::run() {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!stop_requested_ && queue_.pop_one(now_, fired_)) ++count;
  return count;
}

std::uint64_t Engine::run_until(Time deadline) {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!stop_requested_) {
    const EventQueue::HeapEntry* next = queue_.peek_live();
    if (next == nullptr || next->at > deadline) break;
    if (queue_.pop_one(now_, fired_)) ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

bool Engine::step() { return queue_.pop_one(now_, fired_); }

}  // namespace tsn::sim
