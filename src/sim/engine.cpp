#include "sim/engine.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace tsn::sim {

// tsn-lint: hotpath
EventHandle Engine::schedule_at(Time at, Action action) {
  if (at < now_) at = now_;
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t index = pool_.acquire();
  EventPool::Slot& slot = pool_.slot(index);
  slot.at = at;
  slot.seq = seq;
  slot.armed = true;
  slot.action = std::move(action);
  heap_.push_back(HeapEntry{at, seq, index, slot.generation});
  std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
  ++live_;
  return EventHandle{index, slot.generation};
}

EventHandle Engine::schedule_in(Duration delay, Action action) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(action));
}

// tsn-lint: hotpath
bool Engine::cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ >= pool_.capacity()) return false;
  EventPool::Slot& slot = pool_.slot(handle.slot_);
  // A fired, cancelled, or reused slot has moved past the handle's
  // generation; only the live original matches.
  if (!slot.armed || slot.generation != handle.generation_) return false;
  pool_.release(handle.slot_);  // heap entry goes stale; pruned at peek
  --live_;
  return true;
}

// tsn-lint: hotpath
const Engine::HeapEntry* Engine::peek_live() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const EventPool::Slot& slot = pool_.slot(top.slot);
    if (slot.armed && slot.generation == top.generation) return &heap_.front();
    // Cancelled: the slot was released (and possibly re-armed under a new
    // generation); this entry is stale.
    std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
    heap_.pop_back();
  }
  return nullptr;
}

// tsn-lint: hotpath
bool Engine::pop_one() {
  const HeapEntry* top = peek_live();
  if (top == nullptr) return false;
  const HeapEntry entry = *top;
  std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
  heap_.pop_back();
  EventPool::Slot& slot = pool_.slot(entry.slot);
  // Release the slot before invoking: the action may schedule new events
  // (reusing this slot under a fresh generation) or cancel others.
  Action action = std::move(slot.action);
  pool_.release(entry.slot);
  --live_;
  TSN_DCHECK(entry.at >= now_, "event queue must never run time backwards");
  now_ = entry.at;
  ++fired_;
  action();
  return true;
}

std::uint64_t Engine::run() {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!stop_requested_ && pop_one()) ++count;
  return count;
}

std::uint64_t Engine::run_until(Time deadline) {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!stop_requested_) {
    const HeapEntry* next = peek_live();
    if (next == nullptr || next->at > deadline) break;
    if (pop_one()) ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

bool Engine::step() { return pop_one(); }

void Engine::reserve(std::size_t events) {
  pool_.reserve(events);
  heap_.reserve(events);
}

std::size_t Engine::pending_events() const noexcept { return live_; }

}  // namespace tsn::sim
