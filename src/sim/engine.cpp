#include "sim/engine.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace tsn::sim {

EventHandle Engine::schedule_at(Time at, Action action) {
  if (at < now_) at = now_;
  const std::uint64_t seq = next_seq_++;
  queue_.push(Scheduled{at, seq, std::move(action)});
  ++live_;
  return EventHandle{seq};
}

EventHandle Engine::schedule_in(Duration delay, Action action) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(action));
}

bool Engine::cancel(EventHandle handle) {
  if (!handle.valid() || handle.seq_ >= next_seq_) return false;
  // Already-cancelled or already-fired sequence numbers are rejected by
  // checking the cancellation list; fired events can't be distinguished
  // cheaply, so callers must not cancel handles they know have fired.
  if (std::find(cancelled_.begin(), cancelled_.end(), handle.seq_) != cancelled_.end()) {
    return false;
  }
  cancelled_.push_back(handle.seq_);
  if (live_ > 0) --live_;
  return true;
}

bool Engine::pop_one() {
  while (!queue_.empty()) {
    const Scheduled& top = queue_.top();
    const auto it = std::find(cancelled_.begin(), cancelled_.end(), top.seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    // priority_queue::top is const; the action must be moved out before pop.
    Scheduled event{top.at, top.seq, std::move(const_cast<Scheduled&>(top).action)};
    queue_.pop();
    if (live_ > 0) --live_;
    TSN_DCHECK(event.at >= now_, "event queue must never run time backwards");
    now_ = event.at;
    ++fired_;
    event.action();
    return true;
  }
  return false;
}

std::uint64_t Engine::run() {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!stop_requested_ && pop_one()) ++count;
  return count;
}

std::uint64_t Engine::run_until(Time deadline) {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!stop_requested_ && !queue_.empty()) {
    // Peeking past cancelled entries: pop_one handles them, but the deadline
    // check must see the first live event's time.
    const Scheduled& top = queue_.top();
    if (std::find(cancelled_.begin(), cancelled_.end(), top.seq) != cancelled_.end()) {
      cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), top.seq));
      queue_.pop();
      continue;
    }
    if (top.at > deadline) break;
    if (pop_one()) ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

bool Engine::step() { return pop_one(); }

std::size_t Engine::pending_events() const noexcept { return live_; }

}  // namespace tsn::sim
