// One shard of a `ShardedEngine`: a per-region event queue with its own
// clock, behind the same `Scheduler` interface as the single-threaded
// `Engine`.
//
// Components constructed against a Domain's `Scheduler&` are confined to
// that shard: every event they schedule runs on the shard's queue, and
// during a parallel run only one worker thread ever executes a given
// shard's events, so component state needs no locking. The only sanctioned
// way to affect another shard is `post_to(dst, at, action)`, which routes
// through the parent ShardedEngine's mailboxes; `at` must be at least the
// engine's lookahead window into the future (cross-shard bridges guarantee
// this by construction — their propagation delay bounds the lookahead).
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace tsn::sim {

class ShardedEngine;

// Ambient per-shard execution context. A domain's events may run on any
// worker thread in windowed mode, but thread-local state (telemetry's
// ambient trace sink, most notably) installed on the coordinating thread
// does not follow them there — spans recorded inside worker-run events were
// silently dropped. A ShardContext travels with the domain instead: the
// engine brackets every batch of events the domain executes with enter() /
// leave() *on the executing thread*, whichever thread that is. The sim
// layer defines only the hook; upper layers (telemetry) implement it, so
// sim stays free of telemetry dependencies.
class ShardContext {
 public:
  virtual ~ShardContext() = default;
  ShardContext() = default;
  ShardContext(const ShardContext&) = delete;
  ShardContext& operator=(const ShardContext&) = delete;
  virtual void enter() noexcept = 0;
  virtual void leave() noexcept = 0;
};

class Domain final : public Scheduler {
 public:
  [[nodiscard]] Time now() const noexcept override { return now_; }

  // Schedules onto this shard's queue. Same-instant events fire in
  // scheduling order via the sequence counter (shared across shards in
  // golden mode; per-shard in windowed mode).
  EventHandle schedule_at(Time at, Action action) override;

  // O(1) generation-checked cancel. A handle minted by another domain is a
  // TSN_DCHECK failure (it would index an unrelated slot on this shard's
  // pool) and returns false in release builds.
  bool cancel(EventHandle handle) override;

  [[nodiscard]] DomainId domain_id() const noexcept override { return id_; }

  // Hands `action` to domain `dst` for execution at absolute time `at`.
  // The one legal way to cross shards. `at` must respect the engine's
  // lookahead: at >= now() + lookahead, which cross-domain link bridges
  // guarantee because their propagation delay is a lookahead bound.
  void post_to(DomainId dst, Time at, Action action);

  // Pre-warms this shard's pool slabs and heap vector.
  void reserve(std::size_t events) { queue_.reserve(events); }

  // Installs (or clears, with nullptr) the shard-local execution context.
  // Both run modes bracket this domain's event execution with it, so e.g. a
  // telemetry::DomainTraceContext captures the shard's spans regardless of
  // which thread — coordinator or worker — runs them. Not owned; must
  // outlive the engine's runs. Set between runs, not during one.
  void set_context(ShardContext* context) noexcept { context_ = context; }
  [[nodiscard]] ShardContext* context() const noexcept { return context_; }

  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.live(); }
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }
  [[nodiscard]] std::size_t pool_capacity() const noexcept { return queue_.pool_capacity(); }
  [[nodiscard]] std::size_t pool_in_use() const noexcept { return queue_.pool_in_use(); }

 private:
  friend class ShardedEngine;

  Domain(ShardedEngine& parent, DomainId id) noexcept
      : queue_(id), parent_(&parent), id_(id) {}

  // Runs every event with time < window_end (exclusive — conservative
  // lookahead guarantees no cross-shard effect can land inside the window).
  // Called from one worker thread at a time; returns events fired. Ambient
  // telemetry context is thread-local, so a worker running this shard sees
  // no sink unless one was installed on that thread.
  std::uint64_t run_window(Time window_end);

  // Golden-mode single step: pops this shard's head event (which the merged
  // loop has established is the global minimum). Advances now_. Runs on the
  // calling thread, so an ambient ScopedTraceSink there applies to every
  // shard — exactly the plain-Engine tracing behavior. A shard-local
  // context, when installed, brackets the event here too, so golden and
  // windowed runs attribute spans to the same per-shard sinks.
  void pop_head() {
    if (context_ == nullptr) {
      queue_.pop_one(now_, fired_);
      return;
    }
    context_->enter();
    queue_.pop_one(now_, fired_);
    context_->leave();
  }

  // Next live event's (at, seq), or nullptr when the shard is idle.
  [[nodiscard]] const EventQueue::HeapEntry* peek() { return queue_.peek_live(); }

  EventQueue queue_;
  ShardedEngine* parent_;
  Time now_ = Time::zero();
  std::uint64_t own_seq_ = 1;
  // Golden mode points every shard at one shared counter so the merged
  // execution is byte-identical to a plain Engine; windowed mode points each
  // shard back at its own.
  std::uint64_t* seq_ = &own_seq_;
  std::uint64_t fired_ = 0;
  ShardContext* context_ = nullptr;
  DomainId id_ = kMainDomain;
};

}  // namespace tsn::sim
