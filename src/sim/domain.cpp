#include "sim/domain.hpp"

#include <utility>

#include "core/check.hpp"
#include "sim/sharded_engine.hpp"

namespace tsn::sim {

// tsn-lint: hotpath
EventHandle Domain::schedule_at(Time at, Action action) {
  if (at < now_) at = now_;
  return queue_.push(at, (*seq_)++, std::move(action));
}

// tsn-lint: hotpath
bool Domain::cancel(EventHandle handle) {
  TSN_DCHECK(!handle.valid() || handle.domain() == id_,
             "cancelling an event through the wrong domain's scheduler");
  if (handle.valid() && handle.domain() != id_) return false;
  return queue_.cancel(handle);
}

void Domain::post_to(DomainId dst, Time at, Action action) {
  parent_->post(id_, dst, at, std::move(action));
}

std::uint64_t Domain::run_window(Time window_end) {
  // The shard-local context is installed on *this* thread for the whole
  // window: every span a worker-run event records lands in the shard's own
  // sink instead of vanishing with the worker's empty thread-local.
  if (context_ != nullptr) context_->enter();
  std::uint64_t count = 0;
  while (true) {
    const EventQueue::HeapEntry* next = queue_.peek_live();
    if (next == nullptr || next->at >= window_end) break;
    if (queue_.pop_one(now_, fired_)) ++count;
  }
  if (context_ != nullptr) context_->leave();
  return count;
}

}  // namespace tsn::sim
