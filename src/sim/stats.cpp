#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tsn::sim {

void SampleStats::add(double value) {
  samples_.push_back(value);
  sorted_ = false;
  sum_ += value;
  sum_sq_ += value * value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void SampleStats::merge(const SampleStats& other) {
  for (double v : other.samples_) add(v);
}

void SampleStats::clear() noexcept {
  samples_.clear();
  sorted_ = true;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

double SampleStats::min() const noexcept { return samples_.empty() ? 0.0 : min_; }
double SampleStats::max() const noexcept { return samples_.empty() ? 0.0 : max_; }

double SampleStats::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double SampleStats::stddev() const noexcept {
  const auto n = static_cast<double>(samples_.size());
  if (n < 2) return 0.0;
  const double m = sum_ / n;
  const double var = (sum_sq_ - n * m * m) / (n - 1);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double SampleStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument{"percentile out of range"};
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p == 0.0) return samples_.front();
  const auto n = samples_.size();
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

std::string SampleStats::table_row() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%10.0f %10.1f %10.0f %10.0f", min(), mean(), median(), max());
  return buf;
}

WindowedCounter::WindowedCounter(Time origin, Duration window)
    : origin_(origin), window_(window) {
  if (window.picos() <= 0) throw std::invalid_argument{"window must be positive"};
}

void WindowedCounter::record(Time at, std::uint64_t count) {
  if (at < origin_) return;
  const auto index = static_cast<std::size_t>((at - origin_) / window_);
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
  counts_[index] += count;
}

SampleStats WindowedCounter::stats(bool include_empty) const {
  SampleStats out;
  for (std::uint64_t c : counts_) {
    if (c == 0 && !include_empty) continue;
    out.add(static_cast<double>(c));
  }
  return out;
}

}  // namespace tsn::sim
