// Simulated time with picosecond resolution.
//
// The paper reports demand for timestamp precision below 100 picoseconds
// (§2), so the simulator's base tick is one picosecond. A signed 64-bit
// count of picoseconds covers ~106 days, far beyond a 6.5-hour trading day.
//
// `Duration` is a span of time; `Time` is a point on the simulation clock
// (picoseconds since the start of the run). They are distinct types so that
// e.g. adding two `Time`s does not compile.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace tsn::sim {

class Duration {
 public:
  constexpr Duration() noexcept = default;
  constexpr explicit Duration(std::int64_t picos) noexcept : picos_(picos) {}

  [[nodiscard]] constexpr std::int64_t picos() const noexcept { return picos_; }
  [[nodiscard]] constexpr double nanos() const noexcept { return static_cast<double>(picos_) * 1e-3; }
  [[nodiscard]] constexpr double micros() const noexcept { return static_cast<double>(picos_) * 1e-6; }
  [[nodiscard]] constexpr double millis() const noexcept { return static_cast<double>(picos_) * 1e-9; }
  [[nodiscard]] constexpr double seconds() const noexcept { return static_cast<double>(picos_) * 1e-12; }

  constexpr auto operator<=>(const Duration&) const noexcept = default;

  constexpr Duration& operator+=(Duration rhs) noexcept {
    picos_ += rhs.picos_;
    return *this;
  }
  constexpr Duration& operator-=(Duration rhs) noexcept {
    picos_ -= rhs.picos_;
    return *this;
  }
  constexpr Duration& operator*=(std::int64_t k) noexcept {
    picos_ *= k;
    return *this;
  }

  [[nodiscard]] static constexpr Duration zero() noexcept { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() noexcept {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

 private:
  std::int64_t picos_ = 0;
};

[[nodiscard]] constexpr Duration operator+(Duration a, Duration b) noexcept {
  return Duration{a.picos() + b.picos()};
}
[[nodiscard]] constexpr Duration operator-(Duration a, Duration b) noexcept {
  return Duration{a.picos() - b.picos()};
}
[[nodiscard]] constexpr Duration operator*(Duration a, std::int64_t k) noexcept {
  return Duration{a.picos() * k};
}
[[nodiscard]] constexpr Duration operator*(std::int64_t k, Duration a) noexcept { return a * k; }
[[nodiscard]] constexpr Duration operator/(Duration a, std::int64_t k) noexcept {
  return Duration{a.picos() / k};
}
[[nodiscard]] constexpr std::int64_t operator/(Duration a, Duration b) noexcept {
  return a.picos() / b.picos();
}
[[nodiscard]] constexpr Duration operator-(Duration a) noexcept { return Duration{-a.picos()}; }

// Factory functions. Integer overloads are exact; double overloads round to
// the nearest picosecond.
[[nodiscard]] constexpr Duration picos(std::int64_t n) noexcept { return Duration{n}; }
[[nodiscard]] constexpr Duration nanos(std::int64_t n) noexcept { return Duration{n * 1'000}; }
[[nodiscard]] constexpr Duration micros(std::int64_t n) noexcept { return Duration{n * 1'000'000}; }
[[nodiscard]] constexpr Duration millis(std::int64_t n) noexcept { return Duration{n * 1'000'000'000}; }
[[nodiscard]] constexpr Duration seconds(std::int64_t n) noexcept {
  return Duration{n * 1'000'000'000'000};
}
[[nodiscard]] constexpr Duration nanos(double n) noexcept {
  return Duration{static_cast<std::int64_t>(n * 1e3 + (n >= 0 ? 0.5 : -0.5))};
}
[[nodiscard]] constexpr Duration micros(double n) noexcept {
  return Duration{static_cast<std::int64_t>(n * 1e6 + (n >= 0 ? 0.5 : -0.5))};
}
[[nodiscard]] constexpr Duration millis(double n) noexcept {
  return Duration{static_cast<std::int64_t>(n * 1e9 + (n >= 0 ? 0.5 : -0.5))};
}
[[nodiscard]] constexpr Duration seconds(double n) noexcept {
  return Duration{static_cast<std::int64_t>(n * 1e12 + (n >= 0 ? 0.5 : -0.5))};
}

class Time {
 public:
  constexpr Time() noexcept = default;
  constexpr explicit Time(std::int64_t picos) noexcept : picos_(picos) {}

  [[nodiscard]] constexpr std::int64_t picos() const noexcept { return picos_; }
  [[nodiscard]] constexpr double nanos() const noexcept { return static_cast<double>(picos_) * 1e-3; }
  [[nodiscard]] constexpr double micros() const noexcept { return static_cast<double>(picos_) * 1e-6; }
  [[nodiscard]] constexpr double seconds() const noexcept { return static_cast<double>(picos_) * 1e-12; }
  [[nodiscard]] constexpr Duration since_epoch() const noexcept { return Duration{picos_}; }

  constexpr auto operator<=>(const Time&) const noexcept = default;

  constexpr Time& operator+=(Duration d) noexcept {
    picos_ += d.picos();
    return *this;
  }
  constexpr Time& operator-=(Duration d) noexcept {
    picos_ -= d.picos();
    return *this;
  }

  [[nodiscard]] static constexpr Time zero() noexcept { return Time{0}; }
  [[nodiscard]] static constexpr Time max() noexcept {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

 private:
  std::int64_t picos_ = 0;
};

[[nodiscard]] constexpr Time operator+(Time t, Duration d) noexcept {
  return Time{t.picos() + d.picos()};
}
[[nodiscard]] constexpr Time operator+(Duration d, Time t) noexcept { return t + d; }
[[nodiscard]] constexpr Time operator-(Time t, Duration d) noexcept {
  return Time{t.picos() - d.picos()};
}
[[nodiscard]] constexpr Duration operator-(Time a, Time b) noexcept {
  return Duration{a.picos() - b.picos()};
}

// Renders a duration with an auto-selected unit, e.g. "512 ns" or "1.2 us".
[[nodiscard]] std::string to_string(Duration d);
[[nodiscard]] std::string to_string(Time t);

}  // namespace tsn::sim
