// The discrete-event simulation engine.
//
// A single-threaded event loop over a time-ordered queue. Events scheduled
// for the same instant fire in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace tsn::sim {

class Engine;

// Opaque handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() noexcept = default;

  [[nodiscard]] bool valid() const noexcept { return seq_ != 0; }

 private:
  friend class Engine;
  explicit EventHandle(std::uint64_t seq) noexcept : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Engine {
 public:
  using Action = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Current simulation time. Monotonically non-decreasing.
  [[nodiscard]] Time now() const noexcept { return now_; }

  // Schedules `action` to run at absolute time `at`. Scheduling into the
  // past clamps to `now()` (the event fires next, after already-due events).
  EventHandle schedule_at(Time at, Action action);

  // Schedules `action` to run `delay` after now. Negative delays clamp to 0.
  EventHandle schedule_in(Duration delay, Action action);

  // Cancels a pending event. Returns true if the event existed and had not
  // yet fired. Cancellation is O(1); the slot is dropped lazily at pop time.
  bool cancel(EventHandle handle);

  // Runs until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  // Runs events with time <= deadline, then advances the clock to exactly
  // `deadline` (even if the queue drained early). Returns events fired.
  std::uint64_t run_until(Time deadline);

  // Runs exactly one event, if any. Returns true if one fired.
  bool step();

  // Stops a run() / run_until() in progress after the current event.
  void request_stop() noexcept { stop_requested_ = true; }

  [[nodiscard]] std::size_t pending_events() const noexcept;
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

 private:
  struct Scheduled {
    Time at;
    std::uint64_t seq = 0;
    Action action;

    // Min-queue on (time, seq): std::priority_queue is a max-queue, so the
    // comparison is reversed.
    bool operator<(const Scheduled& other) const noexcept {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  bool pop_one();

  std::priority_queue<Scheduled> queue_;
  std::vector<std::uint64_t> cancelled_;  // sorted lazily at pop
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t live_ = 0;  // pending minus cancelled
  bool stop_requested_ = false;
};

}  // namespace tsn::sim
