// The discrete-event simulation engine.
//
// A single-threaded event loop over a time-ordered queue. Events scheduled
// for the same instant fire in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes runs fully deterministic.
//
// Hot-path memory model: actions are stored in pooled, slab-allocated slots
// (`EventPool`) as `InlineAction`s — no heap allocation per event once the
// pool and the heap vector are warm. Cancellation is genuinely O(1): a
// handle names (slot, generation); cancelling releases the slot immediately
// and the stale heap entry is discarded when it surfaces at the top.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/action.hpp"
#include "sim/event_pool.hpp"
#include "sim/time.hpp"

namespace tsn::sim {

class Engine;

// Opaque handle for cancelling a scheduled event. Generation-checked: a
// handle kept past its event's firing (or past a cancel) goes stale and all
// later cancels through it return false, even after the slot is reused.
class EventHandle {
 public:
  EventHandle() noexcept = default;

  [[nodiscard]] bool valid() const noexcept { return generation_ != 0; }

 private:
  friend class Engine;
  EventHandle(std::uint32_t slot, std::uint32_t generation) noexcept
      : slot_(slot), generation_(generation) {}
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class Engine {
 public:
  using Action = InlineAction;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Current simulation time. Monotonically non-decreasing.
  [[nodiscard]] Time now() const noexcept { return now_; }

  // Schedules `action` to run at absolute time `at`. Scheduling into the
  // past clamps to `now()` (the event fires next, after already-due events).
  EventHandle schedule_at(Time at, Action action);

  // Schedules `action` to run `delay` after now. Negative delays clamp to 0.
  EventHandle schedule_in(Duration delay, Action action);

  // Cancels a pending event in O(1). Returns true if the event existed and
  // had not yet fired; stale handles (fired, already cancelled, or slot
  // reused) return false.
  bool cancel(EventHandle handle);

  // Runs until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  // Runs events with time <= deadline, then advances the clock to exactly
  // `deadline` (even if the queue drained early). Returns events fired.
  std::uint64_t run_until(Time deadline);

  // Runs exactly one event, if any. Returns true if one fired.
  bool step();

  // Stops a run() / run_until() in progress after the current event.
  void request_stop() noexcept { stop_requested_ = true; }

  // Pre-warms pool slabs and the heap vector for `events` concurrent
  // pending events, so bursts (Fig 2c) hit no allocation at schedule time.
  void reserve(std::size_t events);

  [[nodiscard]] std::size_t pending_events() const noexcept;
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }
  // Pool introspection (tests and capacity planning).
  [[nodiscard]] std::size_t pool_capacity() const noexcept { return pool_.capacity(); }
  [[nodiscard]] std::size_t pool_in_use() const noexcept { return pool_.in_use(); }

 private:
  // Heap entries are small POD (the action stays in the pool slot); a
  // cancelled event's entry lingers, detected by generation mismatch.
  struct HeapEntry {
    Time at;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };
  // std::push_heap/pop_heap build a max-heap; "fires later" as the ordering
  // puts the earliest (time, seq) on top.
  struct FiresLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_one();
  // Discards stale (cancelled) top entries; returns the next live entry or
  // nullptr. The single peek path shared by pop_one and run_until.
  const HeapEntry* peek_live();

  std::vector<HeapEntry> heap_;
  EventPool pool_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t live_ = 0;  // pending minus cancelled
  bool stop_requested_ = false;
};

}  // namespace tsn::sim
