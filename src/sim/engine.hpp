// The discrete-event simulation engine (single-threaded golden reference).
//
// A single-threaded event loop over a time-ordered queue. Events scheduled
// for the same instant fire in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes runs fully deterministic.
//
// `Engine` is one of two `Scheduler` implementations — the other is
// `Domain` (sim/domain.hpp), one shard of a parallel `ShardedEngine`. The
// engine is the golden reference the sharded runtime must match: a
// ShardedEngine run with one worker is byte-identical to an Engine run of
// the same topology.
//
// Hot-path memory model: actions are stored in pooled, slab-allocated slots
// (`EventPool`) as `InlineAction`s — no heap allocation per event once the
// pool and the heap vector are warm. Cancellation is genuinely O(1): a
// handle names (slot, generation); cancelling releases the slot immediately
// and the stale heap entry is discarded when it surfaces at the top. The
// queue core lives in sim/event_queue.hpp, shared with `Domain`.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace tsn::sim {

class Engine final : public Scheduler {
 public:
  Engine() = default;

  // Current simulation time. Monotonically non-decreasing.
  [[nodiscard]] Time now() const noexcept override { return now_; }

  // Schedules `action` to run at absolute time `at`. Scheduling into the
  // past clamps to `now()` (the event fires next, after already-due events).
  EventHandle schedule_at(Time at, Action action) override;

  // Cancels a pending event in O(1). Returns true if the event existed and
  // had not yet fired; stale handles (fired, already cancelled, or slot
  // reused) return false.
  bool cancel(EventHandle handle) override;

  // A plain engine is always the main domain.
  [[nodiscard]] DomainId domain_id() const noexcept override { return kMainDomain; }

  // Runs until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  // Runs events with time <= deadline, then advances the clock to exactly
  // `deadline` (even if the queue drained early). Returns events fired.
  std::uint64_t run_until(Time deadline);

  // Runs exactly one event, if any. Returns true if one fired.
  bool step();

  // Stops a run() / run_until() in progress after the current event.
  void request_stop() noexcept { stop_requested_ = true; }

  // Pre-warms pool slabs and the heap vector for `events` concurrent
  // pending events, so bursts (Fig 2c) hit no allocation at schedule time.
  void reserve(std::size_t events) { queue_.reserve(events); }

  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.live(); }
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }
  // Pool introspection (tests and capacity planning).
  [[nodiscard]] std::size_t pool_capacity() const noexcept { return queue_.pool_capacity(); }
  [[nodiscard]] std::size_t pool_in_use() const noexcept { return queue_.pool_in_use(); }

 private:
  EventQueue queue_{kMainDomain};
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  bool stop_requested_ = false;
};

}  // namespace tsn::sim
