#include "sim/random.hpp"

#include <cmath>
#include <numbers>

namespace tsn::sim {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // All-zero state is the one invalid state for xoshiro; seed guards it.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with a rejection step.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u >= 1.0) u = 0x1.fffffffffffffp-1;
  return -mean * std::log1p(-u);
}

double Rng::normal() noexcept {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 256.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = uniform();
  std::uint64_t count = 0;
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  if (u >= 1.0) u = 0x1.fffffffffffffp-1;
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  if (n <= 1) return 1;
  // Approximate inverse CDF of the continuous analogue; adequate for
  // popularity skews and O(1) per draw.
  const double u = uniform();
  if (s == 1.0) {
    const double h = std::log(static_cast<double>(n) + 1.0);
    auto rank = static_cast<std::uint64_t>(std::exp(u * h));
    return rank < 1 ? 1 : (rank > n ? n : rank);
  }
  const double one_minus_s = 1.0 - s;
  const double hn = (std::pow(static_cast<double>(n) + 1.0, one_minus_s) - 1.0) / one_minus_s;
  const double x = std::pow(u * hn * one_minus_s + 1.0, 1.0 / one_minus_s);
  auto rank = static_cast<std::uint64_t>(x);
  return rank < 1 ? 1 : (rank > n ? n : rank);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept { return Rng{next_u64()}; }

}  // namespace tsn::sim
