#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace tsn::sim {

namespace {

std::string format_picos(std::int64_t ps) {
  const char* unit = "ps";
  double value = static_cast<double>(ps);
  const double abs = std::fabs(value);
  if (abs >= 1e12) {
    unit = "s";
    value *= 1e-12;
  } else if (abs >= 1e9) {
    unit = "ms";
    value *= 1e-9;
  } else if (abs >= 1e6) {
    unit = "us";
    value *= 1e-6;
  } else if (abs >= 1e3) {
    unit = "ns";
    value *= 1e-3;
  }
  char buf[64];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f %s", value, unit);
  }
  return buf;
}

}  // namespace

std::string to_string(Duration d) { return format_picos(d.picos()); }
std::string to_string(Time t) { return format_picos(t.picos()); }

}  // namespace tsn::sim
