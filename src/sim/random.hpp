// Deterministic pseudo-random number generation for the simulator.
//
// Simulation runs must be exactly reproducible given a seed, across
// platforms and standard-library versions, so we implement the generator
// (xoshiro256**) and all distributions ourselves rather than relying on
// <random>'s unspecified distribution algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace tsn::sim {

// xoshiro256** 1.0 by Blackman & Vigna, seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  // Uniform over the full 64-bit range.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  // Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  // True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  // Exponential with the given mean (>0).
  [[nodiscard]] double exponential(double mean) noexcept;

  // Standard normal via Box-Muller (no cached spare: keeps state minimal).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  // Log-normal: exp(N(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  // Poisson with the given mean. Uses Knuth's method for small means and a
  // normal approximation for large ones (mean > 256).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  // Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed bursts).
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  // Zipf-like rank selection over n items with exponent s, 1-indexed rank in
  // [1, n]. Approximate inverse-CDF method; used for symbol popularity.
  [[nodiscard]] std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  // Picks an index in [0, weights.size()) with probability proportional to
  // the weight. Weights must be non-negative with a positive sum.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

  // Derives an independent child generator (stream splitting).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace tsn::sim
