// Summary statistics used by benches, capture appliances, and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tsn::sim {

// Accumulates samples and reports min/avg/median/max and percentiles.
// Samples are retained (the workloads here are at most a few million
// samples), so percentiles are exact.
class SampleStats {
 public:
  void add(double value);
  // Appends every sample of `other` (exact pooled statistics).
  void merge(const SampleStats& other);
  void clear() noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  // Exact percentile by nearest-rank, p in [0, 100]. Sorts lazily.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  // "min avg median max" row matching the layout of the paper's Table 1.
  [[nodiscard]] std::string table_row() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width time-window counter: counts events per window of a given
// duration, for reproducing Figure 2(b) (1 s windows) and 2(c) (100 us
// windows).
class WindowedCounter {
 public:
  WindowedCounter(Time origin, Duration window);

  void record(Time at, std::uint64_t count = 1);

  [[nodiscard]] Duration window() const noexcept { return window_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }

  // Statistics over the non-empty range of windows (or all windows when
  // include_empty is true).
  [[nodiscard]] SampleStats stats(bool include_empty = false) const;

 private:
  Time origin_;
  Duration window_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace tsn::sim
