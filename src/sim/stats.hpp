// Compatibility shim: the summary-statistics types moved to the telemetry
// subsystem (src/telemetry/metrics.hpp) when the metrics registry was
// introduced, so that benches, capture appliances, and sim entities share
// one Histogram/Counter vocabulary. Existing call sites keep compiling via
// these aliases; new code should include telemetry/metrics.hpp directly.
#pragma once

#include "telemetry/metrics.hpp"

namespace tsn::sim {

using SampleStats = telemetry::Histogram;
using WindowedCounter = telemetry::WindowedCounter;

}  // namespace tsn::sim
