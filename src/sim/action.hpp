// InlineAction: a move-only `void()` callable with small-buffer inline
// storage, replacing `std::function` on the event-scheduling hot path.
//
// The simulator schedules one callable per event at rates of 500k+ events/s
// (PAPER §3), so the per-event `std::function` heap allocation dominated
// wall-clock before the network models ran at all. Every capture used across
// src/ fits the inline buffer (the largest is a NIC rx deferral: a
// std::function handler + PacketPtr + Time, 56 bytes), so steady-state
// scheduling performs zero heap allocations. Oversized or alignment-exotic
// callables still work — they fall back to a heap-held box — but the
// capture-size budget is part of the hot-path contract (see DESIGN.md
// "Hot-path memory model") and test_hotpath_alloc.cpp enforces it.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tsn::sim {

class InlineAction {
 public:
  // Sized for the largest hot-path capture (56 B) with headroom; keeping the
  // whole object at one cache line + ops pointer.
  static constexpr std::size_t kInlineCapacity = 64;

  InlineAction() noexcept = default;

  // Implicit by design: call sites pass lambdas straight to schedule_at().
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (stores_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineAction(InlineAction&& other) noexcept { move_from(std::move(other)); }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  // True when the stored callable lives in the inline buffer (no heap).
  [[nodiscard]] bool stored_inline() const noexcept { return ops_ != nullptr && ops_->inline_stored; }

  // Compile-time predicate tests use to pin the hot-path capture budget.
  template <typename Fn>
  [[nodiscard]] static constexpr bool stores_inline() noexcept {
    return sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs the callable at `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_stored;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* s) { (*std::launder(static_cast<Fn*>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { std::launder(static_cast<Fn*>(s))->~Fn(); },
      true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* s) { (**std::launder(static_cast<Fn**>(s)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(static_cast<Fn**>(src)));
      },
      [](void* s) noexcept { delete *std::launder(static_cast<Fn**>(s)); },
      false,
  };

  void move_from(InlineAction&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace tsn::sim
