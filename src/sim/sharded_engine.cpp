#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <utility>

#include "core/check.hpp"

namespace tsn::sim {

namespace {

// Saturating `base + delta` so a max() lookahead (no cross-domain traffic)
// means "run everything up to the deadline in one window".
[[nodiscard]] Time saturating_add(Time base, Duration delta) noexcept {
  if (delta.picos() >= Time::max().picos() - base.picos()) return Time::max();
  return base + delta;
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedConfig config) : config_(config) {
  TSN_ASSERT(config_.domains >= 1, "a sharded engine needs at least one domain");
  if (config_.num_workers == 0) config_.num_workers = 1;
  golden_ = config_.mode == SyncMode::kGolden ||
            (config_.mode == SyncMode::kAuto && config_.num_workers <= 1);
  lookahead_ = config_.lookahead;
  domains_.reserve(config_.domains);
  for (std::uint32_t i = 0; i < config_.domains; ++i) {
    domains_.emplace_back(new Domain(*this, static_cast<DomainId>(i)));
  }
  mailboxes_.resize(static_cast<std::size_t>(config_.domains) * config_.domains);
  if (golden_) {
    // One shared tie-break counter makes the merged execution assign the
    // exact sequence numbers a plain Engine would — the byte-identity
    // contract of the golden reference.
    for (auto& d : domains_) d->seq_ = &shared_seq_;
  }
}

ShardedEngine::~ShardedEngine() {
  if (!workers_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    window_start_->arrive_and_wait();
    for (std::thread& t : workers_) t.join();
  }
}

void ShardedEngine::note_cross_domain_delay(Duration delay) {
  TSN_ASSERT(delay > Duration::zero(),
             "zero-delay cross-domain links defeat conservative lookahead");
  lookahead_ = std::min(lookahead_, delay);
}

void ShardedEngine::reserve(std::size_t events_per_domain) {
  for (auto& d : domains_) d->reserve(events_per_domain);
}

std::uint64_t ShardedEngine::events_fired() const noexcept {
  std::uint64_t total = 0;
  for (const auto& d : domains_) total += d->fired_;
  return total;
}

std::size_t ShardedEngine::pending_events() const noexcept {
  std::size_t total = 0;
  for (const auto& d : domains_) total += d->pending_events();
  return total;
}

Time ShardedEngine::now() const noexcept {
  Time earliest = Time::max();
  for (const auto& d : domains_) earliest = std::min(earliest, d->now_);
  return earliest;
}

void ShardedEngine::post(DomainId src, DomainId dst, Time at, InlineAction action) {
  TSN_ASSERT(dst < domains_.size(), "post_to an unknown domain");
  Domain& source = *domains_[src];
  TSN_DCHECK(lookahead_ == Duration::max() || at - source.now_ >= lookahead_,
             "post_to inside the lookahead window breaks conservative sync");
  if (golden_) {
    // Merged mode: deliver immediately, drawing from the shared counter at
    // the moment of the call — exactly when a plain Engine's schedule_at
    // would have assigned it.
    Domain& sink = *domains_[dst];
    if (at < sink.now_) at = sink.now_;
    sink.queue_.push(at, (*sink.seq_)++, std::move(action));
    return;
  }
  std::vector<Post>& box = mailbox(src, dst);
  box.push_back(Post{at, source.now_, box.size(), std::move(action)});
}

std::uint64_t ShardedEngine::run_until(Time deadline) {
  const std::uint64_t fired = golden_ ? run_golden(deadline) : run_windowed(deadline);
  for (auto& d : domains_) d->now_ = std::max(d->now_, deadline);
  return fired;
}

std::uint64_t ShardedEngine::run() {
  // No final clock advance: like Engine::run, the clocks rest on the last
  // event fired.
  return golden_ ? run_golden(Time::max()) : run_windowed(Time::max());
}

std::uint64_t ShardedEngine::run_golden(Time deadline) {
  stop_requested_.store(false, std::memory_order_relaxed);
  std::uint64_t count = 0;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    // Global (time, seq) minimum across shards — the event a plain Engine's
    // heap would surface next.
    Domain* best = nullptr;
    const EventQueue::HeapEntry* best_entry = nullptr;
    for (auto& d : domains_) {
      const EventQueue::HeapEntry* entry = d->peek();
      if (entry == nullptr) continue;
      if (best_entry == nullptr || entry->at < best_entry->at ||
          (entry->at == best_entry->at && entry->seq < best_entry->seq)) {
        best_entry = entry;
        best = d.get();
      }
    }
    if (best_entry == nullptr || best_entry->at > deadline) break;
    best->pop_head();
    ++count;
  }
  return count;
}

std::uint64_t ShardedEngine::run_windowed(Time deadline) {
  stop_requested_.store(false, std::memory_order_relaxed);
  const bool threaded = config_.num_workers > 1;
  if (threaded) ensure_workers();
  // Events *at* the deadline must run (run_until is inclusive), and windows
  // are exclusive at the top, so the horizon sits one tick past it.
  const Time horizon = saturating_add(deadline, Duration{1});
  const std::uint64_t fired_before = events_fired();
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    Time t_min = Time::max();
    for (auto& d : domains_) {
      const EventQueue::HeapEntry* entry = d->peek();
      if (entry != nullptr) t_min = std::min(t_min, entry->at);
    }
    if (t_min == Time::max() || t_min > deadline) break;
    const Time window_end = std::min(saturating_add(t_min, lookahead_), horizon);
    window_end_ = window_end;
    if (threaded) {
      next_domain_.store(0, std::memory_order_relaxed);
      window_start_->arrive_and_wait();
      // Workers claim domains and run the window; both barriers order the
      // domain/mailbox state between coordinator and workers.
      window_done_->arrive_and_wait();
    } else {
      for (auto& d : domains_) d->run_window(window_end);
    }
    drain_mailboxes(window_end);
  }
  return events_fired() - fired_before;
}

void ShardedEngine::drain_mailboxes(Time window_end) {
  // Deterministic delivery order — (send time, source domain, per-source
  // index) — so sequence-number assignment in the destination queues never
  // depends on worker scheduling. Same-instant cross-domain arrivals are
  // therefore ordered run-to-run identically for any worker count.
  for (DomainId dst = 0; dst < domains_.size(); ++dst) {
    scratch_refs_.clear();
    for (DomainId src = 0; src < domains_.size(); ++src) {
      for (Post& p : mailbox(src, dst)) scratch_refs_.push_back(PostRef{p.sent, src, p.idx, &p});
    }
    if (scratch_refs_.empty()) continue;
    std::sort(scratch_refs_.begin(), scratch_refs_.end(),
              [](const PostRef& a, const PostRef& b) {
                if (a.sent != b.sent) return a.sent < b.sent;
                if (a.src != b.src) return a.src < b.src;
                return a.idx < b.idx;
              });
    Domain& sink = *domains_[dst];
    for (const PostRef& r : scratch_refs_) {
      TSN_DCHECK(r.post->at >= window_end,
                 "cross-domain post lands inside the window it was sent from");
      sink.queue_.push(r.post->at, sink.own_seq_++, std::move(r.post->action));
    }
    for (DomainId src = 0; src < domains_.size(); ++src) mailbox(src, dst).clear();
  }
}

void ShardedEngine::ensure_workers() {
  if (!workers_.empty()) return;
  const auto participants = static_cast<std::ptrdiff_t>(config_.num_workers) + 1;
  window_start_ = std::make_unique<std::barrier<>>(participants);
  window_done_ = std::make_unique<std::barrier<>>(participants);
  workers_.reserve(config_.num_workers);
  for (std::uint32_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ShardedEngine::worker_loop() {
  while (true) {
    window_start_->arrive_and_wait();
    if (shutdown_.load(std::memory_order_acquire)) return;
    // Claim domains one at a time; a domain is run by exactly one worker
    // per window.
    for (std::size_t i = next_domain_.fetch_add(1, std::memory_order_relaxed);
         i < domains_.size(); i = next_domain_.fetch_add(1, std::memory_order_relaxed)) {
      domains_[i]->run_window(window_end_);
    }
    window_done_->arrive_and_wait();
  }
}

}  // namespace tsn::sim
