// Sharded, parallel discrete-event engine under conservative lookahead
// synchronization.
//
// The simulation is partitioned into `Domain`s (one per topology region /
// matching-engine partition). Each domain owns an independent event queue
// and clock; cross-domain effects travel exclusively through `post_to`
// mailboxes whose delivery times are bounded below by the minimum
// cross-domain link propagation delay — the classic conservative-lookahead
// argument (Miles & Cliff's planetary-scale exchange simulator distributes
// sims exactly this way): if every cross-shard message arrives at least
// `lookahead` after it is sent, then all events strictly before
// `min_next_event + lookahead` are causally independent across shards and
// may run in parallel.
//
// Two synchronization modes:
//
//   kGolden    Single-threaded merged execution: one shared sequence
//              counter, events popped in global (time, seq) order across
//              all domains. Byte-identical — event order, telemetry JSON,
//              feed bytes — to running the same topology on a plain
//              `Engine`. This is the reference mode.
//
//   kWindowed  Barrier-synchronized windows on a persistent worker pool.
//              Each round the coordinator computes
//                window_end = min(T_min + lookahead, deadline)
//              (T_min = earliest pending event anywhere), workers claim
//              domains and run events with `at < window_end`, then the
//              coordinator drains mailboxes in a deterministic order
//              (send time, source domain, per-source index) so results are
//              identical for any worker count and across repeat runs.
//
// kAuto picks kGolden when num_workers <= 1, else kWindowed. End-state
// digests (book state, positions, metrics counters) of a windowed run match
// the golden run; the event *interleaving* (and therefore e.g. trace-span
// ordering across domains) may differ between modes, which is why digests —
// not byte streams — are the cross-mode contract.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/domain.hpp"
#include "sim/time.hpp"

namespace tsn::sim {

enum class SyncMode : std::uint8_t {
  kAuto,      // golden when num_workers <= 1, windowed otherwise
  kGolden,    // merged single-threaded reference execution
  kWindowed,  // parallel lookahead windows
};

struct ShardedConfig {
  std::uint32_t domains = 1;
  // Worker threads for windowed mode. 1 keeps everything on the calling
  // thread (still windowed execution if mode forces it).
  std::uint32_t num_workers = 1;
  SyncMode mode = SyncMode::kAuto;
  // Upper bound on the lookahead window; tightened to the minimum
  // cross-domain propagation delay by note_cross_domain_delay(). Left at
  // max() (no cross-domain traffic), domains free-run to the deadline.
  Duration lookahead = Duration::max();
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedConfig config);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  [[nodiscard]] Domain& domain(DomainId id) noexcept { return *domains_[id]; }
  [[nodiscard]] std::size_t domain_count() const noexcept { return domains_.size(); }

  // Registers a cross-domain delivery latency (e.g. a bridge link's
  // propagation delay). The lookahead window is the minimum of all
  // registered delays; every post_to must honor it.
  void note_cross_domain_delay(Duration delay);
  [[nodiscard]] Duration lookahead() const noexcept { return lookahead_; }

  // True when this engine executes in golden (merged reference) mode.
  [[nodiscard]] bool golden() const noexcept { return golden_; }
  [[nodiscard]] std::uint32_t num_workers() const noexcept { return config_.num_workers; }

  // Runs events with time <= deadline on every shard, then advances every
  // shard's clock to exactly `deadline`. Returns total events fired.
  std::uint64_t run_until(Time deadline);

  // Runs until every queue (and mailbox) drains. Returns events fired.
  std::uint64_t run();

  // Stops a run in progress: after the current event in golden mode, at the
  // next window boundary in windowed mode.
  void request_stop() noexcept { stop_requested_.store(true, std::memory_order_relaxed); }

  // Pre-warms every shard's pool and heap for `events_per_domain`.
  void reserve(std::size_t events_per_domain);

  [[nodiscard]] std::uint64_t events_fired() const noexcept;
  [[nodiscard]] std::size_t pending_events() const noexcept;
  // Earliest shard clock (== the deadline between runs).
  [[nodiscard]] Time now() const noexcept;

 private:
  friend class Domain;

  // One cross-domain message, parked in a per-(src, dst) mailbox until the
  // window barrier. `sent`/`idx` give mailbox draining a total order that
  // does not depend on worker scheduling.
  struct Post {
    Time at;
    Time sent;
    std::uint64_t idx = 0;
    InlineAction action;
  };

  // Sorting view over parked posts during a drain (coordinator-only
  // scratch, reused across windows).
  struct PostRef {
    Time sent;
    DomainId src = 0;
    std::uint64_t idx = 0;
    Post* post = nullptr;
  };

  void post(DomainId src, DomainId dst, Time at, InlineAction action);

  std::uint64_t run_golden(Time deadline);
  std::uint64_t run_windowed(Time deadline);
  // Delivers parked posts into their destination queues in deterministic
  // order. Runs on the coordinator thread between windows.
  void drain_mailboxes(Time window_end);
  void ensure_workers();
  void worker_loop();

  [[nodiscard]] std::vector<Post>& mailbox(DomainId src, DomainId dst) noexcept {
    return mailboxes_[static_cast<std::size_t>(src) * domains_.size() + dst];
  }

  ShardedConfig config_;
  bool golden_ = true;
  Duration lookahead_ = Duration::max();
  std::vector<std::unique_ptr<Domain>> domains_;
  std::vector<std::vector<Post>> mailboxes_;  // [src * n + dst]
  std::vector<PostRef> scratch_refs_;
  std::uint64_t shared_seq_ = 1;  // golden mode: one counter across shards
  std::atomic<bool> stop_requested_{false};

  // Windowed-mode worker pool (lazily started). The coordinator publishes
  // window_end_ before the start barrier; barrier phases order all access
  // to domain and mailbox state between coordinator and workers.
  std::vector<std::thread> workers_;
  std::unique_ptr<std::barrier<>> window_start_;
  std::unique_ptr<std::barrier<>> window_done_;
  std::atomic<std::size_t> next_domain_{0};
  std::atomic<bool> shutdown_{false};
  Time window_end_ = Time::zero();
};

}  // namespace tsn::sim
