// The time-ordered event queue core shared by `Engine` and `Domain`.
//
// Extracted from the PR 3 engine: pooled slab-allocated slots (`EventPool`),
// a lazy-pruned binary heap, and O(1) generation-checked cancellation. The
// queue owns neither the clock nor the sequence counter — its owner passes
// `seq` into push() (a Domain under a golden-mode ShardedEngine shares one
// counter across all shards so the merged run is byte-identical to a plain
// Engine) and advances its own `now` from the entries the queue pops.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/check.hpp"
#include "sim/action.hpp"
#include "sim/event_pool.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace tsn::sim {

class EventQueue {
 public:
  // Heap entries are small POD (the action stays in the pool slot); a
  // cancelled event's entry lingers, detected by generation mismatch.
  struct HeapEntry {
    Time at;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };

  explicit EventQueue(DomainId domain = kMainDomain) noexcept : domain_(domain) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Adds an event. The caller supplies the tie-break sequence number; (at,
  // seq) must be unique per queue and seq monotonically increasing for
  // deterministic same-instant ordering.
  // tsn-lint: hotpath
  EventHandle push(Time at, std::uint64_t seq, InlineAction action) {
    const std::uint32_t index = pool_.acquire();
    EventPool::Slot& slot = pool_.slot(index);
    slot.at = at;
    slot.seq = seq;
    slot.armed = true;
    slot.action = std::move(action);
    heap_.push_back(HeapEntry{at, seq, index, slot.generation});
    std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
    ++live_;
    return EventHandle{index, slot.generation, domain_};
  }

  // O(1) cancel; see Scheduler::cancel for the handle-staleness contract.
  // The caller is responsible for the domain check — this queue only checks
  // slot liveness.
  // tsn-lint: hotpath
  bool cancel(EventHandle handle) {
    if (!handle.valid() || handle.slot_ >= pool_.capacity()) return false;
    EventPool::Slot& slot = pool_.slot(handle.slot_);
    // A fired, cancelled, or reused slot has moved past the handle's
    // generation; only the live original matches.
    if (!slot.armed || slot.generation != handle.generation_) return false;
    pool_.release(handle.slot_);  // heap entry goes stale; pruned at peek
    --live_;
    return true;
  }

  // Discards stale (cancelled) top entries; returns the next live entry or
  // nullptr. The single peek path shared by every run loop.
  // tsn-lint: hotpath
  const HeapEntry* peek_live() {
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      const EventPool::Slot& slot = pool_.slot(top.slot);
      if (slot.armed && slot.generation == top.generation) return &heap_.front();
      // Cancelled: the slot was released (and possibly re-armed under a new
      // generation); this entry is stale.
      std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
      heap_.pop_back();
    }
    return nullptr;
  }

  // Pops the next live event, advances `now` to its timestamp, bumps
  // `fired`, and invokes the action. Returns false if the queue is empty.
  // tsn-lint: hotpath
  bool pop_one(Time& now, std::uint64_t& fired) {
    const HeapEntry* top = peek_live();
    if (top == nullptr) return false;
    const HeapEntry entry = *top;
    std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
    heap_.pop_back();
    EventPool::Slot& slot = pool_.slot(entry.slot);
    // Release the slot before invoking: the action may schedule new events
    // (reusing this slot under a fresh generation) or cancel others.
    InlineAction action = std::move(slot.action);
    pool_.release(entry.slot);
    --live_;
    TSN_DCHECK(entry.at >= now, "event queue must never run time backwards");
    now = entry.at;
    ++fired;
    action();
    return true;
  }

  // Pre-warms pool slabs and the heap vector for `events` concurrent
  // pending events, so bursts hit no allocation at schedule time.
  void reserve(std::size_t events) {
    pool_.reserve(events);
    heap_.reserve(events);
  }

  [[nodiscard]] DomainId domain() const noexcept { return domain_; }
  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  [[nodiscard]] std::size_t pool_capacity() const noexcept { return pool_.capacity(); }
  [[nodiscard]] std::size_t pool_in_use() const noexcept { return pool_.in_use(); }

 private:
  // std::push_heap/pop_heap build a max-heap; "fires later" as the ordering
  // puts the earliest (time, seq) on top.
  struct FiresLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::vector<HeapEntry> heap_;
  EventPool pool_;
  DomainId domain_ = kMainDomain;
  std::uint64_t live_ = 0;  // pending minus cancelled
};

}  // namespace tsn::sim
