#include "topo/leaf_spine.hpp"

#include <stdexcept>
#include <string>

namespace tsn::topo {

LeafSpineFabric::LeafSpineFabric(net::Fabric& fabric, LeafSpineConfig config)
    : fabric_(fabric), config_(config) {
  if (config_.spine_count == 0 || config_.leaf_count == 0) {
    throw std::invalid_argument{"need at least one spine and one leaf"};
  }
  if (config_.ports_per_leaf <= config_.spine_count) {
    throw std::invalid_argument{"leaves need host ports beyond their uplinks"};
  }
  auto leaf_cfg = config_.leaf_switch;
  leaf_cfg.port_count = config_.ports_per_leaf;
  auto spine_cfg = config_.spine_switch;
  spine_cfg.port_count = config_.leaf_count;

  for (std::size_t l = 0; l < config_.leaf_count; ++l) {
    leaves_.push_back(std::make_unique<l2::CommoditySwitch>(
        fabric_.engine(), "leaf" + std::to_string(l), leaf_cfg));
  }
  for (std::size_t s = 0; s < config_.spine_count; ++s) {
    spines_.push_back(std::make_unique<l2::CommoditySwitch>(
        fabric_.engine(), "spine" + std::to_string(s), spine_cfg));
  }
  next_leaf_port_.assign(config_.leaf_count, static_cast<net::PortId>(config_.spine_count));

  // Wire leaf l port s <-> spine s port l.
  for (std::size_t l = 0; l < config_.leaf_count; ++l) {
    for (std::size_t s = 0; s < config_.spine_count; ++s) {
      fabric_.connect(*leaves_[l], static_cast<net::PortId>(s), *spines_[s],
                      static_cast<net::PortId>(l), config_.fabric_link);
    }
    // Spine 0 is the multicast rendezvous root: joins and source traffic
    // from hosts are pushed toward it.
    leaves_[l]->set_router_port(0, true);
  }

  // Routes: each leaf ECMPs every remote rack across all spines; each
  // spine knows which leaf owns each rack subnet. (This is what BGP would
  // compute; the builder stands in for the control plane.)
  for (std::size_t l = 0; l < config_.leaf_count; ++l) {
    for (std::size_t r = 0; r < config_.leaf_count; ++r) {
      if (r == l) continue;
      const net::Ipv4Addr subnet{10, static_cast<std::uint8_t>(r), 0, 0};
      for (std::size_t s = 0; s < config_.spine_count; ++s) {
        leaves_[l]->add_route(subnet, 16, static_cast<net::PortId>(s));
      }
    }
  }
  for (std::size_t s = 0; s < config_.spine_count; ++s) {
    for (std::size_t r = 0; r < config_.leaf_count; ++r) {
      spines_[s]->add_route(net::Ipv4Addr{10, static_cast<std::uint8_t>(r), 0, 0}, 16,
                            static_cast<net::PortId>(r));
    }
  }
}

net::Ipv4Addr LeafSpineFabric::host_ip(std::size_t rack, std::size_t index) {
  if (rack > 255 || index >= 250 * 250) throw std::out_of_range{"rack/index out of range"};
  return net::Ipv4Addr{10, static_cast<std::uint8_t>(rack),
                       static_cast<std::uint8_t>(index / 250),
                       static_cast<std::uint8_t>(index % 250 + 1)};
}

void LeafSpineFabric::attach_host(std::size_t rack, net::Nic& nic) {
  if (rack >= leaves_.size()) throw std::out_of_range{"no such rack"};
  net::PortId& next = next_leaf_port_[rack];
  if (next >= config_.ports_per_leaf) throw std::length_error{"rack is full"};
  const net::PortId port = next++;
  fabric_.connect(*leaves_[rack], port, nic, 0, config_.host_link);
  leaves_[rack]->bind_host(nic.ip(), nic.mac(), port);
}

std::size_t LeafSpineFabric::total_software_groups() const noexcept {
  std::size_t total = 0;
  for (const auto& leaf : leaves_) total += leaf->mroutes().software_group_count();
  for (const auto& spine : spines_) total += spine->mroutes().software_group_count();
  return total;
}

}  // namespace tsn::topo
