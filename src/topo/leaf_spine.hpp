// Design 1: leaf-spine fabric of commodity switches (§4.1).
//
// Every rack has a ToR (leaf); a spine layer connects the leaves; one
// dedicated leaf connects to the exchange so every host is equidistant
// from it (and gets a natural policy enforcement point). Unicast routes
// ECMP across all spines ("a standard Layer-3 protocol"); multicast uses
// IGMP snooping with spine 0 acting as the rendezvous root, so the
// multicast tree is loop-free. A round trip through four functions placed
// in different racks crosses 12 switch hops, the paper's headline count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "l2/commodity_switch.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"

namespace tsn::topo {

struct LeafSpineConfig {
  std::size_t spine_count = 4;
  std::size_t leaf_count = 26;
  std::size_t ports_per_leaf = 48;  // uplinks + hosts
  l2::CommoditySwitchConfig leaf_switch;
  l2::CommoditySwitchConfig spine_switch;
  net::LinkConfig host_link{10'000'000'000, sim::nanos(std::int64_t{50}), 1 << 20, 0.0};
  net::LinkConfig fabric_link{100'000'000'000, sim::nanos(std::int64_t{150}), 4 << 20, 0.0};
};

class LeafSpineFabric {
 public:
  LeafSpineFabric(net::Fabric& fabric, LeafSpineConfig config);
  LeafSpineFabric(const LeafSpineFabric&) = delete;
  LeafSpineFabric& operator=(const LeafSpineFabric&) = delete;

  // Connects a NIC to the given rack's leaf; programs the /32 host route
  // everywhere it is needed. The NIC's IP must come from host_ip(rack, i).
  void attach_host(std::size_t rack, net::Nic& nic);

  // Deterministic addressing: rack r, host index i -> 10.(r).(i/250).(i%250+1).
  [[nodiscard]] static net::Ipv4Addr host_ip(std::size_t rack, std::size_t index);

  [[nodiscard]] l2::CommoditySwitch& leaf(std::size_t i) { return *leaves_.at(i); }
  [[nodiscard]] l2::CommoditySwitch& spine(std::size_t i) { return *spines_.at(i); }
  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaves_.size(); }
  [[nodiscard]] std::size_t spine_count() const noexcept { return spines_.size(); }
  [[nodiscard]] const LeafSpineConfig& config() const noexcept { return config_; }

  // Switch hops a frame crosses between two racks (1 within a rack,
  // 3 across racks: leaf, spine, leaf).
  [[nodiscard]] static std::size_t switch_hops(std::size_t rack_a, std::size_t rack_b) noexcept {
    return rack_a == rack_b ? 1 : 3;
  }

  // Aggregate multicast state across all switches (for the M1 bench).
  [[nodiscard]] std::size_t total_software_groups() const noexcept;

 private:
  net::Fabric& fabric_;
  LeafSpineConfig config_;
  std::vector<std::unique_ptr<l2::CommoditySwitch>> leaves_;
  std::vector<std::unique_ptr<l2::CommoditySwitch>> spines_;
  std::vector<net::PortId> next_leaf_port_;
};

}  // namespace tsn::topo
