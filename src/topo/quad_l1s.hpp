// Design 3: four Layer-1 switch networks (§4.3).
//
// One L1S fabric per communication stage: exchange feeds to normalizers,
// normalized feeds to strategies, strategies to gateways, and gateways to
// the exchange. Circuits deliver traffic in nanoseconds to arbitrary host
// sets; the price is interface proliferation — a strategy either dedicates
// a NIC per subscribed feed or accepts a merge, and merged feeds can
// exceed the output line rate under bursts (queueing or loss at the
// egress link). Reverse-direction circuits carry TCP responses; the L1S
// acts as a hub and host NIC MAC filters discard what isn't theirs.
#pragma once

#include <cstdint>
#include <memory>

#include "l1s/layer1_switch.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"

namespace tsn::topo {

enum class Stage : std::uint8_t {
  kFeeds = 0,       // exchange -> normalizers
  kNormDist = 1,    // normalizers -> strategies
  kOrderAgg = 2,    // strategies -> gateways
  kToExchange = 3,  // gateways -> exchange
};

struct QuadL1Config {
  std::size_t ports_per_switch = 64;
  l1s::L1SwitchConfig switch_config;
  net::LinkConfig link{10'000'000'000, sim::nanos(std::int64_t{30}), 1 << 20, 0.0};
};

class QuadL1Fabric {
 public:
  QuadL1Fabric(net::Fabric& fabric, QuadL1Config config);
  QuadL1Fabric(const QuadL1Fabric&) = delete;
  QuadL1Fabric& operator=(const QuadL1Fabric&) = delete;

  // Wires a NIC into one stage's switch; returns the port it occupies.
  net::PortId attach(Stage stage, net::Nic& nic);

  // Creates a one-way circuit within a stage.
  void patch(Stage stage, net::PortId in, net::PortId out);
  // Convenience: duplex circuit (both directions).
  void patch_duplex(Stage stage, net::PortId a, net::PortId b);

  [[nodiscard]] l1s::Layer1Switch& stage_switch(Stage stage) {
    return *switches_[static_cast<std::size_t>(stage)];
  }

 private:
  net::Fabric& fabric_;
  QuadL1Config config_;
  std::unique_ptr<l1s::Layer1Switch> switches_[4];
  net::PortId next_port_[4] = {0, 0, 0, 0};
};

}  // namespace tsn::topo
