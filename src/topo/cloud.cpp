#include "topo/cloud.hpp"

#include <stdexcept>

namespace tsn::topo {

CloudRegion::CloudRegion(net::Fabric& fabric, CloudConfig config)
    : fabric_(fabric), config_(config) {
  auto core_cfg = config_.core_switch;
  core_cfg.port_count = config_.port_count;
  // Provider-managed fabric: plenty of multicast capacity (the provider
  // implements feed distribution as a managed service).
  if (core_cfg.mroute_hardware_capacity < 4096) core_cfg.mroute_hardware_capacity = 4096;
  core_ = std::make_unique<l2::CommoditySwitch>(fabric_.engine(), "cloud-core", core_cfg);
}

net::PortId CloudRegion::attach_with_latency(net::Nic& nic, sim::Duration latency) {
  if (next_port_ >= config_.port_count) throw std::length_error{"cloud region full"};
  const net::PortId port = next_port_++;
  net::LinkConfig link;
  link.rate_bps = config_.tenant_rate_bps;
  link.propagation = latency;
  link.queue_capacity_bytes = 4 << 20;
  fabric_.connect(*core_, port, nic, 0, link);
  core_->bind_host(nic.ip(), nic.mac(), port);
  port_latency_.push_back(latency);
  return port;
}

net::PortId CloudRegion::attach_tenant(net::Nic& nic, sim::Duration native_latency) {
  if (native_latency > config_.equalized_latency) {
    throw std::invalid_argument{
        "tenant's native latency exceeds the equalization target; the provider "
        "can add delay but not remove it"};
  }
  // The provider pads every path to the same value — virtual equalization.
  return attach_with_latency(nic, config_.equalized_latency);
}

net::PortId CloudRegion::attach_external(net::Nic& nic) {
  return attach_with_latency(nic, config_.external_wan_latency);
}

sim::Duration CloudRegion::attachment_latency(net::PortId port) const {
  return port_latency_.at(port);
}

}  // namespace tsn::topo
