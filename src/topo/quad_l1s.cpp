#include "topo/quad_l1s.hpp"

#include <stdexcept>
#include <string>

namespace tsn::topo {

QuadL1Fabric::QuadL1Fabric(net::Fabric& fabric, QuadL1Config config)
    : fabric_(fabric), config_(config) {
  auto sw_cfg = config_.switch_config;
  sw_cfg.port_count = config_.ports_per_switch;
  static constexpr const char* kNames[4] = {"l1s-feeds", "l1s-normdist", "l1s-orderagg",
                                            "l1s-toexch"};
  for (std::size_t i = 0; i < 4; ++i) {
    switches_[i] =
        std::make_unique<l1s::Layer1Switch>(fabric_.engine(), kNames[i], sw_cfg);
  }
}

net::PortId QuadL1Fabric::attach(Stage stage, net::Nic& nic) {
  const auto index = static_cast<std::size_t>(stage);
  if (next_port_[index] >= config_.ports_per_switch) {
    throw std::length_error{"L1S stage out of ports"};
  }
  const net::PortId port = next_port_[index]++;
  fabric_.connect(*switches_[index], port, nic, 0, config_.link);
  return port;
}

void QuadL1Fabric::patch(Stage stage, net::PortId in, net::PortId out) {
  switches_[static_cast<std::size_t>(stage)]->patch(in, out);
}

void QuadL1Fabric::patch_duplex(Stage stage, net::PortId a, net::PortId b) {
  patch(stage, a, b);
  patch(stage, b, a);
}

}  // namespace tsn::topo
