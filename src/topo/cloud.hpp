// Design 2: cloud hosting with latency equalization (§4.2).
//
// The cloud provider manages the network and equalizes latency across
// tenants: whatever a tenant's physical distance from the cloud-hosted
// exchange, the provider pads the path so every tenant sees the same
// one-way delay (the fairness property of DBO/cloud-exchange proposals).
// The model exposes the two §4.2 pain points directly: (i) virtualization
// overhead puts the equalized latency far above colo latencies, and
// (ii) anything outside the region crosses a WAN link whose delay dwarfs
// everything else ("latency for communication beyond the cloud will be
// excessive").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "l2/commodity_switch.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"

namespace tsn::topo {

struct CloudConfig {
  std::size_t port_count = 128;
  // One-way latency every tenant is equalized to (virtualization overhead
  // included). Public-cloud fair-access proposals operate at this scale.
  sim::Duration equalized_latency = sim::micros(std::int64_t{100});
  // WAN delay to anything outside the region (e.g. an on-prem colo).
  sim::Duration external_wan_latency = sim::millis(std::int64_t{2});
  std::uint64_t tenant_rate_bps = 10'000'000'000;
  l2::CommoditySwitchConfig core_switch;  // provider-managed, big tables
};

class CloudRegion {
 public:
  CloudRegion(net::Fabric& fabric, CloudConfig config);
  CloudRegion(const CloudRegion&) = delete;
  CloudRegion& operator=(const CloudRegion&) = delete;

  // Attaches a tenant NIC whose true physical proximity would give it
  // `native_latency`; the provider pads it up to the equalized value.
  // Throws if native exceeds the equalization target (it cannot be sped up).
  net::PortId attach_tenant(net::Nic& nic, sim::Duration native_latency);

  // Attaches an endpoint outside the region across the WAN.
  net::PortId attach_external(net::Nic& nic);

  // The latency a given attachment actually experiences one-way (for
  // fairness verification).
  [[nodiscard]] sim::Duration attachment_latency(net::PortId port) const;

  [[nodiscard]] l2::CommoditySwitch& core() noexcept { return *core_; }
  [[nodiscard]] const CloudConfig& config() const noexcept { return config_; }

 private:
  net::PortId attach_with_latency(net::Nic& nic, sim::Duration latency);

  net::Fabric& fabric_;
  CloudConfig config_;
  std::unique_ptr<l2::CommoditySwitch> core_;
  net::PortId next_port_ = 0;
  std::vector<sim::Duration> port_latency_;
};

}  // namespace tsn::topo
