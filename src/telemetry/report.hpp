// Unified machine-readable bench reporting ("tsn-bench-v1").
//
// Every bench/bench_*.cpp builds one Report: named params, metric rows, and
// pass/fail checks against the paper's shape targets, then calls finish(),
// which prints a human-readable summary and writes BENCH_<id>.json into
// $TSN_BENCH_DIR (or the working directory). The JSON is what populates the
// repo's perf trajectory; the schema is versioned so downstream tooling can
// evolve. Rows are emitted in program order and all numbers go through the
// deterministic JsonWriter, so identical runs produce byte-identical files.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace tsn::bench {

class Report {
 public:
  // `id` names the artifact (BENCH_<id>.json); keep it file-safe.
  Report(std::string id, std::string title);

  void param(const std::string& name, const std::string& value);
  void param(const std::string& name, std::int64_t value);
  void param(const std::string& name, double value);

  void metric(const std::string& name, double value, const std::string& unit);
  // Expands a histogram into count/min/mean/p50/p99/max metric rows.
  void stats(const std::string& name, const telemetry::Histogram& h, const std::string& unit);

  // Records a pass/fail check against a shape target; returns `pass` so the
  // call can wrap an existing condition.
  bool check(const std::string& name, bool pass, const std::string& detail = {});

  [[nodiscard]] bool all_passed() const noexcept { return failed_checks_ == 0; }
  [[nodiscard]] std::string to_json() const;
  // BENCH_<id>.json under $TSN_BENCH_DIR if set, else the working directory.
  [[nodiscard]] std::string output_path() const;

  void print_summary(std::FILE* out = stdout) const;
  // print_summary + write JSON; returns a process exit code (0 = all checks
  // passed and the artifact was written).
  int finish();

 private:
  struct Param {
    std::string name;
    std::string value;  // pre-formatted
    bool quoted = true;
  };
  struct Metric {
    std::string name;
    double value = 0.0;
    std::string unit;
  };
  struct Check {
    std::string name;
    bool pass = false;
    std::string detail;
  };

  std::string id_;
  std::string title_;
  std::vector<Param> params_;
  std::vector<Metric> metrics_;
  std::vector<Check> checks_;
  int failed_checks_ = 0;
};

}  // namespace tsn::bench
