#include "telemetry/report.hpp"

#include <cstdlib>
#include <utility>

#include "telemetry/json.hpp"

namespace tsn::bench {

Report::Report(std::string id, std::string title)
    : id_(std::move(id)), title_(std::move(title)) {}

void Report::param(const std::string& name, const std::string& value) {
  params_.push_back({name, value, true});
}

void Report::param(const std::string& name, std::int64_t value) {
  params_.push_back({name, std::to_string(value), false});
}

void Report::param(const std::string& name, double value) {
  // Route through the JSON number formatter so params and metrics agree.
  telemetry::JsonWriter w;
  w.value(value);
  params_.push_back({name, w.take(), false});
}

void Report::metric(const std::string& name, double value, const std::string& unit) {
  metrics_.push_back({name, value, unit});
}

void Report::stats(const std::string& name, const telemetry::Histogram& h,
                   const std::string& unit) {
  metric(name + ".count", static_cast<double>(h.count()), "samples");
  metric(name + ".min", h.min(), unit);
  metric(name + ".mean", h.mean(), unit);
  metric(name + ".p50", h.percentile(50.0), unit);
  metric(name + ".p99", h.percentile(99.0), unit);
  metric(name + ".max", h.max(), unit);
}

bool Report::check(const std::string& name, bool pass, const std::string& detail) {
  checks_.push_back({name, pass, detail});
  if (!pass) ++failed_checks_;
  return pass;
}

std::string Report::to_json() const {
  telemetry::JsonWriter w;
  w.begin_object();
  w.field("schema", "tsn-bench-v1");
  w.field("bench", id_);
  w.field("title", title_);
  w.key("params");
  w.begin_object();
  for (const Param& p : params_) {
    if (p.quoted) {
      w.field(p.name, p.value);
    } else {
      w.key(p.name);
      w.value_raw(p.value);
    }
  }
  w.end_object();
  w.key("metrics");
  w.begin_array();
  for (const Metric& m : metrics_) {
    w.begin_object();
    w.field("name", m.name);
    w.field("value", m.value);
    w.field("unit", m.unit);
    w.end_object();
  }
  w.end_array();
  w.key("checks");
  w.begin_array();
  for (const Check& c : checks_) {
    w.begin_object();
    w.field("name", c.name);
    w.field("pass", c.pass);
    w.field("detail", c.detail);
    w.end_object();
  }
  w.end_array();
  w.field("passed", all_passed());
  w.end_object();
  return w.take();
}

std::string Report::output_path() const {
  const char* dir = std::getenv("TSN_BENCH_DIR");
  std::string path = dir != nullptr && *dir != '\0' ? std::string{dir} : std::string{"."};
  if (path.back() != '/') path.push_back('/');
  return path + "BENCH_" + id_ + ".json";
}

void Report::print_summary(std::FILE* out) const {
  std::fprintf(out, "\n== %s: %s ==\n", id_.c_str(), title_.c_str());
  for (const Param& p : params_) {
    std::fprintf(out, "  param  %-28s %s\n", p.name.c_str(), p.value.c_str());
  }
  for (const Metric& m : metrics_) {
    std::fprintf(out, "  metric %-28s %14.3f %s\n", m.name.c_str(), m.value, m.unit.c_str());
  }
  for (const Check& c : checks_) {
    std::fprintf(out, "  check  %-28s %s%s%s\n", c.name.c_str(), c.pass ? "PASS" : "FAIL",
                 c.detail.empty() ? "" : "  ", c.detail.c_str());
  }
  std::fprintf(out, "  -> %s\n", all_passed() ? "PASS" : "FAIL");
}

int Report::finish() {
  print_summary();
  const std::string path = output_path();
  const bool written = telemetry::write_text_file(path, to_json());
  if (written) {
    std::fprintf(stdout, "  wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "  FAILED to write %s\n", path.c_str());
  }
  return written && all_passed() ? 0 : 1;
}

}  // namespace tsn::bench
