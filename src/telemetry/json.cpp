#include "telemetry/json.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace tsn::telemetry {

void JsonWriter::raw(std::string_view text) { out_.append(text); }

void JsonWriter::separator() {
  if (need_comma_) out_.push_back(',');
  need_comma_ = false;
}

void JsonWriter::begin_object() {
  separator();
  out_.push_back('{');
}

void JsonWriter::end_object() {
  out_.push_back('}');
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  separator();
  out_.push_back('[');
}

void JsonWriter::end_array() {
  out_.push_back(']');
  need_comma_ = true;
}

void JsonWriter::key(std::string_view name) {
  separator();
  out_.push_back('"');
  raw(json_escape(name));
  raw("\":");
}

void JsonWriter::value(std::string_view text) {
  separator();
  out_.push_back('"');
  raw(json_escape(text));
  out_.push_back('"');
  need_comma_ = true;
}

void JsonWriter::value_raw(std::string_view json) {
  separator();
  raw(json);
  need_comma_ = true;
}

void JsonWriter::value(bool b) {
  separator();
  raw(b ? "true" : "false");
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t v) {
  separator();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  raw(buf);
  need_comma_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  separator();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  raw(buf);
  need_comma_ = true;
}

void JsonWriter::value(double v) {
  // Integral values (counter reads, picosecond durations converted to
  // double) print as integers; everything else through one fixed format.
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    value(static_cast<std::int64_t>(v));
    return;
  }
  separator();
  char buf[40];
  if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "null");  // JSON has no inf/nan
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  raw(buf);
  need_comma_ = true;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace tsn::telemetry
