// Minimal deterministic JSON writer.
//
// Export determinism is a hard requirement (test_integration_e2e.cpp pins
// byte-identical output for identical seeds), so every number is formatted
// through one code path: integers verbatim, non-integral doubles with a
// fixed "%.9g". Containers are emitted either in program order (vectors) or
// sorted order (std::map) by the callers — never unordered_map iteration.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tsn::telemetry {

class JsonWriter {
 public:
  // Object/array structure. key() must precede every value inside an object.
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view{text}); }
  void value(bool b);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(double v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  // Splices pre-formatted JSON (e.g. a number formatted earlier) verbatim.
  void value_raw(std::string_view json);

  // key + value in one call.
  template <typename T>
  void field(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

 private:
  void separator();
  void raw(std::string_view text);

  std::string out_;
  // True when the next element at the current nesting level needs a comma.
  bool need_comma_ = false;
};

[[nodiscard]] std::string json_escape(std::string_view text);

// Writes `content` to `path` (truncating). Returns false on I/O failure.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace tsn::telemetry
