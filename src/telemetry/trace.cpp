#include "telemetry/trace.hpp"

#include <utility>

#include "core/check.hpp"
#include "telemetry/json.hpp"

namespace tsn::telemetry {

namespace detail {
thread_local TraceSink* g_sink = nullptr;
thread_local TraceId g_trace = 0;
}  // namespace detail

std::string_view span_kind_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kLink: return "link";
    case SpanKind::kSwitch: return "switch";
    case SpanKind::kL1sFanout: return "l1s_fanout";
    case SpanKind::kL1sMerge: return "l1s_merge";
    case SpanKind::kNicRx: return "nic_rx";
    case SpanKind::kSoftware: return "software";
    case SpanKind::kMatcher: return "matcher";
    case SpanKind::kWan: return "wan";
  }
  return "unknown";
}

TraceId TraceSink::begin_trace(sim::Time origin) {
  origins_.push_back(origin);
  return next_++;
}

void TraceSink::record(Span span) {
  TSN_ASSERT(span.trace != 0 && span.trace < next_, "span for unknown trace id");
  TSN_DCHECK(span.t_out >= span.t_in, "span ends before it starts");
  spans_.push_back(std::move(span));
}

std::vector<Span> TraceSink::trace(TraceId id) const {
  std::vector<Span> out;
  for (const Span& s : spans_) {
    if (s.trace == id) out.push_back(s);
  }
  return out;
}

sim::Time TraceSink::origin(TraceId id) const {
  TSN_ASSERT(id != 0 && id < next_, "origin of unknown trace id");
  return origins_[id - 1];
}

void TraceSink::clear() noexcept {
  spans_.clear();
  origins_.clear();
  next_ = 1;
}

std::string TraceSink::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "tsn-trace-v1");
  w.field("trace_count", static_cast<std::uint64_t>(trace_count()));
  w.key("traces");
  w.begin_array();
  for (TraceId id = 1; id < next_; ++id) {
    w.begin_object();
    w.field("id", static_cast<std::uint64_t>(id));
    w.field("origin_ps", origins_[id - 1].picos());
    w.key("spans");
    w.begin_array();
    for (const Span& s : spans_) {
      if (s.trace != id) continue;
      w.begin_object();
      w.field("entity", s.entity);
      w.field("kind", span_kind_name(s.kind));
      w.field("t_in_ps", s.t_in.picos());
      w.field("t_out_ps", s.t_out.picos());
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace tsn::telemetry
