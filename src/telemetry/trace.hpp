// Hop-by-hop trace-span recording (§2, §4).
//
// The paper's central analyses are latency *decompositions*: Design 1's
// tick-to-trade is 12 commodity-switch hops plus 3 software hops; Design 3's
// L1S adds ~6 ns per fan-out and ~50 ns per merge. To reconstruct those
// decompositions from a live simulation rather than from the analytical
// model, packets carry a trace id and every instrumented hop (link, NIC,
// switch, L1S stage, software process, exchange matcher) appends a
// `{entity, kind, t_in, t_out}` span to the run's `TraceSink`.
//
// Span boundary convention — spans *tile* the timeline exactly:
//
//   kLink      [sender hand-off (incl. queue wait) .. wire arrival at dst]
//   kSwitch    [frame rx at switch .. egress hand-off to the out link]
//   kSoftware  [wire arrival at the host NIC .. out-frame hand-off]
//   kMatcher   [order wire arrival at exchange .. match complete]
//
// so that for a linear path, span[i].t_out == span[i+1].t_in and the sum of
// span durations equals the end-to-end latency at picosecond resolution
// (asserted in test_telemetry.cpp). kNicRx spans (NIC arrival .. handler
// run) are auxiliary: they sit *inside* the enclosing kSoftware span and are
// excluded from tiling. kL1sFanout/kL1sMerge tile like kSwitch.
//
// Trace context is ambient (a per-thread current trace id plus a per-thread
// sink pointer) — sound because each simulation shard is single-threaded on
// its worker and events never interleave mid-callback. Instrumentation is
// compiled in unconditionally but costs one pointer null-check when no sink
// is attached, so hot-path microbenches do not regress (X1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/domain.hpp"
#include "sim/time.hpp"

namespace tsn::telemetry {

// 0 means "untraced"; real ids are handed out by TraceSink::begin_trace.
using TraceId = std::uint64_t;

enum class SpanKind : std::uint8_t {
  kLink,       // cable: queueing + serialization + propagation
  kSwitch,     // commodity (L2/L3) switch hop
  kL1sFanout,  // layer-1 switch fan-out stage
  kL1sMerge,   // layer-1 switch merge stage
  kNicRx,      // NIC arrival to software handler (auxiliary, nested)
  kSoftware,   // application hop: normalizer / strategy / gateway
  kMatcher,    // exchange matching engine
  kWan,        // metro/long-haul segment
};

[[nodiscard]] std::string_view span_kind_name(SpanKind kind) noexcept;

struct Span {
  TraceId trace = 0;
  std::string entity;  // e.g. "leaf0", "cable:leaf0[2]->spine0", "strategy0"
  SpanKind kind = SpanKind::kLink;
  sim::Time t_in;
  sim::Time t_out;

  [[nodiscard]] sim::Duration duration() const noexcept { return t_out - t_in; }
  // kNicRx spans nest inside kSoftware spans and do not participate in the
  // end-to-end tiling sum.
  [[nodiscard]] bool tiles() const noexcept { return kind != SpanKind::kNicRx; }
};

// Per-run span store. Records arrive in simulation order (the engine is
// deterministic), so identical seeds yield identical span sequences and
// byte-identical JSON.
class TraceSink {
 public:
  // Starts a new trace whose origin (first span's t_in) is `origin`.
  [[nodiscard]] TraceId begin_trace(sim::Time origin);
  void record(Span span);

  [[nodiscard]] const std::vector<Span>& spans() const noexcept { return spans_; }
  [[nodiscard]] std::uint64_t trace_count() const noexcept { return next_ - 1; }
  // All spans of one trace, in record order.
  [[nodiscard]] std::vector<Span> trace(TraceId id) const;
  [[nodiscard]] sim::Time origin(TraceId id) const;

  // Deterministic export: {"schema":"tsn-trace-v1","traces":[...]}.
  [[nodiscard]] std::string to_json() const;

  void clear() noexcept;

 private:
  std::vector<Span> spans_;
  std::vector<sim::Time> origins_;  // index = trace id - 1
  TraceId next_ = 1;
};

namespace detail {
// Ambient trace context, one per thread: a shard's events never interleave
// mid-callback on their worker thread, and shards on different workers get
// independent context (see sim/sharded_engine.hpp).
extern thread_local TraceSink* g_sink;
extern thread_local TraceId g_trace;
}  // namespace detail

[[nodiscard]] inline TraceSink* sink() noexcept { return detail::g_sink; }
[[nodiscard]] inline TraceId current_trace() noexcept { return detail::g_trace; }
[[nodiscard]] inline bool tracing_enabled() noexcept { return detail::g_sink != nullptr; }

// The one call instrumented hops make. No sink or an untraced packet: one
// predictable branch, no allocation.
inline void record_span(TraceId trace, std::string_view entity, SpanKind kind, sim::Time t_in,
                        sim::Time t_out) {
  if (detail::g_sink == nullptr || trace == 0) return;
  detail::g_sink->record(Span{trace, std::string{entity}, kind, t_in, t_out});
}

// RAII: attaches `sink` as the process-wide trace sink for its lifetime.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink& sink) noexcept : prev_(detail::g_sink) {
    detail::g_sink = &sink;
  }
  ~ScopedTraceSink() { detail::g_sink = prev_; }
  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceSink* prev_;
};

// Shard-local trace sink: install on a Domain (`domain.set_context(&ctx)`)
// and the engine swaps this sink into the ambient thread-local around every
// batch of events that shard executes — on whichever thread runs it. This
// is how sharded runs keep spans: a ScopedTraceSink on the coordinating
// thread never follows a domain onto a windowed-mode worker, so spans
// recorded there used to be dropped. With one context per domain, golden
// and windowed runs deposit identical per-shard span sequences (windowed
// mode may interleave *across* shards differently, which is why the
// cross-mode contract compares per-sink contents, not a global stream).
class DomainTraceContext final : public sim::ShardContext {
 public:
  explicit DomainTraceContext(TraceSink& sink) noexcept : sink_(&sink) {}
  void enter() noexcept override {
    prev_ = detail::g_sink;
    detail::g_sink = sink_;
  }
  void leave() noexcept override { detail::g_sink = prev_; }

 private:
  TraceSink* sink_;
  TraceSink* prev_ = nullptr;
};

// RAII: sets the ambient trace id (what PacketFactory stamps onto new
// frames). TraceScope{0} deliberately *suppresses* tracing for a scope —
// used for TCP acks and retransmissions so a trace stays a linear chain.
class TraceScope {
 public:
  explicit TraceScope(TraceId id) noexcept : prev_(detail::g_trace) { detail::g_trace = id; }
  ~TraceScope() { detail::g_trace = prev_; }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceId prev_;
};

}  // namespace tsn::telemetry
