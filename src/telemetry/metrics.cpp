#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/check.hpp"
#include "telemetry/json.hpp"

namespace tsn::telemetry {

void Histogram::add(double value) {
  samples_.push_back(value);
  sorted_ = false;
  sum_ += value;
  sum_sq_ += value * value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  for (double v : other.samples_) add(v);
}

void Histogram::clear() noexcept {
  samples_.clear();
  sorted_ = true;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

double Histogram::min() const noexcept { return samples_.empty() ? 0.0 : min_; }
double Histogram::max() const noexcept { return samples_.empty() ? 0.0 : max_; }

double Histogram::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::stddev() const noexcept {
  const auto n = static_cast<double>(samples_.size());
  if (n < 2) return 0.0;
  const double m = sum_ / n;
  const double var = (sum_sq_ - n * m * m) / (n - 1);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Histogram::percentile(double p) const {
  // Range is checked before the empty short-circuit so that an out-of-range
  // p is rejected consistently, empty or not.
  if (p < 0.0 || p > 100.0) throw std::invalid_argument{"percentile out of range"};
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p == 0.0) return samples_.front();
  const auto n = samples_.size();
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  TSN_DCHECK(rank >= 1 && rank <= n, "nearest-rank index out of bounds");
  return samples_[rank - 1];
}

std::string Histogram::table_row() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%10.0f %10.1f %10.0f %10.0f", min(), mean(), median(), max());
  return buf;
}

WindowedCounter::WindowedCounter(sim::Time origin, sim::Duration window)
    : origin_(origin), window_(window) {
  if (window.picos() <= 0) throw std::invalid_argument{"window must be positive"};
}

void WindowedCounter::record(sim::Time at, std::uint64_t count) {
  if (at < origin_) return;
  const auto index = static_cast<std::size_t>((at - origin_) / window_);
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
  counts_[index] += count;
}

Histogram WindowedCounter::stats(bool include_empty) const {
  Histogram out;
  for (std::uint64_t c : counts_) {
    if (c == 0 && !include_empty) continue;
    out.add(static_cast<double>(c));
  }
  return out;
}

void LatencyTracker::record_cause(std::uint64_t cause_id, sim::Time at) {
  causes_[cause_id] = at;
}

bool LatencyTracker::record_effect(std::uint64_t cause_id, sim::Time at) {
  const auto it = causes_.find(cause_id);
  if (it == causes_.end()) {
    ++unmatched_;
    return false;
  }
  samples_.add((at - it->second).nanos());
  return true;
}

Counter& Registry::counter(const std::string& name) { return counters_[name]; }
Histogram& Registry::histogram(const std::string& name) { return histograms_[name]; }

void Registry::histogram_ref(const std::string& name, const Histogram& h) {
  histogram_refs_[name] = &h;
}

void Registry::gauge(const std::string& name, GaugeFn fn) { gauges_[name] = std::move(fn); }

const Counter* Registry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  if (const auto it = histograms_.find(name); it != histograms_.end()) return &it->second;
  if (const auto it = histogram_refs_.find(name); it != histogram_refs_.end()) {
    return it->second;
  }
  return nullptr;
}

double Registry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second();
}

std::string Registry::to_json(sim::Time at) const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "tsn-metrics-v1");
  w.field("at_ps", at.picos());
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c.value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, fn] : gauges_) w.field(name, fn());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  // Owned and referenced histograms export identically, merged into one
  // name-sorted object.
  std::map<std::string, const Histogram*> all;
  for (const auto& [name, h] : histograms_) all.emplace(name, &h);
  for (const auto& [name, h] : histogram_refs_) all.emplace(name, h);
  for (const auto& [name, h] : all) {
    w.key(name);
    w.begin_object();
    w.field("count", static_cast<std::uint64_t>(h->count()));
    w.field("min", h->min());
    w.field("mean", h->mean());
    w.field("p50", h->percentile(50.0));
    w.field("p99", h->percentile(99.0));
    w.field("max", h->max());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace tsn::telemetry
