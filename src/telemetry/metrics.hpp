// The metrics vocabulary: one Counter / Histogram / gauge API for every sim
// entity, plus a Registry that names them and snapshots deterministically.
//
// Histogram and WindowedCounter began life as sim::SampleStats /
// sim::WindowedCounter (sim/stats.hpp now aliases them for existing call
// sites); LatencyTracker began life in capture/tap.hpp. Folding them here
// gives switches, mroute tables, WAN links, sessions and capture appliances
// a single registration surface (`register_metrics`) and a single export
// path (`Registry::to_json`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace tsn::telemetry {

// Accumulates samples and reports min/avg/median/max and percentiles.
// Samples are retained (the workloads here are at most a few million
// samples), so percentiles are exact.
class Histogram {
 public:
  void add(double value);
  // Appends every sample of `other` (exact pooled statistics).
  void merge(const Histogram& other);
  void clear() noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  // Exact percentile by nearest-rank. Sorts lazily. Edge cases are defined
  // and pinned in test_sim_stats.cpp:
  //   - p outside [0, 100] throws std::invalid_argument, empty or not;
  //   - an empty histogram returns 0.0 for any in-range p (matching
  //     min()/max()/mean() on empty);
  //   - p == 0 returns the smallest sample, p == 100 the largest;
  //   - a single-sample histogram returns that sample for every p.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  // "min avg median max" row matching the layout of the paper's Table 1.
  [[nodiscard]] std::string table_row() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// A monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

// Fixed-width time-window counter: counts events per window of a given
// duration, for reproducing Figure 2(b) (1 s windows) and 2(c) (100 us
// windows).
class WindowedCounter {
 public:
  WindowedCounter(sim::Time origin, sim::Duration window);

  void record(sim::Time at, std::uint64_t count = 1);

  [[nodiscard]] sim::Duration window() const noexcept { return window_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }

  // Statistics over the non-empty range of windows (or all windows when
  // include_empty is true).
  [[nodiscard]] Histogram stats(bool include_empty = false) const;

 private:
  sim::Time origin_;
  sim::Duration window_;
  std::vector<std::uint64_t> counts_;
};

// Matches cause/effect event pairs and accumulates latency samples — the
// paper's strategy-latency measurement (order-out time minus most recent
// input-event time), as computed by a capture appliance.
class LatencyTracker {
 public:
  void record_cause(std::uint64_t cause_id, sim::Time at);
  // Records the effect and, if the cause is known, adds a latency sample
  // (in nanoseconds). Returns true when matched.
  bool record_effect(std::uint64_t cause_id, sim::Time at);

  [[nodiscard]] const Histogram& latencies_ns() const noexcept { return samples_; }
  [[nodiscard]] std::uint64_t unmatched_effects() const noexcept { return unmatched_; }

 private:
  std::unordered_map<std::uint64_t, sim::Time> causes_;
  Histogram samples_;
  std::uint64_t unmatched_ = 0;
};

// Named metrics for one run. Entities register counters/histograms they own
// (references stay valid for the registry's lifetime: node-based map) or
// gauges — callbacks sampled at snapshot time, which lets existing stats
// structs (LinkStats, SwitchStats, MrouteStats, ...) be exported without
// rewriting them. Names sort lexicographically in the export, so snapshots
// of identical runs are byte-identical.
class Registry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);
  // Exports an entity-owned histogram without copying it; `h` must outlive
  // the registry. Appears alongside owned histograms in the snapshot.
  void histogram_ref(const std::string& name, const Histogram& h);
  using GaugeFn = std::function<double()>;
  void gauge(const std::string& name, GaugeFn fn);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;
  // Samples a gauge now; 0.0 when absent.
  [[nodiscard]] double gauge_value(const std::string& name) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + histograms_.size() + gauges_.size();
  }

  // Deterministic snapshot at simulation time `at`:
  // {"schema":"tsn-metrics-v1","at_ps":...,"counters":{...},"gauges":{...},
  //  "histograms":{name:{count,min,mean,p50,p99,max},...}}.
  [[nodiscard]] std::string to_json(sim::Time at) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, const Histogram*> histogram_refs_;
  std::map<std::string, GaugeFn> gauges_;
};

}  // namespace tsn::telemetry
