#include "trading/compliance.hpp"

#include <algorithm>
#include <vector>

namespace tsn::trading {

void MarketStateMonitor::set_quote(std::uint8_t venue, const proto::Symbol& symbol,
                                   proto::Side side, proto::Price price) {
  ++stats_.quote_updates;
  SymbolState& state = symbols_[symbol];
  VenueQuote& quote = state.venues[venue];
  if (side == proto::Side::kBuy) {
    quote.bid = price;
  } else {
    quote.ask = price;
  }
  refresh_transitions(state, symbol);
}

void MarketStateMonitor::on_update(const proto::norm::Update& update) {
  using proto::norm::UpdateKind;
  switch (update.kind) {
    case UpdateKind::kBboUpdate:
      set_quote(update.exchange_id, update.symbol, update.side,
                update.quantity == 0 ? 0 : update.price);
      break;
    case UpdateKind::kTradePrint: {
      // Trade-through check: a print strictly outside the prevailing NBBO.
      const auto best = nbbo(update.symbol);
      if (best && best->two_sided() && !best->locked() && !best->crossed()) {
        if (update.price < best->bid || update.price > best->ask) {
          ++stats_.trade_throughs;
        }
      }
      break;
    }
    default:
      break;  // depth changes below the top don't move displayed quotes
  }
}

std::optional<Nbbo> MarketStateMonitor::nbbo_of(const SymbolState& state) {
  Nbbo best;
  // The strict comparisons mean the first venue seen wins price ties, so
  // venue attribution would follow hash order; walk ids sorted instead.
  std::vector<std::uint8_t> order;
  order.reserve(state.venues.size());
  // tsn-lint: allow(unordered-iter) order-independent: ids sorted before the scan below
  for (const auto& [venue, quote] : state.venues) order.push_back(venue);
  std::sort(order.begin(), order.end());
  for (const std::uint8_t venue : order) {
    const VenueQuote& quote = state.venues.at(venue);
    if (quote.bid > 0 && (best.bid == 0 || quote.bid > best.bid)) {
      best.bid = quote.bid;
      best.bid_venue = venue;
    }
    if (quote.ask > 0 && (best.ask == 0 || quote.ask < best.ask)) {
      best.ask = quote.ask;
      best.ask_venue = venue;
    }
  }
  if (best.bid == 0 && best.ask == 0) return std::nullopt;
  return best;
}

void MarketStateMonitor::refresh_transitions(SymbolState& state, const proto::Symbol&) {
  const auto best = nbbo_of(state);
  const bool locked = best && best->locked();
  const bool crossed = best && best->crossed();
  if (locked && !state.was_locked) ++stats_.locked_transitions;
  if (crossed && !state.was_crossed) ++stats_.crossed_transitions;
  state.was_locked = locked;
  state.was_crossed = crossed;
}

std::optional<Nbbo> MarketStateMonitor::nbbo(const proto::Symbol& symbol) const {
  const auto it = symbols_.find(symbol);
  if (it == symbols_.end()) return std::nullopt;
  return nbbo_of(it->second);
}

VenueQuote MarketStateMonitor::venue_quote(std::uint8_t venue,
                                           const proto::Symbol& symbol) const {
  const auto it = symbols_.find(symbol);
  if (it == symbols_.end()) return {};
  const auto venue_it = it->second.venues.find(venue);
  return venue_it == it->second.venues.end() ? VenueQuote{} : venue_it->second;
}

bool MarketStateMonitor::is_locked(const proto::Symbol& symbol) const {
  const auto best = nbbo(symbol);
  return best && best->locked();
}

bool MarketStateMonitor::is_crossed(const proto::Symbol& symbol) const {
  const auto best = nbbo(symbol);
  return best && best->crossed();
}

bool MarketStateMonitor::quote_would_lock_or_cross(const proto::Symbol& symbol,
                                                   proto::Side side,
                                                   proto::Price price) const {
  const auto best = nbbo(symbol);
  if (!best) return false;
  if (side == proto::Side::kBuy) {
    return best->ask > 0 && price >= best->ask;
  }
  return best->bid > 0 && price <= best->bid;
}

proto::Price MarketStateMonitor::clamp_to_compliant(const proto::Symbol& symbol,
                                                    proto::Side side, proto::Price price,
                                                    proto::Price tick) const {
  if (!quote_would_lock_or_cross(symbol, side, price)) return price;
  const auto best = nbbo(symbol);
  if (side == proto::Side::kBuy) return best->ask - tick;
  return best->bid + tick;
}

}  // namespace tsn::trading
