#include "trading/risk.hpp"

#include <cmath>

namespace tsn::trading {

std::int64_t RiskEngine::projected_symbol_exposure(const proto::Symbol& symbol,
                                                   std::int64_t delta) const noexcept {
  // Worst case is one-sided: either every working buy fills and no sell
  // does (long exposure) or vice versa (short exposure). Netting buys
  // against sells would understate both.
  std::int64_t position = 0;
  if (const auto it = positions_.find(symbol); it != positions_.end()) {
    position = it->second;
  }
  std::int64_t open_buys = delta > 0 ? delta : 0;
  std::int64_t open_sells = delta < 0 ? -delta : 0;
  // tsn-lint: allow(unordered-iter) order-independent: commutative integer sums
  for (const auto& [id, order] : open_) {
    if (order.symbol != symbol) continue;
    if (order.side == proto::Side::kBuy) {
      open_buys += static_cast<std::int64_t>(order.remaining);
    } else {
      open_sells += static_cast<std::int64_t>(order.remaining);
    }
  }
  const std::int64_t long_exposure = position + open_buys;
  const std::int64_t short_exposure = position - open_sells;
  return std::llabs(long_exposure) >= std::llabs(short_exposure) ? long_exposure
                                                                 : short_exposure;
}

RiskEngine::Verdict RiskEngine::check_new_order(const proto::boe::NewOrder& order) {
  if (order.quantity > limits_.max_order_quantity) {
    ++stats_.rejected_size;
    return Verdict::kOrderTooLarge;
  }
  const std::int64_t notional =
      static_cast<std::int64_t>(order.quantity) * (order.price < 0 ? -order.price : order.price);
  if (notional > limits_.max_order_notional) {
    ++stats_.rejected_notional;
    return Verdict::kNotionalTooLarge;
  }
  if (open_.size() >= limits_.max_open_orders) {
    ++stats_.rejected_open_orders;
    return Verdict::kTooManyOpenOrders;
  }
  const std::int64_t delta = order.side == proto::Side::kBuy
                                 ? static_cast<std::int64_t>(order.quantity)
                                 : -static_cast<std::int64_t>(order.quantity);
  const std::int64_t projected = projected_symbol_exposure(order.symbol, delta);
  if (std::llabs(projected) > limits_.max_symbol_position) {
    ++stats_.rejected_symbol_position;
    return Verdict::kSymbolPositionLimit;
  }
  // Firm gross: current gross minus this symbol's |position| plus the
  // projected |exposure| (worst case).
  std::int64_t gross = firm_gross_position();
  if (const auto it = positions_.find(order.symbol); it != positions_.end()) {
    gross -= std::llabs(it->second);
  }
  gross += std::llabs(projected);
  if (gross > limits_.max_firm_gross_position) {
    ++stats_.rejected_firm_position;
    return Verdict::kFirmPositionLimit;
  }
  ++stats_.accepted;
  open_.emplace(order.client_order_id, OpenOrder{order.symbol, order.side, order.quantity});
  return Verdict::kAccept;
}

void RiskEngine::on_fill(proto::OrderId client_order_id, proto::Quantity quantity,
                         proto::Quantity leaves_quantity) {
  const auto it = open_.find(client_order_id);
  if (it == open_.end()) return;
  OpenOrder& order = it->second;
  const std::int64_t signed_qty = order.side == proto::Side::kBuy
                                      ? static_cast<std::int64_t>(quantity)
                                      : -static_cast<std::int64_t>(quantity);
  positions_[order.symbol] += signed_qty;
  order.remaining = leaves_quantity;
  if (leaves_quantity == 0) open_.erase(it);
}

void RiskEngine::on_terminal(proto::OrderId client_order_id) {
  open_.erase(client_order_id);
}

std::int64_t RiskEngine::position(const proto::Symbol& symbol) const noexcept {
  const auto it = positions_.find(symbol);
  return it == positions_.end() ? 0 : it->second;
}

std::int64_t RiskEngine::firm_gross_position() const noexcept {
  std::int64_t gross = 0;
  // tsn-lint: allow(unordered-iter) order-independent: commutative integer sum
  for (const auto& [symbol, position] : positions_) gross += std::llabs(position);
  return gross;
}

}  // namespace tsn::trading
