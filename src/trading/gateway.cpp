#include "trading/gateway.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/trace.hpp"

namespace tsn::trading {

Gateway::Gateway(sim::Scheduler& engine, GatewayConfig config)
    : engine_(engine),
      config_(std::move(config)),
      risk_(config_.risk_limits) {
  host_ = std::make_unique<net::Host>(engine_, config_.name, config_.software_latency);
  client_nic_ = &host_->add_nic("clients", config_.client_mac, config_.client_ip);
  upstream_nic_ = &host_->add_nic("exchange", config_.upstream_mac, config_.upstream_ip);
  client_stack_ = std::make_unique<net::NetStack>(*client_nic_);
  upstream_stack_ = std::make_unique<net::NetStack>(*upstream_nic_);

  client_stack_->listen_tcp(config_.listen_port,
                            [this](net::TcpEndpoint& endpoint) { on_accept(endpoint); });
}

Gateway::~Gateway() = default;

std::uint32_t Gateway::upstream_session_id() const noexcept {
  // Derive a deployment-unique id when the config leaves it at 0: two
  // gateways sharing an exchange must not collide on the same logical
  // session (the exchange would treat the second login as a takeover).
  if (config_.session_id != 0) return config_.session_id;
  return config_.upstream_ip.value();
}

void Gateway::connect_upstream() {
  // Endpoint rotation: the initial connect and the first retry target the
  // primary (a transient blip should not migrate the session); from the
  // second retry on, walk primary -> backups -> primary so a promoted
  // standby is reached within (1 + backups) backoff steps.
  UpstreamEndpoint target{config_.exchange_mac, config_.exchange_ip, config_.exchange_port};
  upstream_endpoint_index_ = 0;
  if (!config_.backup_exchanges.empty() && backoff_attempt_ > 1) {
    const std::size_t ring = 1 + config_.backup_exchanges.size();
    upstream_endpoint_index_ = static_cast<std::size_t>(backoff_attempt_ - 1) % ring;
    if (upstream_endpoint_index_ > 0) {
      target = config_.backup_exchanges[upstream_endpoint_index_ - 1];
    }
  }
  upstream_ = &upstream_stack_->connect_tcp(target.mac, target.ip, target.port, 0);
  upstream_->set_data_handler([this](std::span<const std::byte> bytes, sim::Time) {
    on_upstream_bytes(bytes);
  });
  upstream_->set_closed_handler([this, self = upstream_](net::TcpCloseReason reason) {
    // A replaced leg can die late (e.g. its FIN-wait retransmits exhaust
    // after we already reconnected); that is history, not a new outage.
    if (self != upstream_) return;
    on_upstream_closed(reason);
  });
  set_upstream_state(UpstreamState::kLoggingIn);
  const auto login = proto::boe::encode(
      proto::boe::LoginRequest{upstream_session_id(), config_.login_token}, upstream_seq_++);
  upstream_->send(login);
  last_upstream_tx_ = engine_.now();
  arm_login_timeout();
}

void Gateway::arm_login_timeout() {
  if (config_.reconnect_response_timeout <= sim::Duration::zero()) return;
  engine_.schedule_in(config_.reconnect_response_timeout, [this, self = upstream_] {
    // Guard on endpoint identity: a timeout armed for a leg that already
    // died (and was replaced) must not abort its successor.
    if (self != upstream_ || upstream_ == nullptr) return;
    if (upstream_state_ != UpstreamState::kLoggingIn &&
        upstream_state_ != UpstreamState::kReplaying) {
      return;
    }
    ++stats_.login_timeouts;
    kill_upstream();  // closed handler fires and the backoff machine resumes
  });
}

void Gateway::start() {
  connect_upstream();
  if (config_.heartbeat_interval > sim::Duration::zero()) {
    engine_.schedule_in(config_.heartbeat_interval, [this] { heartbeat_tick(); });
  }
}

void Gateway::kill_upstream() {
  if (upstream_ == nullptr || upstream_->state() == net::TcpState::kClosed) return;
  upstream_->abort();  // closed handler fires with kAborted
}

void Gateway::on_upstream_closed(net::TcpCloseReason /*reason*/) {
  ++stats_.disconnects;
  last_disconnect_at_ = engine_.now();
  // A peer FIN leaves the endpoint half-open with retransmit timers still
  // armed; abort it so the flow reaches kClosed and reap_closed() can
  // collect it. Re-notification is suppressed by the endpoint itself.
  if (upstream_ != nullptr) upstream_->abort();
  upstream_logged_in_ = false;
  // Orders sent but never answered are now in an unknown state; replay (or
  // resubmission under the dedupe key) resolves them after re-login.
  // tsn-lint: allow(unordered-iter) order-independent: pure counting sweep
  for (auto& [upstream_id, route] : routes_) {
    if (route.sent && !route.acked) ++stats_.orders_marked_unknown;
  }
  schedule_reconnect();
}

void Gateway::schedule_reconnect() {
  if (!config_.reconnect_enabled || backoff_attempt_ >= config_.reconnect_max_attempts) {
    set_upstream_state(UpstreamState::kFailed);
    if (config_.reconnect_enabled) ++stats_.reconnects_given_up;
    return;
  }
  set_upstream_state(UpstreamState::kBackoff);
  ++backoff_attempt_;
  ++stats_.reconnect_attempts;
  // Exponential backoff, capped, with deterministic +/- jitter so a fleet
  // of gateways reconnecting after a shared outage doesn't thundering-herd
  // the exchange — yet a fixed seed replays byte-identically.
  double scale = 1.0;
  for (int i = 1; i < backoff_attempt_; ++i) scale *= config_.reconnect_backoff_multiplier;
  double picos = static_cast<double>(config_.reconnect_backoff_initial.picos()) * scale;
  picos = std::min(picos, static_cast<double>(config_.reconnect_backoff_max.picos()));
  picos *= reconnect_jitter_factor();
  const auto backoff = sim::Duration{static_cast<std::int64_t>(picos)};
  engine_.schedule_in(backoff, [this] { reconnect_now(); });
}

double Gateway::reconnect_jitter_factor() noexcept {
  // Stateless draw keyed on (seed, session id, outage number, attempt):
  // every gateway's jitter is a pure function of who it is and where it is
  // in its own reconnect history. A storm of re-homing gateways therefore
  // replays byte-identically regardless of the order their backoff timers
  // happen to fire — a shared RNG stream would make each draw depend on
  // every *other* gateway's wake order.
  std::uint64_t h = config_.reconnect_jitter_seed;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(upstream_session_id());
  mix(stats_.disconnects);
  mix(static_cast<std::uint64_t>(backoff_attempt_));
  sim::Rng rng{h};
  return 1.0 + config_.reconnect_jitter * (2.0 * rng.uniform() - 1.0);
}

void Gateway::reconnect_now() {
  // Scheduled event: no endpoint callback is on the stack, so reaping the
  // dead flow (destroying its endpoint) is safe here.
  upstream_ = nullptr;
  upstream_stack_->reap_closed();
  upstream_parser_ = proto::boe::StreamParser{};
  connect_upstream();
}

void Gateway::heartbeat_tick() {
  if (upstream_logged_in_ && upstream_state_ == UpstreamState::kReady && upstream_ != nullptr &&
      upstream_->state() == net::TcpState::kEstablished &&
      engine_.now() - last_upstream_tx_ >= config_.heartbeat_interval) {
    upstream_->send(proto::boe::encode(proto::boe::Heartbeat{}, upstream_seq_++));
    last_upstream_tx_ = engine_.now();
    ++stats_.heartbeats_sent;
  }
  engine_.schedule_in(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void Gateway::on_accept(net::TcpEndpoint& endpoint) {
  ++stats_.sessions_accepted;
  auto session = std::make_unique<StrategySession>();
  session->endpoint = &endpoint;
  StrategySession* raw = session.get();
  sessions_.push_back(std::move(session));
  endpoint.set_data_handler([this, raw](std::span<const std::byte> bytes, sim::Time arrival) {
    // Wire arrival at the client NIC: start of the gateway's software span
    // for any order this batch of bytes carries.
    current_client_arrival_ = arrival;
    raw->parser.feed(bytes);
    while (auto decoded = raw->parser.next()) on_client_message(*raw, decoded->message);
  });
}

void Gateway::send_to_session(StrategySession& session, const proto::boe::Message& message) {
  session.endpoint->send(proto::boe::encode(message, session.tx_seq++));
}

void Gateway::transmit_upstream(const proto::boe::Message& message) {
  upstream_->send(proto::boe::encode(message, upstream_seq_++));
  last_upstream_tx_ = engine_.now();
  // A NewOrder handed to TCP is now in flight: if the session dies before a
  // response arrives, this order is in the unknown set reconciled on resume.
  if (const auto* order = std::get_if<proto::boe::NewOrder>(&message)) {
    const auto it = routes_.find(order->client_order_id);
    if (it != routes_.end()) it->second.sent = true;
  }
}

void Gateway::shed_upstream(const proto::boe::Message& message) {
  using namespace proto::boe;
  // The pending queue is full: reject the message back to its strategy
  // session rather than queueing unboundedly (the §2 gateway must degrade
  // loudly, not grow until the burst ends).
  if (const auto* order = std::get_if<NewOrder>(&message)) {
    ++stats_.orders_shed;
    const auto it = routes_.find(order->client_order_id);
    if (it != routes_.end()) {
      risk_.on_terminal(order->client_order_id);  // release the reservation
      send_to_session(*it->second.session,
                      OrderRejected{it->second.client_id, RejectReason::kGatewayBackpressure});
      forward_ids_[it->second.session].erase(it->second.client_id);
      routes_.erase(it);
    }
    return;
  }
  proto::OrderId upstream_id = 0;
  if (const auto* cancel = std::get_if<CancelOrder>(&message)) {
    upstream_id = cancel->client_order_id;
  } else if (const auto* modify = std::get_if<ModifyOrder>(&message)) {
    upstream_id = modify->client_order_id;
  }
  ++stats_.cancels_shed;
  const auto it = routes_.find(upstream_id);
  if (it != routes_.end()) {
    // The order itself stays live (and routed); only this request is shed.
    send_to_session(*it->second.session,
                    CancelRejected{it->second.client_id, RejectReason::kGatewayBackpressure});
  }
}

void Gateway::send_upstream(const proto::boe::Message& message) {
  if (!upstream_logged_in_ || upstream_state_ != UpstreamState::kReady) {
    if (pending_upstream_.size() >= config_.max_pending_upstream) {
      shed_upstream(message);
      return;
    }
    pending_upstream_.push_back(message);
    pending_upstream_hwm_ = std::max(pending_upstream_hwm_, pending_upstream_.size());
    return;
  }
  transmit_upstream(message);
}

void Gateway::flush_pending_upstream() {
  while (!pending_upstream_.empty()) {
    transmit_upstream(pending_upstream_.front());
    pending_upstream_.pop_front();
  }
}

void Gateway::on_client_message(StrategySession& session, const proto::boe::Message& message) {
  using namespace proto::boe;
  if (std::get_if<LoginRequest>(&message) != nullptr) {
    session.logged_in = true;
    send_to_session(session, LoginAccepted{});
    return;
  }
  if (std::get_if<Heartbeat>(&message) != nullptr) {
    send_to_session(session, Heartbeat{});
    return;
  }
  if (!session.logged_in) {
    send_to_session(session, LoginRejected{RejectReason::kNotLoggedIn});
    return;
  }
  if (const auto* order = std::get_if<NewOrder>(&message)) {
    const proto::OrderId upstream_id = next_upstream_id_++;
    NewOrder forwarded = *order;
    forwarded.client_order_id = upstream_id;
    if (config_.enable_risk_checks) {
      const auto verdict = risk_.check_new_order(forwarded);
      if (verdict != RiskEngine::Verdict::kAccept) {
        ++stats_.orders_rejected_risk;
        send_to_session(session,
                        OrderRejected{order->client_order_id, to_reject_reason(verdict)});
        return;
      }
    }
    OrderRoute route;
    route.session = &session;
    route.client_id = order->client_order_id;
    route.forwarded = forwarded;
    routes_[upstream_id] = std::move(route);
    forward_ids_[&session][order->client_order_id] = upstream_id;
    ++stats_.orders_forwarded;
    send_upstream(forwarded);
    // Risk check + id translation + forward happen in this software hop:
    // [order wire arrival at the client NIC, upstream hand-off].
    telemetry::record_span(telemetry::current_trace(), config_.name,
                           telemetry::SpanKind::kSoftware, current_client_arrival_,
                           engine_.now());
    return;
  }
  if (const auto* cancel = std::get_if<CancelOrder>(&message)) {
    const auto& ids = forward_ids_[&session];
    const auto it = ids.find(cancel->client_order_id);
    if (it == ids.end()) {
      send_to_session(session,
                      CancelRejected{cancel->client_order_id, RejectReason::kUnknownOrder});
      return;
    }
    ++stats_.cancels_forwarded;
    send_upstream(CancelOrder{it->second});
    return;
  }
  if (const auto* modify = std::get_if<ModifyOrder>(&message)) {
    const auto& ids = forward_ids_[&session];
    const auto it = ids.find(modify->client_order_id);
    if (it == ids.end()) {
      send_to_session(session,
                      CancelRejected{modify->client_order_id, RejectReason::kUnknownOrder});
      return;
    }
    ModifyOrder forwarded = *modify;
    forwarded.client_order_id = it->second;
    send_upstream(forwarded);
    return;
  }
}

void Gateway::register_metrics(telemetry::Registry& registry, const std::string& prefix) const {
  registry.gauge(prefix + ".sessions_accepted",
                 [this] { return static_cast<double>(stats_.sessions_accepted); });
  registry.gauge(prefix + ".orders_forwarded",
                 [this] { return static_cast<double>(stats_.orders_forwarded); });
  registry.gauge(prefix + ".orders_rejected_risk",
                 [this] { return static_cast<double>(stats_.orders_rejected_risk); });
  registry.gauge(prefix + ".cancels_forwarded",
                 [this] { return static_cast<double>(stats_.cancels_forwarded); });
  registry.gauge(prefix + ".responses_routed",
                 [this] { return static_cast<double>(stats_.responses_routed); });
  registry.gauge(prefix + ".orphan_responses",
                 [this] { return static_cast<double>(stats_.orphan_responses); });
  registry.gauge(prefix + ".heartbeats_sent",
                 [this] { return static_cast<double>(stats_.heartbeats_sent); });
  registry.gauge(prefix + ".upstream_state", [this] {
    return static_cast<double>(static_cast<std::uint8_t>(upstream_state_));
  });
  registry.gauge(prefix + ".disconnects",
                 [this] { return static_cast<double>(stats_.disconnects); });
  registry.gauge(prefix + ".reconnect_attempts",
                 [this] { return static_cast<double>(stats_.reconnect_attempts); });
  registry.gauge(prefix + ".reconnects_completed",
                 [this] { return static_cast<double>(stats_.reconnects_completed); });
  registry.gauge(prefix + ".last_recovery_ms", [this] {
    return static_cast<double>(last_recovery_duration_.picos()) * 1e-9;
  });
  registry.gauge(prefix + ".reconnects_given_up",
                 [this] { return static_cast<double>(stats_.reconnects_given_up); });
  registry.gauge(prefix + ".replays_requested",
                 [this] { return static_cast<double>(stats_.replays_requested); });
  registry.gauge(prefix + ".stale_responses_dropped",
                 [this] { return static_cast<double>(stats_.stale_responses_dropped); });
  registry.gauge(prefix + ".orders_marked_unknown",
                 [this] { return static_cast<double>(stats_.orders_marked_unknown); });
  registry.gauge(prefix + ".orders_resubmitted",
                 [this] { return static_cast<double>(stats_.orders_resubmitted); });
  registry.gauge(prefix + ".duplicate_resubmit_acks",
                 [this] { return static_cast<double>(stats_.duplicate_resubmit_acks); });
  registry.gauge(prefix + ".orders_shed",
                 [this] { return static_cast<double>(stats_.orders_shed); });
  registry.gauge(prefix + ".login_timeouts",
                 [this] { return static_cast<double>(stats_.login_timeouts); });
  registry.gauge(prefix + ".upstream_endpoint",
                 [this] { return static_cast<double>(upstream_endpoint_index_); });
  registry.gauge(prefix + ".cancels_shed",
                 [this] { return static_cast<double>(stats_.cancels_shed); });
  registry.gauge(prefix + ".pending_upstream_depth",
                 [this] { return static_cast<double>(pending_upstream_.size()); });
  registry.gauge(prefix + ".pending_upstream_hwm",
                 [this] { return static_cast<double>(pending_upstream_hwm_); });
}

void Gateway::route_response(proto::OrderId upstream_id, const proto::boe::Message& message,
                             bool final_state) {
  const auto it = routes_.find(upstream_id);
  if (it == routes_.end()) {
    ++stats_.orphan_responses;
    return;
  }
  ++stats_.responses_routed;
  send_to_session(*it->second.session, message);
  if (final_state) {
    forward_ids_[it->second.session].erase(it->second.client_id);
    routes_.erase(it);
  }
}

void Gateway::on_login_accepted() {
  backoff_attempt_ = 0;
  if (!ever_logged_in_) {
    // First login of the session: nothing to reconcile.
    ever_logged_in_ = true;
    upstream_logged_in_ = true;
    set_upstream_state(UpstreamState::kReady);
    flush_pending_upstream();
    return;
  }
  // Resumed session: ask for everything we missed before releasing new
  // flow. The exchange replays the journal tail and closes with a
  // SequenceReset; on_sequence_reset finishes the reconciliation.
  set_upstream_state(UpstreamState::kReplaying);
  ++stats_.replays_requested;
  upstream_->send(
      proto::boe::encode(proto::boe::ReplayRequest{last_applied_seq_}, upstream_seq_++));
  last_upstream_tx_ = engine_.now();
}

void Gateway::on_sequence_reset() {
  upstream_logged_in_ = true;
  set_upstream_state(UpstreamState::kReady);
  ++stats_.reconnects_completed;
  last_recovery_duration_ = engine_.now() - last_disconnect_at_;
  // Replay is complete, so every order the exchange ever answered is now
  // acked. What's left marked sent-but-unacked never reached the matcher:
  // resubmit it verbatim — the client-order-id dedupe upstream makes this
  // idempotent even if we're wrong.
  std::vector<proto::OrderId> to_resubmit;
  // tsn-lint: allow(unordered-iter) order-independent: ids sorted before resubmission
  for (auto& [upstream_id, route] : routes_) {
    if (route.sent && !route.acked && !route.resubmitted) to_resubmit.push_back(upstream_id);
  }
  std::sort(to_resubmit.begin(), to_resubmit.end());  // deterministic order
  for (const proto::OrderId upstream_id : to_resubmit) {
    OrderRoute& route = routes_.at(upstream_id);
    route.resubmitted = true;
    ++stats_.orders_resubmitted;
    // Risk already holds the reservation from the original forward; a
    // re-check would double-count the exposure.
    transmit_upstream(route.forwarded);
  }
  flush_pending_upstream();
}

void Gateway::on_upstream_bytes(std::span<const std::byte> bytes) {
  using namespace proto::boe;
  upstream_parser_.feed(bytes);
  while (auto decoded = upstream_parser_.next()) {
    const Message& message = decoded->message;
    // Sequenced application messages (seq > 0) can arrive twice across a
    // reconnect: once live before the death, again via replay. Apply each
    // sequence exactly once — risk and routing must not double-count.
    if (decoded->seq != 0) {
      if (decoded->seq <= last_applied_seq_) {
        ++stats_.stale_responses_dropped;
        continue;
      }
      last_applied_seq_ = decoded->seq;
    }
    if (std::get_if<LoginAccepted>(&message) != nullptr) {
      on_login_accepted();
      continue;
    }
    if (std::get_if<SequenceReset>(&message) != nullptr) {
      on_sequence_reset();
      continue;
    }
    if (const auto* reject = std::get_if<OrderRejected>(&message);
        reject != nullptr && reject->reason == RejectReason::kDuplicateOrderId) {
      const auto it = routes_.find(reject->client_order_id);
      if (it != routes_.end() && it->second.resubmitted) {
        // Our resubmission raced an order that had in fact reached the
        // exchange: the dedupe caught it. The true outcome arrives (or
        // already arrived) through the sequenced stream — swallow this.
        ++stats_.duplicate_resubmit_acks;
        it->second.acked = true;
        continue;
      }
    }
    if (const auto* ack = std::get_if<OrderAccepted>(&message)) {
      OrderAccepted translated = *ack;
      const auto it = routes_.find(ack->client_order_id);
      if (it != routes_.end()) {
        translated.client_order_id = it->second.client_id;
        it->second.acked = true;
      }
      route_response(ack->client_order_id, translated, false);
    } else if (const auto* reject = std::get_if<OrderRejected>(&message)) {
      risk_.on_terminal(reject->client_order_id);
      OrderRejected translated = *reject;
      const auto it = routes_.find(reject->client_order_id);
      if (it != routes_.end()) {
        translated.client_order_id = it->second.client_id;
        it->second.acked = true;
      }
      route_response(reject->client_order_id, translated, true);
    } else if (const auto* fill = std::get_if<Fill>(&message)) {
      risk_.on_fill(fill->client_order_id, fill->quantity, fill->leaves_quantity);
      Fill translated = *fill;
      const auto it = routes_.find(fill->client_order_id);
      if (it != routes_.end()) {
        translated.client_order_id = it->second.client_id;
        it->second.acked = true;
      }
      route_response(fill->client_order_id, translated, fill->leaves_quantity == 0);
    } else if (const auto* cancelled = std::get_if<OrderCancelled>(&message)) {
      risk_.on_terminal(cancelled->client_order_id);
      OrderCancelled translated = *cancelled;
      const auto it = routes_.find(cancelled->client_order_id);
      if (it != routes_.end()) {
        translated.client_order_id = it->second.client_id;
        it->second.acked = true;
      }
      route_response(cancelled->client_order_id, translated, true);
    } else if (const auto* cancel_reject = std::get_if<CancelRejected>(&message)) {
      CancelRejected translated = *cancel_reject;
      const auto it = routes_.find(cancel_reject->client_order_id);
      if (it != routes_.end()) {
        translated.client_order_id = it->second.client_id;
        it->second.acked = true;
      }
      route_response(cancel_reject->client_order_id, translated, false);
    } else if (const auto* modified = std::get_if<OrderModified>(&message)) {
      OrderModified translated = *modified;
      const auto it = routes_.find(modified->client_order_id);
      if (it != routes_.end()) {
        translated.client_order_id = it->second.client_id;
        it->second.acked = true;
      }
      route_response(modified->client_order_id, translated, false);
    }
  }
}

}  // namespace tsn::trading
