#include "trading/gateway.hpp"

#include <utility>

#include "telemetry/trace.hpp"

namespace tsn::trading {

Gateway::Gateway(sim::Engine& engine, GatewayConfig config)
    : engine_(engine), config_(std::move(config)), risk_(config_.risk_limits) {
  host_ = std::make_unique<net::Host>(engine_, config_.name, config_.software_latency);
  client_nic_ = &host_->add_nic("clients", config_.client_mac, config_.client_ip);
  upstream_nic_ = &host_->add_nic("exchange", config_.upstream_mac, config_.upstream_ip);
  client_stack_ = std::make_unique<net::NetStack>(*client_nic_);
  upstream_stack_ = std::make_unique<net::NetStack>(*upstream_nic_);

  client_stack_->listen_tcp(config_.listen_port,
                            [this](net::TcpEndpoint& endpoint) { on_accept(endpoint); });
}

Gateway::~Gateway() = default;

void Gateway::start() {
  upstream_ = &upstream_stack_->connect_tcp(config_.exchange_mac, config_.exchange_ip,
                                            config_.exchange_port, 0);
  upstream_->set_data_handler([this](std::span<const std::byte> bytes, sim::Time) {
    on_upstream_bytes(bytes);
  });
  const auto login = proto::boe::encode(proto::boe::LoginRequest{100, 0xca50ULL}, upstream_seq_++);
  upstream_->send(login);
  last_upstream_tx_ = engine_.now();
  if (config_.heartbeat_interval > sim::Duration::zero()) {
    engine_.schedule_in(config_.heartbeat_interval, [this] { heartbeat_tick(); });
  }
}

void Gateway::heartbeat_tick() {
  if (upstream_logged_in_ &&
      engine_.now() - last_upstream_tx_ >= config_.heartbeat_interval) {
    upstream_->send(proto::boe::encode(proto::boe::Heartbeat{}, upstream_seq_++));
    last_upstream_tx_ = engine_.now();
    ++stats_.heartbeats_sent;
  }
  engine_.schedule_in(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void Gateway::on_accept(net::TcpEndpoint& endpoint) {
  ++stats_.sessions_accepted;
  auto session = std::make_unique<StrategySession>();
  session->endpoint = &endpoint;
  StrategySession* raw = session.get();
  sessions_.push_back(std::move(session));
  endpoint.set_data_handler([this, raw](std::span<const std::byte> bytes, sim::Time arrival) {
    // Wire arrival at the client NIC: start of the gateway's software span
    // for any order this batch of bytes carries.
    current_client_arrival_ = arrival;
    raw->parser.feed(bytes);
    while (auto decoded = raw->parser.next()) on_client_message(*raw, decoded->message);
  });
}

void Gateway::send_to_session(StrategySession& session, const proto::boe::Message& message) {
  session.endpoint->send(proto::boe::encode(message, session.tx_seq++));
}

void Gateway::send_upstream(const proto::boe::Message& message) {
  if (!upstream_logged_in_) {
    pending_upstream_.push_back(message);
    return;
  }
  upstream_->send(proto::boe::encode(message, upstream_seq_++));
  last_upstream_tx_ = engine_.now();
}

void Gateway::on_client_message(StrategySession& session, const proto::boe::Message& message) {
  using namespace proto::boe;
  if (std::get_if<LoginRequest>(&message) != nullptr) {
    session.logged_in = true;
    send_to_session(session, LoginAccepted{});
    return;
  }
  if (std::get_if<Heartbeat>(&message) != nullptr) {
    send_to_session(session, Heartbeat{});
    return;
  }
  if (!session.logged_in) {
    send_to_session(session, LoginRejected{RejectReason::kNotLoggedIn});
    return;
  }
  if (const auto* order = std::get_if<NewOrder>(&message)) {
    const proto::OrderId upstream_id = next_upstream_id_++;
    NewOrder forwarded = *order;
    forwarded.client_order_id = upstream_id;
    if (config_.enable_risk_checks) {
      const auto verdict = risk_.check_new_order(forwarded);
      if (verdict != RiskEngine::Verdict::kAccept) {
        ++stats_.orders_rejected_risk;
        send_to_session(session,
                        OrderRejected{order->client_order_id, to_reject_reason(verdict)});
        return;
      }
    }
    routes_[upstream_id] = OrderRoute{&session, order->client_order_id};
    forward_ids_[&session][order->client_order_id] = upstream_id;
    ++stats_.orders_forwarded;
    send_upstream(forwarded);
    // Risk check + id translation + forward happen in this software hop:
    // [order wire arrival at the client NIC, upstream hand-off].
    telemetry::record_span(telemetry::current_trace(), config_.name,
                           telemetry::SpanKind::kSoftware, current_client_arrival_,
                           engine_.now());
    return;
  }
  if (const auto* cancel = std::get_if<CancelOrder>(&message)) {
    const auto& ids = forward_ids_[&session];
    const auto it = ids.find(cancel->client_order_id);
    if (it == ids.end()) {
      send_to_session(session,
                      CancelRejected{cancel->client_order_id, RejectReason::kUnknownOrder});
      return;
    }
    ++stats_.cancels_forwarded;
    send_upstream(CancelOrder{it->second});
    return;
  }
  if (const auto* modify = std::get_if<ModifyOrder>(&message)) {
    const auto& ids = forward_ids_[&session];
    const auto it = ids.find(modify->client_order_id);
    if (it == ids.end()) {
      send_to_session(session,
                      CancelRejected{modify->client_order_id, RejectReason::kUnknownOrder});
      return;
    }
    ModifyOrder forwarded = *modify;
    forwarded.client_order_id = it->second;
    send_upstream(forwarded);
    return;
  }
}

void Gateway::register_metrics(telemetry::Registry& registry, const std::string& prefix) const {
  registry.gauge(prefix + ".sessions_accepted",
                 [this] { return static_cast<double>(stats_.sessions_accepted); });
  registry.gauge(prefix + ".orders_forwarded",
                 [this] { return static_cast<double>(stats_.orders_forwarded); });
  registry.gauge(prefix + ".orders_rejected_risk",
                 [this] { return static_cast<double>(stats_.orders_rejected_risk); });
  registry.gauge(prefix + ".cancels_forwarded",
                 [this] { return static_cast<double>(stats_.cancels_forwarded); });
  registry.gauge(prefix + ".responses_routed",
                 [this] { return static_cast<double>(stats_.responses_routed); });
  registry.gauge(prefix + ".orphan_responses",
                 [this] { return static_cast<double>(stats_.orphan_responses); });
  registry.gauge(prefix + ".heartbeats_sent",
                 [this] { return static_cast<double>(stats_.heartbeats_sent); });
}

void Gateway::route_response(proto::OrderId upstream_id, const proto::boe::Message& message,
                             bool final_state) {
  const auto it = routes_.find(upstream_id);
  if (it == routes_.end()) {
    ++stats_.orphan_responses;
    return;
  }
  ++stats_.responses_routed;
  send_to_session(*it->second.session, message);
  if (final_state) {
    forward_ids_[it->second.session].erase(it->second.client_id);
    routes_.erase(it);
  }
}

void Gateway::on_upstream_bytes(std::span<const std::byte> bytes) {
  using namespace proto::boe;
  upstream_parser_.feed(bytes);
  while (auto decoded = upstream_parser_.next()) {
    const Message& message = decoded->message;
    if (std::get_if<LoginAccepted>(&message) != nullptr) {
      upstream_logged_in_ = true;
      while (!pending_upstream_.empty()) {
        upstream_->send(proto::boe::encode(pending_upstream_.front(), upstream_seq_++));
        pending_upstream_.pop_front();
      }
      continue;
    }
    if (const auto* ack = std::get_if<OrderAccepted>(&message)) {
      OrderAccepted translated = *ack;
      const auto it = routes_.find(ack->client_order_id);
      if (it != routes_.end()) translated.client_order_id = it->second.client_id;
      route_response(ack->client_order_id, translated, false);
    } else if (const auto* reject = std::get_if<OrderRejected>(&message)) {
      risk_.on_terminal(reject->client_order_id);
      OrderRejected translated = *reject;
      const auto it = routes_.find(reject->client_order_id);
      if (it != routes_.end()) translated.client_order_id = it->second.client_id;
      route_response(reject->client_order_id, translated, true);
    } else if (const auto* fill = std::get_if<Fill>(&message)) {
      risk_.on_fill(fill->client_order_id, fill->quantity, fill->leaves_quantity);
      Fill translated = *fill;
      const auto it = routes_.find(fill->client_order_id);
      if (it != routes_.end()) translated.client_order_id = it->second.client_id;
      route_response(fill->client_order_id, translated, fill->leaves_quantity == 0);
    } else if (const auto* cancelled = std::get_if<OrderCancelled>(&message)) {
      risk_.on_terminal(cancelled->client_order_id);
      OrderCancelled translated = *cancelled;
      const auto it = routes_.find(cancelled->client_order_id);
      if (it != routes_.end()) translated.client_order_id = it->second.client_id;
      route_response(cancelled->client_order_id, translated, true);
    } else if (const auto* cancel_reject = std::get_if<CancelRejected>(&message)) {
      CancelRejected translated = *cancel_reject;
      const auto it = routes_.find(cancel_reject->client_order_id);
      if (it != routes_.end()) translated.client_order_id = it->second.client_id;
      route_response(cancel_reject->client_order_id, translated, false);
    } else if (const auto* modified = std::get_if<OrderModified>(&message)) {
      OrderModified translated = *modified;
      const auto it = routes_.find(modified->client_order_id);
      if (it != routes_.end()) translated.client_order_id = it->second.client_id;
      route_response(modified->client_order_id, translated, false);
    }
  }
}

}  // namespace tsn::trading
