// Order-entry gateway (§2).
//
// Strategies speak the firm's internal order protocol to a gateway; the
// gateway owns the long-lived session into the exchange, translates order
// ids between the two domains, and routes acknowledgements, rejects, fills
// and cancel results back to the originating strategy session.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/stack.hpp"
#include "proto/boe.hpp"
#include "sim/engine.hpp"
#include "telemetry/metrics.hpp"
#include "trading/risk.hpp"

namespace tsn::trading {

struct GatewayConfig {
  std::string name = "gw";
  std::uint16_t listen_port = 35000;
  net::MacAddr exchange_mac;
  net::Ipv4Addr exchange_ip;
  std::uint16_t exchange_port = 34000;
  sim::Duration software_latency = sim::nanos(std::int64_t{800});
  net::MacAddr client_mac;
  net::Ipv4Addr client_ip;
  net::MacAddr upstream_mac;
  net::Ipv4Addr upstream_ip;
  // Pre-trade risk gate (§4.2: firm-wide position and risk tracking sits
  // where every order passes).
  bool enable_risk_checks = true;
  RiskLimits risk_limits;
  // When positive, the gateway keeps its exchange session alive with idle
  // heartbeats (exchanges enforce session timeouts; see Exchange's
  // heartbeat_interval/session_timeout).
  sim::Duration heartbeat_interval = sim::Duration::zero();
};

struct GatewayStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t orders_forwarded = 0;
  std::uint64_t orders_rejected_risk = 0;
  std::uint64_t cancels_forwarded = 0;
  std::uint64_t responses_routed = 0;
  std::uint64_t orphan_responses = 0;  // upstream messages with no known id
  std::uint64_t heartbeats_sent = 0;
};

class Gateway {
 public:
  Gateway(sim::Engine& engine, GatewayConfig config);
  ~Gateway();
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  [[nodiscard]] net::Nic& client_nic() noexcept { return *client_nic_; }
  [[nodiscard]] net::Nic& upstream_nic() noexcept { return *upstream_nic_; }

  // Connects and logs into the exchange. Call after wiring.
  void start();

  [[nodiscard]] const GatewayStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool upstream_ready() const noexcept { return upstream_logged_in_; }
  [[nodiscard]] const GatewayConfig& config() const noexcept { return config_; }
  // Firm-wide exposure view (§4.2).
  [[nodiscard]] const RiskEngine& risk() const noexcept { return risk_; }

  // Registers session/order-flow gauges (including session heartbeats)
  // under "<prefix>".
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const;

 private:
  struct StrategySession {
    net::TcpEndpoint* endpoint = nullptr;
    proto::boe::StreamParser parser;
    std::uint32_t tx_seq = 1;
    bool logged_in = false;
  };

  void on_accept(net::TcpEndpoint& endpoint);
  void on_client_message(StrategySession& session, const proto::boe::Message& message);
  void on_upstream_bytes(std::span<const std::byte> bytes);
  void route_response(proto::OrderId upstream_id, const proto::boe::Message& message,
                      bool final_state);
  void send_upstream(const proto::boe::Message& message);
  void send_to_session(StrategySession& session, const proto::boe::Message& message);
  void heartbeat_tick();

  sim::Engine& engine_;
  GatewayConfig config_;
  std::unique_ptr<net::Host> host_;
  net::Nic* client_nic_ = nullptr;
  net::Nic* upstream_nic_ = nullptr;
  std::unique_ptr<net::NetStack> client_stack_;
  std::unique_ptr<net::NetStack> upstream_stack_;

  std::vector<std::unique_ptr<StrategySession>> sessions_;
  net::TcpEndpoint* upstream_ = nullptr;
  proto::boe::StreamParser upstream_parser_;
  std::uint32_t upstream_seq_ = 1;
  bool upstream_logged_in_ = false;
  sim::Time last_upstream_tx_;
  std::deque<proto::boe::Message> pending_upstream_;

  struct OrderRoute {
    StrategySession* session = nullptr;
    proto::OrderId client_id = 0;
  };
  std::unordered_map<proto::OrderId, OrderRoute> routes_;        // upstream id -> origin
  std::unordered_map<StrategySession*,
                     std::unordered_map<proto::OrderId, proto::OrderId>>
      forward_ids_;  // (session, client id) -> upstream id
  proto::OrderId next_upstream_id_ = 1;

  RiskEngine risk_;
  GatewayStats stats_;
  // Wire arrival of the client bytes currently being parsed: the start of
  // the gateway's software span for orders they carry.
  sim::Time current_client_arrival_;
};

}  // namespace tsn::trading
