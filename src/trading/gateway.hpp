// Order-entry gateway (§2).
//
// Strategies speak the firm's internal order protocol to a gateway; the
// gateway owns the long-lived session into the exchange, translates order
// ids between the two domains, and routes acknowledgements, rejects, fills
// and cancel results back to the originating strategy session.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/stack.hpp"
#include "proto/boe.hpp"
#include "sim/scheduler.hpp"
#include "sim/random.hpp"
#include "telemetry/metrics.hpp"
#include "trading/risk.hpp"

namespace tsn::trading {

// One exchange front door the gateway can home to. Index 0 is implicitly
// the primary (GatewayConfig::exchange_*); entries in backup_exchanges are
// the hot standbys tried in rotation when reconnects to the primary fail.
struct UpstreamEndpoint {
  net::MacAddr mac;
  net::Ipv4Addr ip;
  std::uint16_t port = 34000;
};

struct GatewayConfig {
  std::string name = "gw";
  std::uint16_t listen_port = 35000;
  net::MacAddr exchange_mac;
  net::Ipv4Addr exchange_ip;
  std::uint16_t exchange_port = 34000;
  sim::Duration software_latency = sim::nanos(std::int64_t{800});
  net::MacAddr client_mac;
  net::Ipv4Addr client_ip;
  net::MacAddr upstream_mac;
  net::Ipv4Addr upstream_ip;
  // Pre-trade risk gate (§4.2: firm-wide position and risk tracking sits
  // where every order passes).
  bool enable_risk_checks = true;
  RiskLimits risk_limits;
  // When positive, the gateway keeps its exchange session alive with idle
  // heartbeats (exchanges enforce session timeouts; see Exchange's
  // heartbeat_interval/session_timeout).
  sim::Duration heartbeat_interval = sim::Duration::zero();
  // Upstream session identity for resumable re-login. 0 derives a unique id
  // from the upstream NIC's IP so multiple gateways never share a session.
  std::uint32_t session_id = 0;
  std::uint64_t login_token = 0xca50ULL;
  // Reconnect state machine: on connection death, back off exponentially
  // (with deterministic jitter from reconnect_jitter_seed), re-login, and
  // reconcile in-flight orders through replay + idempotent resubmission.
  bool reconnect_enabled = true;
  // Hot-standby exchanges: reconnect attempt 1 retries the primary, later
  // attempts rotate through primary and backups, so a promoted standby is
  // found within a bounded number of backoff steps.
  std::vector<UpstreamEndpoint> backup_exchanges;
  // When positive, a login that gets no LoginAccepted/SequenceReset within
  // this window is aborted and treated as a failed attempt. Covers the
  // crash window where the TCP leg is accepted but the exchange dies before
  // answering (the kernel of a dead box still completes handshakes it had
  // queued). Zero disables.
  sim::Duration reconnect_response_timeout = sim::Duration::zero();
  sim::Duration reconnect_backoff_initial = sim::millis(std::int64_t{2});
  double reconnect_backoff_multiplier = 2.0;
  sim::Duration reconnect_backoff_max = sim::millis(std::int64_t{50});
  int reconnect_max_attempts = 10;
  double reconnect_jitter = 0.1;  // +/- fraction of each backoff step
  std::uint64_t reconnect_jitter_seed = 0x5eedULL;
  // Bound on orders queued while the upstream session is down; excess
  // messages are shed with a counted kGatewayBackpressure reject back to
  // the originating strategy session.
  std::size_t max_pending_upstream = 1024;
};

// Upstream session lifecycle (metrics export the numeric value).
enum class UpstreamState : std::uint8_t {
  kIdle = 0,       // before start()
  kLoggingIn = 1,  // TCP connect + LoginRequest in flight
  kReplaying = 2,  // resumed login, ReplayRequest sent, awaiting SequenceReset
  kReady = 3,      // logged in, orders flow
  kBackoff = 4,    // connection died, reconnect timer armed
  kFailed = 5,     // reconnect attempts exhausted (or reconnect disabled)
};

struct GatewayStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t orders_forwarded = 0;
  std::uint64_t orders_rejected_risk = 0;
  std::uint64_t cancels_forwarded = 0;
  std::uint64_t responses_routed = 0;
  std::uint64_t orphan_responses = 0;  // upstream messages with no known id
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t reconnect_attempts = 0;
  std::uint64_t reconnects_completed = 0;
  std::uint64_t reconnects_given_up = 0;
  std::uint64_t replays_requested = 0;
  std::uint64_t stale_responses_dropped = 0;  // replay duplicates (seq already applied)
  std::uint64_t orders_marked_unknown = 0;    // in flight when the session died
  std::uint64_t orders_resubmitted = 0;       // unresolved by replay, resent under dedupe
  std::uint64_t duplicate_resubmit_acks = 0;  // dedupe rejects swallowed for resubmissions
  std::uint64_t orders_shed = 0;              // NewOrders dropped by the pending bound
  std::uint64_t cancels_shed = 0;             // cancels/modifies dropped by the bound
  std::uint64_t login_timeouts = 0;           // logins abandoned by the response timeout
};

class Gateway {
 public:
  Gateway(sim::Scheduler& engine, GatewayConfig config);
  ~Gateway();
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  [[nodiscard]] net::Nic& client_nic() noexcept { return *client_nic_; }
  [[nodiscard]] net::Nic& upstream_nic() noexcept { return *upstream_nic_; }

  // Connects and logs into the exchange. Call after wiring.
  void start();

  // Kills the upstream connection immediately (no FIN on the wire), as a
  // session-level fault would: the closed handler sees the death and the
  // reconnect machine takes over. Safe to call from a scheduled event.
  void kill_upstream();

  [[nodiscard]] const GatewayStats& stats() const noexcept { return stats_; }
  // Disconnect-to-ready time of the most recent completed recovery (login +
  // replay + resubmission), zero until a reconnect has completed. The
  // session-scale drills bound this; here it is per-gateway observability.
  [[nodiscard]] sim::Duration last_recovery_duration() const noexcept {
    return last_recovery_duration_;
  }
  [[nodiscard]] bool upstream_ready() const noexcept { return upstream_logged_in_; }
  [[nodiscard]] UpstreamState upstream_state() const noexcept { return upstream_state_; }
  [[nodiscard]] std::size_t pending_upstream_depth() const noexcept {
    return pending_upstream_.size();
  }
  [[nodiscard]] std::size_t pending_upstream_hwm() const noexcept {
    return pending_upstream_hwm_;
  }
  [[nodiscard]] const GatewayConfig& config() const noexcept { return config_; }
  // Which front door the current (or most recent) upstream leg targets:
  // 0 = primary, k = backup_exchanges[k - 1]. Drills assert re-homing.
  [[nodiscard]] std::size_t upstream_endpoint_index() const noexcept {
    return upstream_endpoint_index_;
  }
  // Firm-wide exposure view (§4.2).
  [[nodiscard]] const RiskEngine& risk() const noexcept { return risk_; }

  // Registers session/order-flow gauges (including session heartbeats)
  // under "<prefix>".
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const;

 private:
  struct StrategySession {
    net::TcpEndpoint* endpoint = nullptr;
    proto::boe::StreamParser parser;
    std::uint32_t tx_seq = 1;
    bool logged_in = false;
  };

  void on_accept(net::TcpEndpoint& endpoint);
  void on_client_message(StrategySession& session, const proto::boe::Message& message);
  void on_upstream_bytes(std::span<const std::byte> bytes);
  void route_response(proto::OrderId upstream_id, const proto::boe::Message& message,
                      bool final_state);
  void send_upstream(const proto::boe::Message& message);
  void send_to_session(StrategySession& session, const proto::boe::Message& message);
  void heartbeat_tick();
  void connect_upstream();
  void on_upstream_closed(net::TcpCloseReason reason);
  void schedule_reconnect();
  void reconnect_now();
  [[nodiscard]] double reconnect_jitter_factor() noexcept;
  void arm_login_timeout();
  void on_login_accepted();
  void on_sequence_reset();
  void flush_pending_upstream();
  void shed_upstream(const proto::boe::Message& message);
  void transmit_upstream(const proto::boe::Message& message);
  [[nodiscard]] std::uint32_t upstream_session_id() const noexcept;
  void set_upstream_state(UpstreamState state) noexcept { upstream_state_ = state; }

  sim::Scheduler& engine_;
  GatewayConfig config_;
  std::unique_ptr<net::Host> host_;
  net::Nic* client_nic_ = nullptr;
  net::Nic* upstream_nic_ = nullptr;
  std::unique_ptr<net::NetStack> client_stack_;
  std::unique_ptr<net::NetStack> upstream_stack_;

  std::vector<std::unique_ptr<StrategySession>> sessions_;
  net::TcpEndpoint* upstream_ = nullptr;
  proto::boe::StreamParser upstream_parser_;
  std::uint32_t upstream_seq_ = 1;
  bool upstream_logged_in_ = false;
  sim::Time last_upstream_tx_;
  std::deque<proto::boe::Message> pending_upstream_;
  std::size_t pending_upstream_hwm_ = 0;

  UpstreamState upstream_state_ = UpstreamState::kIdle;
  sim::Time last_disconnect_at_;  // set on upstream death, consumed on recovery
  sim::Duration last_recovery_duration_ = sim::Duration::zero();
  bool ever_logged_in_ = false;   // first LoginAccepted vs resumed session
  int backoff_attempt_ = 0;       // consecutive failed attempts (resets on ready)
  std::uint32_t last_applied_seq_ = 0;  // highest sequenced response applied
  std::size_t upstream_endpoint_index_ = 0;  // 0 = primary, k = backups[k-1]

  struct OrderRoute {
    StrategySession* session = nullptr;
    proto::OrderId client_id = 0;
    // The NewOrder exactly as forwarded upstream (upstream id inside): the
    // resubmission payload when replay leaves the order unresolved.
    proto::boe::NewOrder forwarded;
    bool sent = false;         // handed to the upstream TCP endpoint
    bool acked = false;        // some sequenced response referenced it
    bool resubmitted = false;  // resent after a reconnect, under dedupe
  };
  std::unordered_map<proto::OrderId, OrderRoute> routes_;        // upstream id -> origin
  // Lookup-only: never iterated or exported, so the pointer key cannot leak
  // address-dependent order into replay; sessions outlive every entry.
  // tsn-lint: allow(pointer-identity) lookup-only map, iteration order never observed
  std::unordered_map<StrategySession*,
                     std::unordered_map<proto::OrderId, proto::OrderId>>
      forward_ids_;  // (session, client id) -> upstream id
  proto::OrderId next_upstream_id_ = 1;

  RiskEngine risk_;
  GatewayStats stats_;
  // Wire arrival of the client bytes currently being parsed: the start of
  // the gateway's software span for orders they carry.
  sim::Time current_client_arrival_;
};

}  // namespace tsn::trading
