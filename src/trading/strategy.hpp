// The strategy framework and sample strategies (§2).
//
// A Strategy subscribes to normalized market-data partitions, runs a custom
// decision function on every update, and sends orders over a long-lived TCP
// session to an order gateway. The framework measures tick-to-trade
// latency the way the paper describes (§2): the time between the most
// recent input event arriving at the NIC and the resulting order leaving.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mcast/responder.hpp"
#include "net/stack.hpp"
#include "proto/boe.hpp"
#include "proto/norm.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "trading/compliance.hpp"

namespace tsn::trading {

struct StrategyConfig {
  std::string name = "strat";
  // Normalized partitions to consume. The paper's L1S design caps how many
  // of these a strategy may have (§4.3); the cluster manager enforces it.
  std::vector<net::Ipv4Addr> subscriptions;
  std::uint16_t norm_port = 31001;
  net::MacAddr gateway_mac;
  net::Ipv4Addr gateway_ip;
  std::uint16_t gateway_port = 35000;
  // Decision-function latency (the paper assumes each function averages
  // under 2 us, §4).
  sim::Duration decision_latency = sim::micros(std::int64_t{2});
  sim::Duration software_latency = sim::nanos(std::int64_t{900});
  net::MacAddr md_mac;
  net::Ipv4Addr md_ip;
  net::MacAddr order_mac;
  net::Ipv4Addr order_ip;
};

struct StrategyStats {
  std::uint64_t updates_received = 0;
  std::uint64_t orders_sent = 0;
  std::uint64_t cancels_sent = 0;
  std::uint64_t acks = 0;
  std::uint64_t rejects = 0;
  std::uint64_t fills = 0;
  std::uint64_t cancel_rejects = 0;
};

class Strategy {
 public:
  Strategy(sim::Scheduler& engine, StrategyConfig config);
  virtual ~Strategy();
  Strategy(const Strategy&) = delete;
  Strategy& operator=(const Strategy&) = delete;

  [[nodiscard]] net::Nic& md_nic() noexcept { return *md_nic_; }
  [[nodiscard]] net::Nic& order_nic() noexcept { return *order_nic_; }

  // Joins subscriptions, connects to the gateway, logs in. Call after the
  // NICs are wired into the topology.
  void start();

  [[nodiscard]] const StrategyStats& stats() const noexcept { return stats_; }
  // Tick-to-trade latency samples in nanoseconds.
  [[nodiscard]] const telemetry::Histogram& tick_to_trade() const noexcept { return tick_to_trade_; }
  // Order round-trip (order sent -> exchange ack received), nanoseconds.
  [[nodiscard]] const telemetry::Histogram& order_rtt() const noexcept { return order_rtt_; }
  // Feed-path latency (exchange event timestamp -> strategy NIC), ns.
  [[nodiscard]] const telemetry::Histogram& feed_path() const noexcept { return feed_path_; }
  [[nodiscard]] const StrategyConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t open_orders() const noexcept { return open_orders_.size(); }

  // Registers order-flow counters and the latency histograms under
  // "<prefix>" (tick_to_trade/order_rtt/feed_path appear as gauge rows per
  // summary statistic plus histogram entries when exported).
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const;

 protected:
  // The decision function. `nic_arrival` is when the datagram hit the NIC
  // (before the software hop) — the reference point for tick-to-trade.
  virtual void on_update(const proto::norm::Update& update, sim::Time nic_arrival) = 0;
  virtual void on_ack(const proto::boe::OrderAccepted& ack);
  virtual void on_reject(const proto::boe::OrderRejected& reject);
  virtual void on_fill(const proto::boe::Fill& fill);
  virtual void on_cancelled(const proto::boe::OrderCancelled& cancelled);

  // Sends a new order after the configured decision latency. Returns the
  // client order id assigned.
  proto::OrderId send_order(proto::Side side, proto::Symbol symbol, proto::Price price,
                            proto::Quantity quantity,
                            proto::boe::TimeInForce tif = proto::boe::TimeInForce::kDay);
  void send_cancel(proto::OrderId client_order_id);

  [[nodiscard]] sim::Scheduler& engine() noexcept { return engine_; }

 private:
  void on_norm_datagram(std::span<const std::byte> payload, sim::Time handler_time);
  void on_session_bytes(std::span<const std::byte> bytes);
  void dispatch_response(const proto::boe::Message& message);
  void transmit(const proto::boe::Message& message);

  sim::Scheduler& engine_;
  StrategyConfig config_;
  std::unique_ptr<net::Host> host_;
  net::Nic* md_nic_ = nullptr;
  net::Nic* order_nic_ = nullptr;
  std::unique_ptr<net::NetStack> md_stack_;
  std::unique_ptr<net::NetStack> order_stack_;
  std::unique_ptr<mcast::IgmpResponder> responder_;
  net::TcpEndpoint* session_ = nullptr;
  proto::boe::StreamParser parser_;
  std::uint32_t tx_seq_ = 1;
  proto::OrderId next_client_id_ = 1;
  std::unordered_map<proto::OrderId, proto::Symbol> open_orders_;
  std::unordered_map<proto::OrderId, sim::Time> order_sent_at_;
  sim::Time current_update_nic_arrival_ = sim::Time::zero();
  bool in_update_context_ = false;
  StrategyStats stats_;
  telemetry::Histogram tick_to_trade_;
  telemetry::Histogram order_rtt_;
  telemetry::Histogram feed_path_;
};

// --- Sample strategies -------------------------------------------------------

// Momentum taker: two consecutive upticks (downticks) in trade prints for a
// symbol trigger an IOC order chasing the move.
class MomentumTaker final : public Strategy {
 public:
  MomentumTaker(sim::Scheduler& engine, StrategyConfig config, proto::Price tick = 100,
                proto::Quantity clip = 100);

 protected:
  void on_update(const proto::norm::Update& update, sim::Time nic_arrival) override;

 private:
  struct State {
    proto::Price last_price = 0;
    int run = 0;  // +n upticks, -n downticks
  };
  std::unordered_map<proto::Symbol, State> state_;
  proto::Price tick_;
  proto::Quantity clip_;
};

// Simple market maker: keeps a two-sided quote around the last observed
// price for each watched symbol, repricing when the market drifts.
class MarketMaker final : public Strategy {
 public:
  MarketMaker(sim::Scheduler& engine, StrategyConfig config, proto::Price half_spread = 300,
              proto::Quantity clip = 200);

 protected:
  void on_update(const proto::norm::Update& update, sim::Time nic_arrival) override;
  void on_fill(const proto::boe::Fill& fill) override;

 private:
  struct Quote {
    proto::Price anchor = 0;
    proto::OrderId bid_id = 0;
    proto::OrderId ask_id = 0;
  };
  std::unordered_map<proto::Symbol, Quote> quotes_;
  proto::Price half_spread_;
  proto::Quantity clip_;
};

// A market maker that keeps its quotes inside the SEC's locked/crossed
// rules (§4.2): every BBO update feeds a MarketStateMonitor, and quote
// prices are clamped so they never lock or cross another venue's displayed
// market. This is the firm-wide-state consumer the paper says makes cloud
// designs hard: the monitor needs every venue's top of book, everywhere.
class CompliantMarketMaker final : public Strategy {
 public:
  CompliantMarketMaker(sim::Scheduler& engine, StrategyConfig config,
                       proto::Price half_spread = 300, proto::Quantity clip = 200,
                       proto::Price tick = 100);

  [[nodiscard]] const MarketStateMonitor& monitor() const noexcept { return monitor_; }
  [[nodiscard]] std::uint64_t quotes_clamped() const noexcept { return quotes_clamped_; }

 protected:
  void on_update(const proto::norm::Update& update, sim::Time nic_arrival) override;

 private:
  struct Quote {
    proto::Price anchor = 0;
    proto::OrderId bid_id = 0;
    proto::OrderId ask_id = 0;
  };
  std::unordered_map<proto::Symbol, Quote> quotes_;
  MarketStateMonitor monitor_;
  proto::Price half_spread_;
  proto::Quantity clip_;
  proto::Price tick_;
  std::uint64_t quotes_clamped_ = 0;
};

// Cross-venue arbitrage: watches the same symbol on two exchange ids and
// fires paired IOC orders when their prices diverge past a threshold —
// the "analyze combined market data from many exchanges" pattern (§2).
class CrossVenueArb final : public Strategy {
 public:
  CrossVenueArb(sim::Scheduler& engine, StrategyConfig config, std::uint8_t venue_a,
                std::uint8_t venue_b, proto::Price threshold = 500,
                proto::Quantity clip = 100);

  [[nodiscard]] std::uint64_t opportunities() const noexcept { return opportunities_; }

 protected:
  void on_update(const proto::norm::Update& update, sim::Time nic_arrival) override;

 private:
  struct VenuePrices {
    proto::Price price_a = 0;
    proto::Price price_b = 0;
  };
  std::unordered_map<proto::Symbol, VenuePrices> prices_;
  std::uint8_t venue_a_;
  std::uint8_t venue_b_;
  proto::Price threshold_;
  proto::Quantity clip_;
  std::uint64_t opportunities_ = 0;
};

}  // namespace tsn::trading
