// Pre-trade risk checks and firm-wide position tracking (§4.2).
//
// "Firms also track metrics akin to a firm-wide net position, for
// regulatory reasons and to assess risk." In practice that tracking lives
// where every order already passes: the gateway. RiskEngine implements the
// standard pre-trade gate — per-order size/notional caps, open-order
// budget, and per-symbol plus firm-wide position limits that account for
// the exposure a new order would create if fully filled — and consumes
// fills to keep the firm's net position current.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "proto/boe.hpp"
#include "proto/types.hpp"

namespace tsn::trading {

struct RiskLimits {
  proto::Quantity max_order_quantity = 10'000;
  // Notional in price units (price * quantity).
  std::int64_t max_order_notional = 2'000'000'000;  // $200k at 1e-4 scale... per order
  std::uint32_t max_open_orders = 1'000;
  // Absolute per-symbol net position cap (shares).
  std::int64_t max_symbol_position = 50'000;
  // Absolute firm-wide gross exposure cap (sum of |per-symbol positions|).
  std::int64_t max_firm_gross_position = 500'000;
};

struct RiskStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_size = 0;
  std::uint64_t rejected_notional = 0;
  std::uint64_t rejected_open_orders = 0;
  std::uint64_t rejected_symbol_position = 0;
  std::uint64_t rejected_firm_position = 0;
};

class RiskEngine {
 public:
  explicit RiskEngine(RiskLimits limits = {}) noexcept : limits_(limits) {}

  enum class Verdict {
    kAccept,
    kOrderTooLarge,
    kNotionalTooLarge,
    kTooManyOpenOrders,
    kSymbolPositionLimit,
    kFirmPositionLimit,
  };

  // Pre-trade check. Accepted orders reserve exposure until they are
  // filled, cancelled or rejected upstream.
  [[nodiscard]] Verdict check_new_order(const proto::boe::NewOrder& order);

  // Lifecycle updates (keyed by the id used in check_new_order).
  void on_fill(proto::OrderId client_order_id, proto::Quantity quantity,
               proto::Quantity leaves_quantity);
  void on_terminal(proto::OrderId client_order_id);  // cancel/reject: release

  // Current net position (signed shares) for a symbol / firm-wide gross.
  [[nodiscard]] std::int64_t position(const proto::Symbol& symbol) const noexcept;
  [[nodiscard]] std::int64_t firm_gross_position() const noexcept;
  [[nodiscard]] std::size_t open_orders() const noexcept { return open_.size(); }
  [[nodiscard]] const RiskStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const RiskLimits& limits() const noexcept { return limits_; }

 private:
  struct OpenOrder {
    proto::Symbol symbol;
    proto::Side side = proto::Side::kBuy;
    proto::Quantity remaining = 0;
  };

  // Exposure a symbol would reach if this delta (signed) were realized.
  [[nodiscard]] std::int64_t projected_symbol_exposure(const proto::Symbol& symbol,
                                                       std::int64_t delta) const noexcept;

  RiskLimits limits_;
  std::unordered_map<proto::OrderId, OpenOrder> open_;
  std::unordered_map<proto::Symbol, std::int64_t> positions_;
  RiskStats stats_;
};

// Maps a risk verdict to the wire reject reason.
[[nodiscard]] constexpr proto::boe::RejectReason to_reject_reason(
    RiskEngine::Verdict verdict) noexcept {
  return verdict == RiskEngine::Verdict::kAccept ? proto::boe::RejectReason::kNone
                                                 : proto::boe::RejectReason::kRiskLimit;
}

}  // namespace tsn::trading
