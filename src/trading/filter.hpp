// Filter-placement analysis (§3, "Implications for trading systems").
//
// A strategy partition only wants a subset of the feed. Where should the
// irrelevant data be discarded? The paper's rule: if the combined time
// spent discarding plus processing exceeds the event arrival budget, the
// filter must move out of the trading process — to another core on the
// same server, or to a middlebox that can be shared by every consumer
// using the same partitioning scheme. This module provides that arithmetic
// and an executable symbol filter whose discard cost the benches measure.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "proto/norm.hpp"
#include "proto/types.hpp"
#include "sim/time.hpp"

namespace tsn::trading {

enum class FilterPlacement : std::uint8_t {
  kInProcess,      // strategy core inspects and discards everything itself
  kDedicatedCore,  // another core on the same server pre-filters
  kMiddlebox,      // shared network middlebox pre-filters for many consumers
};

struct FilterWorkload {
  double event_rate = 1'000'000.0;  // events/second arriving pre-filter
  double keep_fraction = 0.1;       // fraction relevant to this consumer
  sim::Duration discard_cost = sim::nanos(std::int64_t{40});   // inspect-and-drop
  sim::Duration process_cost = sim::nanos(std::int64_t{500});  // full handling
};

struct PlacementAnalysis {
  // Busy fraction of the strategy core (must stay <= 1 to keep up).
  double strategy_utilization = 0.0;
  // Busy fraction of the filtering core, when one exists.
  double filter_utilization = 0.0;
  // Cores consumed per consumer (middlebox cores amortize over consumers).
  double cores_per_consumer = 0.0;
  bool feasible = false;
};

// `shared_consumers` is how many consumers a middlebox filter serves (§3:
// "when several systems employ the same partitioning scheme, middleboxes
// can be more efficient in terms of the number of cores used").
[[nodiscard]] PlacementAnalysis analyze_placement(const FilterWorkload& workload,
                                                  FilterPlacement placement,
                                                  int shared_consumers = 1) noexcept;

// The keep-fraction above which in-process filtering stops keeping up for
// a given rate/cost point (1.0 if it always keeps up, 0.0 if never).
[[nodiscard]] double in_process_feasibility_boundary(double event_rate,
                                                     sim::Duration discard_cost,
                                                     sim::Duration process_cost) noexcept;

// Executable filter: keeps updates whose symbol is in the watch set.
class SymbolFilter {
 public:
  void watch(const proto::Symbol& symbol) { watched_.insert(symbol); }
  [[nodiscard]] bool relevant(const proto::norm::Update& update) const noexcept {
    return watched_.contains(update.symbol);
  }
  [[nodiscard]] std::size_t watch_count() const noexcept { return watched_.size(); }

 private:
  std::unordered_set<proto::Symbol> watched_;
};

}  // namespace tsn::trading
