// Redundant A/B feed line arbitration (§4).
//
// Exchanges publish every feed datagram twice, on two multicast groups that
// are engineered onto disjoint physical paths. A receiver listens to both
// lines and forwards the first copy of each sequence number downstream —
// so a drop, a flapping cross-connect, or a stalled switch port on one
// path is invisible as long as the other path delivered. Only when *both*
// lines miss a sequence (a dual gap) does the receiver fall back to the
// snapshot-recovery machinery.
//
// `LineArbiter` is that receiver. It consumes the exchange's A and B
// streams on two input NICs, dedups at datagram granularity (the exchange
// emits byte-identical datagrams on both lines, so boundaries always
// agree), re-orders held-ahead datagrams, and republishes the arbitrated
// stream — original payload bytes, original sequences — on its own output
// groups, where a stock Normalizer consumes it unchanged. A dual gap is
// declared only after `gap_timeout` of waiting for the lagging line; the
// arbiter then advances past the hole, and the downstream normalizer sees
// the sequence jump and starts a resync, exactly as it would single-feed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mcast/responder.hpp"
#include "net/stack.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::trading {

enum class Line : std::uint8_t { kA = 0, kB = 1 };

struct ArbiterConfig {
  std::string name = "arb";
  // The exchange's A-line and B-line groups for the units to arbitrate.
  std::vector<net::Ipv4Addr> a_groups;
  std::vector<net::Ipv4Addr> b_groups;
  std::uint16_t feed_port = 30001;
  // Arbitrated output: unit u republishes on out_group_base + u. The port
  // defaults to the feed port so a Normalizer binds without special-casing.
  net::Ipv4Addr out_group_base{239, 103, 0, 0};
  std::uint16_t out_port = 30001;
  // How long to hold an ahead-of-sequence datagram waiting for the lagging
  // line before declaring the missing range a dual gap. Should comfortably
  // exceed the A/B path-latency skew; 150 us covers a metro hop.
  sim::Duration gap_timeout = sim::micros(std::int64_t{150});
  // Kernel-bypass arbitration hop (same order as the normalizer's, §3).
  sim::Duration software_latency = sim::nanos(std::int64_t{400});
  // When false the arbiter never touches its output stack — drive
  // on_datagram() directly and observe via set_output_tap() (unit tests).
  bool republish = true;
  net::MacAddr a_mac;
  net::Ipv4Addr a_ip;
  net::MacAddr b_mac;
  net::Ipv4Addr b_ip;
  net::MacAddr out_mac;
  net::Ipv4Addr out_ip;
};

struct ArbiterStats {
  std::uint64_t datagrams_a = 0;
  std::uint64_t datagrams_b = 0;
  std::uint64_t forwarded = 0;   // unique datagrams sent downstream
  std::uint64_t duplicates = 0;  // second-line copies discarded
  std::uint64_t held = 0;        // arrived ahead of sequence, parked
  std::uint64_t dual_gaps = 0;   // ranges neither line delivered in time
  std::uint64_t sequences_lost = 0;  // messages skipped across dual gaps
  std::uint64_t malformed = 0;
};

class LineArbiter {
 public:
  // unit, first sequence, payload of every forwarded datagram, in forward
  // order — the hook drill harnesses use to compare against ground truth.
  using OutputTap =
      std::function<void(std::uint8_t unit, std::uint32_t sequence,
                         std::span<const std::byte> payload)>;

  LineArbiter(sim::Scheduler& engine, ArbiterConfig config);
  ~LineArbiter();
  LineArbiter(const LineArbiter&) = delete;
  LineArbiter& operator=(const LineArbiter&) = delete;

  [[nodiscard]] net::Nic& a_nic() noexcept { return *a_nic_; }
  [[nodiscard]] net::Nic& b_nic() noexcept { return *b_nic_; }
  [[nodiscard]] net::Nic& out_nic() noexcept { return *out_nic_; }

  // Joins the A groups on the A NIC and the B groups on the B NIC (IGMP
  // responders keep both memberships alive). Call after topology wiring.
  void join_feeds();

  [[nodiscard]] net::Ipv4Addr out_group(std::uint8_t unit) const noexcept {
    return net::Ipv4Addr{config_.out_group_base.value() + unit};
  }

  // The arbitration core, public so tests can feed scripted streams
  // without any network underneath.
  void on_datagram(Line line, std::span<const std::byte> payload);

  void set_output_tap(OutputTap tap) { tap_ = std::move(tap); }

  [[nodiscard]] const ArbiterStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ArbiterConfig& config() const noexcept { return config_; }

  // Registers arbitration counters as gauges under "<prefix>".
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const;

 private:
  struct UnitState {
    bool synced = false;
    std::uint32_t next_expected = 0;  // first sequence not yet forwarded
    // Datagrams that arrived ahead of next_expected, keyed by sequence.
    std::map<std::uint32_t, std::vector<std::byte>> held;
    bool timer_armed = false;
  };

  void forward(std::uint8_t unit, std::uint32_t sequence,
               std::span<const std::byte> payload);
  // Forwards every held datagram that is now in sequence.
  void drain(std::uint8_t unit, UnitState& state);
  void arm_gap_timer(std::uint8_t unit, UnitState& state);
  void on_gap_timeout(std::uint8_t unit);

  sim::Scheduler& engine_;
  ArbiterConfig config_;
  std::unique_ptr<net::Host> host_;
  net::Nic* a_nic_ = nullptr;
  net::Nic* b_nic_ = nullptr;
  net::Nic* out_nic_ = nullptr;
  std::unique_ptr<net::NetStack> a_stack_;
  std::unique_ptr<net::NetStack> b_stack_;
  std::unique_ptr<net::NetStack> out_stack_;
  std::unique_ptr<mcast::IgmpResponder> a_responder_;
  std::unique_ptr<mcast::IgmpResponder> b_responder_;
  std::map<std::uint8_t, UnitState> units_;
  OutputTap tap_;
  ArbiterStats stats_;
};

}  // namespace tsn::trading
