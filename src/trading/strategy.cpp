#include "trading/strategy.hpp"

#include <utility>

#include "mcast/subscribe.hpp"
#include "telemetry/trace.hpp"

namespace tsn::trading {

Strategy::Strategy(sim::Scheduler& engine, StrategyConfig config)
    : engine_(engine), config_(std::move(config)) {
  host_ = std::make_unique<net::Host>(engine_, config_.name, config_.software_latency);
  md_nic_ = &host_->add_nic("md", config_.md_mac, config_.md_ip);
  order_nic_ = &host_->add_nic("orders", config_.order_mac, config_.order_ip);
  md_stack_ = std::make_unique<net::NetStack>(*md_nic_);
  order_stack_ = std::make_unique<net::NetStack>(*order_nic_);
  responder_ = std::make_unique<mcast::IgmpResponder>(*md_stack_);

  md_stack_->bind_udp(config_.norm_port,
                      [this](const net::Ipv4Header&, const net::UdpHeader&,
                             std::span<const std::byte> payload, sim::Time handler_time) {
                        on_norm_datagram(payload, handler_time);
                      });
}

Strategy::~Strategy() = default;

void Strategy::start() {
  for (const auto group : config_.subscriptions) responder_->join(group);
  session_ = &order_stack_->connect_tcp(config_.gateway_mac, config_.gateway_ip,
                                        config_.gateway_port, 0);
  session_->set_data_handler([this](std::span<const std::byte> bytes, sim::Time) {
    on_session_bytes(bytes);
  });
  transmit(proto::boe::LoginRequest{1, 0xfeed});
}

void Strategy::transmit(const proto::boe::Message& message) {
  const auto bytes = proto::boe::encode(message, tx_seq_++);
  session_->send(bytes);
}

void Strategy::on_norm_datagram(std::span<const std::byte> payload, sim::Time nic_arrival) {
  // The NIC reports the wire-arrival time even though the handler runs a
  // software hop later; tick-to-trade is measured from that wire arrival.
  (void)proto::norm::for_each_update(payload, [this, nic_arrival](
                                                  const proto::norm::Update& update) {
    ++stats_.updates_received;
    if (update.exchange_time_ns != 0) {
      const sim::Time event_time{static_cast<std::int64_t>(update.exchange_time_ns) * 1000};
      if (nic_arrival >= event_time) feed_path_.add((nic_arrival - event_time).nanos());
    }
    current_update_nic_arrival_ = nic_arrival;
    in_update_context_ = true;
    on_update(update, nic_arrival);
    in_update_context_ = false;
  });
}

proto::OrderId Strategy::send_order(proto::Side side, proto::Symbol symbol, proto::Price price,
                                    proto::Quantity quantity, proto::boe::TimeInForce tif) {
  const proto::OrderId id = next_client_id_++;
  proto::boe::NewOrder order;
  order.client_order_id = id;
  order.side = side;
  order.quantity = quantity;
  order.symbol = symbol;
  order.price = price;
  order.tif = tif;
  open_orders_.emplace(id, symbol);
  ++stats_.orders_sent;
  if (in_update_context_) {
    const sim::Time nic_departure = engine_.now() + config_.decision_latency;
    tick_to_trade_.add((nic_departure - current_update_nic_arrival_).nanos());
  }
  // The order leaves decision_latency from now, in its own event: carry the
  // triggering update's trace across, and close the strategy's software span
  // [market-data wire arrival, order hand-off] — the tick-to-trade hop.
  const telemetry::TraceId trace = telemetry::current_trace();
  const sim::Time md_arrival =
      in_update_context_ ? current_update_nic_arrival_ : engine_.now();
  engine_.schedule_in(config_.decision_latency, [this, order, trace, md_arrival] {
    order_sent_at_[order.client_order_id] = engine_.now();
    telemetry::TraceScope scope{trace};
    transmit(order);
    telemetry::record_span(trace, config_.name, telemetry::SpanKind::kSoftware, md_arrival,
                           engine_.now());
  });
  return id;
}

void Strategy::send_cancel(proto::OrderId client_order_id) {
  ++stats_.cancels_sent;
  proto::boe::CancelOrder cancel;
  cancel.client_order_id = client_order_id;
  const telemetry::TraceId trace = telemetry::current_trace();
  engine_.schedule_in(config_.decision_latency, [this, cancel, trace] {
    telemetry::TraceScope scope{trace};
    transmit(cancel);
  });
}

void Strategy::register_metrics(telemetry::Registry& registry,
                                const std::string& prefix) const {
  registry.gauge(prefix + ".updates_received",
                 [this] { return static_cast<double>(stats_.updates_received); });
  registry.gauge(prefix + ".orders_sent",
                 [this] { return static_cast<double>(stats_.orders_sent); });
  registry.gauge(prefix + ".cancels_sent",
                 [this] { return static_cast<double>(stats_.cancels_sent); });
  registry.gauge(prefix + ".acks", [this] { return static_cast<double>(stats_.acks); });
  registry.gauge(prefix + ".rejects", [this] { return static_cast<double>(stats_.rejects); });
  registry.gauge(prefix + ".fills", [this] { return static_cast<double>(stats_.fills); });
  registry.gauge(prefix + ".open_orders",
                 [this] { return static_cast<double>(open_orders_.size()); });
  registry.histogram_ref(prefix + ".tick_to_trade_ns", tick_to_trade_);
  registry.histogram_ref(prefix + ".order_rtt_ns", order_rtt_);
  registry.histogram_ref(prefix + ".feed_path_ns", feed_path_);
}

void Strategy::on_session_bytes(std::span<const std::byte> bytes) {
  parser_.feed(bytes);
  while (auto decoded = parser_.next()) dispatch_response(decoded->message);
}

void Strategy::dispatch_response(const proto::boe::Message& message) {
  using namespace proto::boe;
  if (const auto* ack = std::get_if<OrderAccepted>(&message)) {
    ++stats_.acks;
    if (const auto it = order_sent_at_.find(ack->client_order_id);
        it != order_sent_at_.end()) {
      order_rtt_.add((engine_.now() - it->second).nanos());
      order_sent_at_.erase(it);
    }
    on_ack(*ack);
  } else if (const auto* reject = std::get_if<OrderRejected>(&message)) {
    ++stats_.rejects;
    open_orders_.erase(reject->client_order_id);
    on_reject(*reject);
  } else if (const auto* fill = std::get_if<Fill>(&message)) {
    ++stats_.fills;
    if (fill->leaves_quantity == 0) open_orders_.erase(fill->client_order_id);
    on_fill(*fill);
  } else if (const auto* cancelled = std::get_if<OrderCancelled>(&message)) {
    open_orders_.erase(cancelled->client_order_id);
    on_cancelled(*cancelled);
  } else if (std::get_if<CancelRejected>(&message) != nullptr) {
    ++stats_.cancel_rejects;
  }
}

void Strategy::on_ack(const proto::boe::OrderAccepted&) {}
void Strategy::on_reject(const proto::boe::OrderRejected&) {}
void Strategy::on_fill(const proto::boe::Fill&) {}
void Strategy::on_cancelled(const proto::boe::OrderCancelled&) {}

// --- MomentumTaker -----------------------------------------------------------

MomentumTaker::MomentumTaker(sim::Scheduler& engine, StrategyConfig config, proto::Price tick,
                             proto::Quantity clip)
    : Strategy(engine, std::move(config)), tick_(tick), clip_(clip) {}

void MomentumTaker::on_update(const proto::norm::Update& update, sim::Time /*nic_arrival*/) {
  if (update.kind != proto::norm::UpdateKind::kTradePrint) return;
  State& s = state_[update.symbol];
  if (s.last_price != 0) {
    if (update.price > s.last_price) {
      s.run = s.run >= 0 ? s.run + 1 : 1;
    } else if (update.price < s.last_price) {
      s.run = s.run <= 0 ? s.run - 1 : -1;
    }
    if (s.run >= 2) {
      (void)send_order(proto::Side::kBuy, update.symbol, update.price + tick_, clip_,
                       proto::boe::TimeInForce::kImmediateOrCancel);
      s.run = 0;
    } else if (s.run <= -2) {
      (void)send_order(proto::Side::kSell, update.symbol, update.price - tick_, clip_,
                       proto::boe::TimeInForce::kImmediateOrCancel);
      s.run = 0;
    }
  }
  s.last_price = update.price;
}

// --- MarketMaker -------------------------------------------------------------

MarketMaker::MarketMaker(sim::Scheduler& engine, StrategyConfig config, proto::Price half_spread,
                         proto::Quantity clip)
    : Strategy(engine, std::move(config)), half_spread_(half_spread), clip_(clip) {}

void MarketMaker::on_update(const proto::norm::Update& update, sim::Time /*nic_arrival*/) {
  if (update.price <= 0) return;
  Quote& quote = quotes_[update.symbol];
  // Reprice when the market has drifted more than half the spread from the
  // quote anchor (§2: repricing quickly is critical).
  if (quote.anchor != 0 && std::abs(update.price - quote.anchor) < half_spread_ / 2) return;
  if (quote.bid_id != 0) send_cancel(quote.bid_id);
  if (quote.ask_id != 0) send_cancel(quote.ask_id);
  quote.anchor = update.price;
  quote.bid_id = send_order(proto::Side::kBuy, update.symbol, update.price - half_spread_, clip_);
  quote.ask_id = send_order(proto::Side::kSell, update.symbol, update.price + half_spread_, clip_);
}

void MarketMaker::on_fill(const proto::boe::Fill& fill) {
  // tsn-lint: allow(unordered-iter) order-independent: entries matched by unique order id
  for (auto& [symbol, quote] : quotes_) {
    if (quote.bid_id == fill.client_order_id && fill.leaves_quantity == 0) quote.bid_id = 0;
    if (quote.ask_id == fill.client_order_id && fill.leaves_quantity == 0) quote.ask_id = 0;
  }
}

// --- CompliantMarketMaker ----------------------------------------------------

CompliantMarketMaker::CompliantMarketMaker(sim::Scheduler& engine, StrategyConfig config,
                                           proto::Price half_spread, proto::Quantity clip,
                                           proto::Price tick)
    : Strategy(engine, std::move(config)),
      half_spread_(half_spread),
      clip_(clip),
      tick_(tick) {}

void CompliantMarketMaker::on_update(const proto::norm::Update& update,
                                     sim::Time /*nic_arrival*/) {
  monitor_.on_update(update);
  if (update.price <= 0) return;
  Quote& quote = quotes_[update.symbol];
  if (quote.anchor != 0 && std::abs(update.price - quote.anchor) < half_spread_ / 2) return;
  if (quote.bid_id != 0) send_cancel(quote.bid_id);
  if (quote.ask_id != 0) send_cancel(quote.ask_id);
  quote.anchor = update.price;
  proto::Price bid = update.price - half_spread_;
  proto::Price ask = update.price + half_spread_;
  // SEC gate: never post a quote that locks or crosses an away market.
  const proto::Price compliant_bid =
      monitor_.clamp_to_compliant(update.symbol, proto::Side::kBuy, bid, tick_);
  const proto::Price compliant_ask =
      monitor_.clamp_to_compliant(update.symbol, proto::Side::kSell, ask, tick_);
  if (compliant_bid != bid || compliant_ask != ask) ++quotes_clamped_;
  quote.bid_id = send_order(proto::Side::kBuy, update.symbol, compliant_bid, clip_);
  quote.ask_id = send_order(proto::Side::kSell, update.symbol, compliant_ask, clip_);
}

// --- CrossVenueArb -----------------------------------------------------------

CrossVenueArb::CrossVenueArb(sim::Scheduler& engine, StrategyConfig config, std::uint8_t venue_a,
                             std::uint8_t venue_b, proto::Price threshold,
                             proto::Quantity clip)
    : Strategy(engine, std::move(config)),
      venue_a_(venue_a),
      venue_b_(venue_b),
      threshold_(threshold),
      clip_(clip) {}

void CrossVenueArb::on_update(const proto::norm::Update& update, sim::Time /*nic_arrival*/) {
  if (update.price <= 0) return;
  VenuePrices& v = prices_[update.symbol];
  if (update.exchange_id == venue_a_) {
    v.price_a = update.price;
  } else if (update.exchange_id == venue_b_) {
    v.price_b = update.price;
  } else {
    return;
  }
  if (v.price_a == 0 || v.price_b == 0) return;
  const proto::Price edge = v.price_a - v.price_b;
  if (edge >= threshold_) {
    ++opportunities_;
    // Buy cheap on B, sell rich on A.
    (void)send_order(proto::Side::kBuy, update.symbol, v.price_b, clip_,
                     proto::boe::TimeInForce::kImmediateOrCancel);
    (void)send_order(proto::Side::kSell, update.symbol, v.price_a, clip_,
                     proto::boe::TimeInForce::kImmediateOrCancel);
  } else if (-edge >= threshold_) {
    ++opportunities_;
    (void)send_order(proto::Side::kBuy, update.symbol, v.price_a, clip_,
                     proto::boe::TimeInForce::kImmediateOrCancel);
    (void)send_order(proto::Side::kSell, update.symbol, v.price_b, clip_,
                     proto::boe::TimeInForce::kImmediateOrCancel);
  }
}

}  // namespace tsn::trading
