#include "trading/filter.hpp"

namespace tsn::trading {

PlacementAnalysis analyze_placement(const FilterWorkload& workload, FilterPlacement placement,
                                    int shared_consumers) noexcept {
  PlacementAnalysis out;
  const double discard_s = workload.discard_cost.seconds();
  const double process_s = workload.process_cost.seconds();
  const double kept_rate = workload.event_rate * workload.keep_fraction;
  const double dropped_rate = workload.event_rate - kept_rate;
  switch (placement) {
    case FilterPlacement::kInProcess:
      out.strategy_utilization = kept_rate * process_s + dropped_rate * discard_s;
      out.filter_utilization = 0.0;
      out.cores_per_consumer = 1.0;
      break;
    case FilterPlacement::kDedicatedCore:
      // The filter core touches everything; the strategy core only the keep.
      out.filter_utilization = workload.event_rate * discard_s;
      out.strategy_utilization = kept_rate * process_s;
      out.cores_per_consumer = 2.0;
      break;
    case FilterPlacement::kMiddlebox:
      out.filter_utilization = workload.event_rate * discard_s;
      out.strategy_utilization = kept_rate * process_s;
      out.cores_per_consumer =
          1.0 + 1.0 / static_cast<double>(shared_consumers < 1 ? 1 : shared_consumers);
      break;
  }
  out.feasible = out.strategy_utilization <= 1.0 && out.filter_utilization <= 1.0;
  return out;
}

double in_process_feasibility_boundary(double event_rate, sim::Duration discard_cost,
                                       sim::Duration process_cost) noexcept {
  // Solve rate * (k*process + (1-k)*discard) = 1 for k.
  const double discard_s = discard_cost.seconds();
  const double process_s = process_cost.seconds();
  const double budget = 1.0 / event_rate;
  if (process_s <= discard_s) return budget >= process_s ? 1.0 : 0.0;
  const double k = (budget - discard_s) / (process_s - discard_s);
  if (k < 0.0) return 0.0;
  if (k > 1.0) return 1.0;
  return k;
}

}  // namespace tsn::trading
