// Market-data normalizer (§2).
//
// Subscribes to one exchange's raw feed units, decodes the exchange-native
// TsnPitch messages, reconstructs enough book state to attribute executes/
// deletes/modifies to symbols, converts everything into the firm's NORM
// format, tags BBO-affecting updates, and republishes on the firm's own
// multicast partitions under the firm's partitioning scheme. This performs
// the common processing once so dozens of strategy servers don't repeat it.
//
// The normalizer also watches feed sequence numbers per unit and counts
// gaps — the loss signal that matters operationally when mroute tables
// overflow or merged feeds saturate.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mcast/responder.hpp"
#include "net/stack.hpp"
#include "proto/norm.hpp"
#include "proto/partition.hpp"
#include "proto/pitch.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::trading {

struct NormalizerConfig {
  std::string name = "norm";
  std::uint8_t exchange_id = 0;
  // Exchange feed groups to subscribe to (a subset of the exchange's units).
  std::vector<net::Ipv4Addr> feed_groups;
  std::uint16_t feed_port = 30001;
  // Snapshot (gap-recovery) channel. When configured, a detected sequence
  // gap puts the affected unit into recovery: live messages are buffered,
  // the next snapshot cycle rebuilds the unit's order state, and buffered
  // messages past the snapshot's resume point are replayed. Requires
  // exchange_partitioning (to know which symbols belong to the unit).
  std::vector<net::Ipv4Addr> snapshot_groups;
  std::uint16_t snapshot_port = 30002;
  std::shared_ptr<const proto::PartitionScheme> exchange_partitioning;
  // Firm-side output partitioning.
  std::shared_ptr<const proto::PartitionScheme> partitioning;
  net::Ipv4Addr out_group_base{239, 200, 0, 0};
  std::uint16_t out_port = 31001;
  std::size_t out_mtu_payload = 1458;
  // Kernel-bypass software hop (§3: below 1 us on tuned hosts).
  sim::Duration software_latency = sim::nanos(std::int64_t{800});
  net::MacAddr in_mac;
  net::Ipv4Addr in_ip;
  net::MacAddr out_mac;
  net::Ipv4Addr out_ip;
};

struct NormalizerStats {
  std::uint64_t datagrams_in = 0;
  std::uint64_t messages_in = 0;
  std::uint64_t updates_out = 0;
  std::uint64_t datagrams_out = 0;
  std::uint64_t bbo_updates = 0;
  std::uint64_t unknown_orders = 0;  // executes/deletes for unseen order ids
  std::uint64_t sequence_gaps = 0;
  std::uint64_t messages_lost = 0;  // inferred from gap sizes
  // Snapshot recovery.
  std::uint64_t resyncs_started = 0;
  std::uint64_t resyncs_completed = 0;
  std::uint64_t snapshot_orders_applied = 0;
  std::uint64_t messages_buffered_in_recovery = 0;
  std::uint64_t messages_replayed_after_recovery = 0;
};

class Normalizer {
 public:
  Normalizer(sim::Scheduler& engine, NormalizerConfig config);
  ~Normalizer();
  Normalizer(const Normalizer&) = delete;
  Normalizer& operator=(const Normalizer&) = delete;

  [[nodiscard]] net::Nic& in_nic() noexcept { return *in_nic_; }
  [[nodiscard]] net::Nic& out_nic() noexcept { return *out_nic_; }

  // Joins every configured feed group (and keeps the membership alive
  // against switch aging via an IGMP responder). Call after the NICs are
  // wired into the topology.
  void join_feeds();

  [[nodiscard]] net::Ipv4Addr partition_group(std::uint32_t partition) const noexcept {
    return net::Ipv4Addr{config_.out_group_base.value() + partition};
  }
  [[nodiscard]] std::uint32_t partition_count() const noexcept {
    return config_.partitioning->partition_count();
  }
  [[nodiscard]] const NormalizerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const NormalizerConfig& config() const noexcept { return config_; }

  // Registers decode/republish/gap counters as gauges under "<prefix>".
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const;

  // Monitoring view: the normalizer's reconstructed best bid/ask for a
  // symbol (zeros for missing sides; nullopt when the symbol is unknown).
  struct ReconstructedBbo {
    proto::Price bid = 0;
    proto::Price ask = 0;
  };
  [[nodiscard]] std::optional<ReconstructedBbo> best_of(const proto::Symbol& symbol) const;
  [[nodiscard]] std::size_t tracked_orders() const noexcept { return orders_.size(); }

 private:
  struct OrderInfo {
    proto::Symbol symbol;
    proto::Side side = proto::Side::kBuy;
    proto::Price price = 0;
    proto::Quantity quantity = 0;
  };

  // Aggregated price ladder for BBO detection.
  struct Ladder {
    std::map<proto::Price, proto::Quantity, std::greater<>> bids;
    std::map<proto::Price, proto::Quantity, std::less<>> asks;

    [[nodiscard]] std::pair<proto::Price, proto::Price> best() const noexcept {
      return {bids.empty() ? 0 : bids.begin()->first, asks.empty() ? 0 : asks.begin()->first};
    }
  };

  struct Partition;

  void on_feed_datagram(std::span<const std::byte> payload, sim::Time arrival);
  void on_snapshot_datagram(std::span<const std::byte> payload);
  // Slow lane: variant dispatch, used for snapshot replay and the buffered
  // recovery tail (which must hold Messages). Counts the message, then
  // forwards to the per-type handler the fast lane shares.
  void handle_message(const proto::pitch::Message& message);
  // Fast lane: flat-column switch over one batch-decoded datagram — no
  // variant construction, no per-message std::function hop.
  void apply_batch(const proto::pitch::DecodedBatch& batch);
  void handle_time(std::uint32_t seconds_since_midnight);
  void handle_add(const proto::pitch::AddOrder& add);
  void handle_exec(const proto::pitch::OrderExecuted& exec);
  void handle_reduce(const proto::pitch::ReduceSize& reduce);
  void handle_modify(const proto::pitch::ModifyOrder& modify);
  void handle_delete(const proto::pitch::DeleteOrder& del);
  void handle_trade(const proto::pitch::Trade& trade);
  [[nodiscard]] OrderInfo* resolve(proto::OrderId id);
  void emit(const proto::norm::Update& update);
  // Applies a depth change; when the side's top of book moved, returns the
  // new best (price 0 / quantity 0 for an emptied side).
  struct TopChange {
    bool changed = false;
    proto::Price best = 0;
    proto::Quantity quantity = 0;
  };
  TopChange apply_depth(const proto::Symbol& symbol, proto::Side side, proto::Price price,
                        std::int64_t delta);
  // Emits the explicit top-of-book update real normalized feeds carry.
  void emit_bbo(const proto::Symbol& symbol, proto::Side side, const TopChange& change,
                std::uint64_t exchange_time_ns);
  void purge_unit_state(std::uint8_t unit);
  [[nodiscard]] bool recovery_enabled() const noexcept {
    return !config_.snapshot_groups.empty();
  }

  sim::Scheduler& engine_;
  NormalizerConfig config_;
  std::unique_ptr<net::Host> host_;
  net::Nic* in_nic_ = nullptr;
  net::Nic* out_nic_ = nullptr;
  std::unique_ptr<net::NetStack> in_stack_;
  std::unique_ptr<net::NetStack> out_stack_;
  std::unique_ptr<mcast::IgmpResponder> responder_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  // Reusable batch-decode buffer for the fast lane (warm after the first
  // datagram; columns keep their capacity).
  proto::pitch::DecodedBatch batch_;
  std::unordered_map<proto::OrderId, OrderInfo> orders_;
  std::unordered_map<proto::Symbol, Ladder> ladders_;
  std::unordered_map<std::uint8_t, std::uint32_t> expected_seq_;  // per unit
  std::uint32_t clock_seconds_ = 0;
  // Wire arrival of the feed datagram currently being processed (software
  // span start for updates it triggers).
  sim::Time current_input_arrival_;

  // Recovery state, per unit.
  struct Recovery {
    bool recovering = false;
    bool snapshot_active = false;
    std::uint32_t resume_sequence = 0;
    std::vector<std::pair<std::uint32_t, proto::pitch::Message>> buffered;
  };
  std::unordered_map<std::uint8_t, Recovery> recovery_;
  static constexpr std::size_t kRecoveryBufferLimit = 100'000;

  NormalizerStats stats_;
};

}  // namespace tsn::trading
