#include "trading/normalizer.hpp"

#include <stdexcept>
#include <utility>

#include "mcast/subscribe.hpp"
#include "telemetry/trace.hpp"

namespace tsn::trading {

// Per-output-partition packing state.
struct Normalizer::Partition {
  Partition(Normalizer& owner, std::uint16_t index)
      : group(owner.partition_group(index)),
        builder(index, owner.config_.out_mtu_payload,
                [&owner, this](std::vector<std::byte> payload,
                               const proto::norm::DatagramHeader&) {
                  owner.out_stack_->send_multicast(group, owner.config_.out_port, payload);
                  ++owner.stats_.datagrams_out;
                }) {}

  net::Ipv4Addr group;
  proto::norm::DatagramBuilder builder;
  bool flush_scheduled = false;
};

Normalizer::Normalizer(sim::Scheduler& engine, NormalizerConfig config)
    : engine_(engine), config_(std::move(config)) {
  if (!config_.partitioning) throw std::invalid_argument{"normalizer requires partitioning"};
  host_ = std::make_unique<net::Host>(engine_, config_.name, config_.software_latency);
  in_nic_ = &host_->add_nic("md-in", config_.in_mac, config_.in_ip);
  out_nic_ = &host_->add_nic("md-out", config_.out_mac, config_.out_ip);
  in_stack_ = std::make_unique<net::NetStack>(*in_nic_);
  out_stack_ = std::make_unique<net::NetStack>(*out_nic_);
  responder_ = std::make_unique<mcast::IgmpResponder>(*in_stack_);

  const std::uint32_t partitions = config_.partitioning->partition_count();
  partitions_.reserve(partitions);
  for (std::uint32_t p = 0; p < partitions; ++p) {
    partitions_.push_back(std::make_unique<Partition>(*this, static_cast<std::uint16_t>(p)));
  }

  in_stack_->bind_udp(config_.feed_port,
                      [this](const net::Ipv4Header&, const net::UdpHeader&,
                             std::span<const std::byte> payload, sim::Time arrival) {
                        on_feed_datagram(payload, arrival);
                      });
  if (recovery_enabled()) {
    if (!config_.exchange_partitioning) {
      throw std::invalid_argument{
          "snapshot recovery requires the exchange's partitioning scheme"};
    }
    in_stack_->bind_udp(config_.snapshot_port,
                        [this](const net::Ipv4Header&, const net::UdpHeader&,
                               std::span<const std::byte> payload, sim::Time) {
                          on_snapshot_datagram(payload);
                        });
  }
}

Normalizer::~Normalizer() = default;

void Normalizer::join_feeds() {
  for (const auto group : config_.feed_groups) responder_->join(group);
  for (const auto group : config_.snapshot_groups) responder_->join(group);
}

void Normalizer::on_feed_datagram(std::span<const std::byte> payload, sim::Time arrival) {
  const auto header = proto::pitch::peek_header(payload);
  if (!header) return;
  // Wire arrival of the datagram being processed: the software span an
  // emitted update is attributed to starts here (the NIC rx delay is part
  // of the software hop, §3).
  current_input_arrival_ = arrival;
  ++stats_.datagrams_in;
  // Gap detection per unit.
  auto [it, inserted] = expected_seq_.emplace(header->unit, header->sequence);
  if (!inserted) {
    if (header->sequence > it->second) {
      ++stats_.sequence_gaps;
      stats_.messages_lost += header->sequence - it->second;
      if (recovery_enabled()) {
        Recovery& recovery = recovery_[header->unit];
        if (!recovery.recovering) {
          recovery.recovering = true;
          recovery.snapshot_active = false;
          recovery.buffered.clear();
          ++stats_.resyncs_started;
        } else {
          // A second gap while recovering punches a hole in the buffered
          // tail: it cannot be replayed. Abandon the in-flight cycle and
          // rebuild from the next snapshot with a fresh buffer.
          recovery.buffered.clear();
          recovery.snapshot_active = false;
        }
      }
    }
  }
  it->second = header->sequence + header->count;

  // During recovery, buffer the live stream for replay past the snapshot's
  // resume point instead of applying it to stale state.
  if (recovery_enabled()) {
    if (auto rec_it = recovery_.find(header->unit);
        rec_it != recovery_.end() && rec_it->second.recovering) {
      Recovery& recovery = rec_it->second;
      std::uint32_t seq = header->sequence;
      (void)proto::pitch::for_each_message(
          payload, [&recovery, &seq, this](const proto::pitch::Message& m) {
            if (recovery.buffered.size() < kRecoveryBufferLimit) {
              recovery.buffered.emplace_back(seq, m);
              ++stats_.messages_buffered_in_recovery;
            }
            ++seq;
          });
      return;
    }
  }
  // Fast lane (ROADMAP item 4): one batch decode into the reusable SoA
  // buffer, then a flat-column switch — no variant construction and no
  // per-message callback hop. A malformed tail leaves the valid prefix in
  // `batch_.count`, matching the slow lane's prefix semantics. Recovery
  // bypasses this path above: the buffered tail must hold Messages.
  (void)proto::pitch::decode_batch(payload, batch_);
  apply_batch(batch_);
}

// tsn-lint: hotpath
void Normalizer::apply_batch(const proto::pitch::DecodedBatch& batch) {
  using proto::pitch::DecodedKind;
  for (std::size_t i = 0; i < batch.count; ++i) {
    ++stats_.messages_in;
    switch (batch.kind[i]) {
      case DecodedKind::kTime:
        handle_time(batch.u32a[i]);
        break;
      case DecodedKind::kAddOrder:
        handle_add({batch.u32a[i], batch.order_id[i], batch.side[i], batch.quantity[i],
                    batch.symbol[i], batch.price[i], batch.flags[i]});
        break;
      case DecodedKind::kOrderExecuted:
        handle_exec({batch.u32a[i], batch.order_id[i], batch.quantity[i],
                     batch.execution_id[i]});
        break;
      case DecodedKind::kReduceSize:
        handle_reduce({batch.u32a[i], batch.order_id[i], batch.quantity[i]});
        break;
      case DecodedKind::kModifyOrder:
        handle_modify({batch.u32a[i], batch.order_id[i], batch.quantity[i], batch.price[i],
                       batch.flags[i]});
        break;
      case DecodedKind::kDeleteOrder:
        handle_delete({batch.u32a[i], batch.order_id[i]});
        break;
      case DecodedKind::kTrade:
        handle_trade({batch.u32a[i], batch.order_id[i], batch.side[i], batch.quantity[i],
                      batch.symbol[i], batch.price[i], batch.execution_id[i]});
        break;
      case DecodedKind::kSnapshotBegin:
      case DecodedKind::kSnapshotEnd:
        // No book state on the live feed: counted and dropped, exactly like
        // the variant path.
        break;
    }
  }
}

void Normalizer::purge_unit_state(std::uint8_t unit) {
  const auto& scheme = *config_.exchange_partitioning;
  // tsn-lint: allow(unordered-iter) order-independent: filtered erase, same surviving set
  for (auto it = orders_.begin(); it != orders_.end();) {
    if (scheme.partition_of(it->second.symbol, proto::InstrumentKind::kEquity) == unit) {
      it = orders_.erase(it);
    } else {
      ++it;
    }
  }
  // tsn-lint: allow(unordered-iter) order-independent: filtered erase, same surviving set
  for (auto it = ladders_.begin(); it != ladders_.end();) {
    if (scheme.partition_of(it->first, proto::InstrumentKind::kEquity) == unit) {
      it = ladders_.erase(it);
    } else {
      ++it;
    }
  }
}

void Normalizer::on_snapshot_datagram(std::span<const std::byte> payload) {
  const auto header = proto::pitch::peek_header(payload);
  if (!header) return;
  const std::uint8_t unit = header->unit;
  auto rec_it = recovery_.find(unit);
  if (rec_it == recovery_.end() || !rec_it->second.recovering) return;  // healthy: ignore
  Recovery& recovery = rec_it->second;
  (void)proto::pitch::for_each_message(payload, [&](const proto::pitch::Message& m) {
    if (const auto* begin = std::get_if<proto::pitch::SnapshotBegin>(&m)) {
      // A fresh cycle: rebuild from scratch.
      purge_unit_state(unit);
      recovery.snapshot_active = true;
      recovery.resume_sequence = begin->next_sequence;
      return;
    }
    if (!recovery.snapshot_active) return;  // mid-cycle join: wait for the next begin
    if (const auto* add = std::get_if<proto::pitch::AddOrder>(&m)) {
      orders_[add->order_id] =
          OrderInfo{add->symbol, add->side, add->price, add->quantity};
      (void)apply_depth(add->symbol, add->side, add->price, add->quantity);
      ++stats_.snapshot_orders_applied;
      return;
    }
    if (std::get_if<proto::pitch::SnapshotEnd>(&m) != nullptr) {
      // Snapshot complete: replay the buffered live tail past the resume
      // point, then return to normal processing.
      recovery.snapshot_active = false;
      recovery.recovering = false;
      for (const auto& [seq, buffered] : recovery.buffered) {
        if (seq < recovery.resume_sequence) continue;  // included in the snapshot
        handle_message(buffered);
        ++stats_.messages_replayed_after_recovery;
      }
      recovery.buffered.clear();
      ++stats_.resyncs_completed;
    }
  });
}

Normalizer::TopChange Normalizer::apply_depth(const proto::Symbol& symbol,
                                              proto::Side side, proto::Price price,
                                              std::int64_t delta) {
  Ladder& ladder = ladders_[symbol];
  auto top_of = [&](auto& book_side) -> std::pair<proto::Price, proto::Quantity> {
    if (book_side.empty()) return {0, 0};
    return {book_side.begin()->first, book_side.begin()->second};
  };
  auto apply = [&](auto& book_side) {
    auto level = book_side.find(price);
    if (level == book_side.end()) {
      if (delta > 0) book_side.emplace(price, static_cast<proto::Quantity>(delta));
      return;
    }
    const std::int64_t next = static_cast<std::int64_t>(level->second) + delta;
    if (next <= 0) {
      book_side.erase(level);
    } else {
      level->second = static_cast<proto::Quantity>(next);
    }
  };
  TopChange out;
  if (side == proto::Side::kBuy) {
    const auto before = top_of(ladder.bids);
    apply(ladder.bids);
    const auto after = top_of(ladder.bids);
    if (after != before) out = TopChange{true, after.first, after.second};
  } else {
    const auto before = top_of(ladder.asks);
    apply(ladder.asks);
    const auto after = top_of(ladder.asks);
    if (after != before) out = TopChange{true, after.first, after.second};
  }
  return out;
}

void Normalizer::emit_bbo(const proto::Symbol& symbol, proto::Side side,
                          const TopChange& change, std::uint64_t exchange_time_ns) {
  if (!change.changed) return;
  ++stats_.bbo_updates;
  proto::norm::Update update;
  update.kind = proto::norm::UpdateKind::kBboUpdate;
  update.exchange_id = config_.exchange_id;
  update.side = side;
  update.symbol = symbol;
  update.price = change.best;        // the *new* best (0 = side emptied)
  update.quantity = change.quantity;  // depth at the new best
  update.order_id = 0;
  update.exchange_time_ns = exchange_time_ns;
  emit(update);
}

void Normalizer::handle_message(const proto::pitch::Message& message) {
  ++stats_.messages_in;
  using namespace proto::pitch;
  if (const auto* time = std::get_if<Time>(&message)) {
    handle_time(time->seconds_since_midnight);
  } else if (const auto* add = std::get_if<AddOrder>(&message)) {
    handle_add(*add);
  } else if (const auto* exec = std::get_if<OrderExecuted>(&message)) {
    handle_exec(*exec);
  } else if (const auto* reduce = std::get_if<ReduceSize>(&message)) {
    handle_reduce(*reduce);
  } else if (const auto* modify = std::get_if<ModifyOrder>(&message)) {
    handle_modify(*modify);
  } else if (const auto* del = std::get_if<DeleteOrder>(&message)) {
    handle_delete(*del);
  } else if (const auto* trade = std::get_if<Trade>(&message)) {
    handle_trade(*trade);
  }
  // SnapshotBegin/End on the live feed: counted and dropped.
}

Normalizer::OrderInfo* Normalizer::resolve(proto::OrderId id) {
  auto it = orders_.find(id);
  if (it == orders_.end()) {
    ++stats_.unknown_orders;
    return nullptr;
  }
  return &it->second;
}

void Normalizer::handle_time(std::uint32_t seconds_since_midnight) {
  clock_seconds_ = seconds_since_midnight;  // clock messages are not republished
}

void Normalizer::handle_add(const proto::pitch::AddOrder& add) {
  orders_[add.order_id] = OrderInfo{add.symbol, add.side, add.price, add.quantity};
  proto::norm::Update update;
  update.exchange_id = config_.exchange_id;
  update.kind = proto::norm::UpdateKind::kOrderAdd;
  update.side = add.side;
  update.symbol = add.symbol;
  update.price = add.price;
  update.quantity = add.quantity;
  update.order_id = add.order_id;
  update.exchange_time_ns =
      std::uint64_t{clock_seconds_} * 1'000'000'000ULL + add.time_offset_ns;
  const auto change = apply_depth(add.symbol, add.side, add.price, add.quantity);
  emit(update);
  emit_bbo(add.symbol, add.side, change, update.exchange_time_ns);
}

void Normalizer::handle_exec(const proto::pitch::OrderExecuted& exec) {
  OrderInfo* info = resolve(exec.order_id);
  if (info == nullptr) return;
  const proto::Quantity traded = std::min(exec.executed_quantity, info->quantity);
  info->quantity -= traded;
  proto::norm::Update update;
  update.exchange_id = config_.exchange_id;
  update.kind = proto::norm::UpdateKind::kTradePrint;
  update.side = info->side;
  update.symbol = info->symbol;
  update.price = info->price;
  update.quantity = traded;
  update.order_id = exec.order_id;
  update.exchange_time_ns =
      std::uint64_t{clock_seconds_} * 1'000'000'000ULL + exec.time_offset_ns;
  const auto side = info->side;
  const auto symbol = info->symbol;
  const auto change =
      apply_depth(info->symbol, info->side, info->price, -static_cast<std::int64_t>(traded));
  if (info->quantity == 0) orders_.erase(exec.order_id);
  emit(update);
  emit_bbo(symbol, side, change, update.exchange_time_ns);
}

void Normalizer::handle_reduce(const proto::pitch::ReduceSize& reduce) {
  OrderInfo* info = resolve(reduce.order_id);
  if (info == nullptr) return;
  const proto::Quantity cut = std::min(reduce.cancelled_quantity, info->quantity);
  info->quantity -= cut;
  proto::norm::Update update;
  update.exchange_id = config_.exchange_id;
  update.kind = proto::norm::UpdateKind::kOrderModify;
  update.side = info->side;
  update.symbol = info->symbol;
  update.price = info->price;
  update.quantity = info->quantity;
  update.order_id = reduce.order_id;
  update.exchange_time_ns =
      std::uint64_t{clock_seconds_} * 1'000'000'000ULL + reduce.time_offset_ns;
  const auto side = info->side;
  const auto symbol = info->symbol;
  const auto change =
      apply_depth(info->symbol, info->side, info->price, -static_cast<std::int64_t>(cut));
  if (info->quantity == 0) orders_.erase(reduce.order_id);
  emit(update);
  emit_bbo(symbol, side, change, update.exchange_time_ns);
}

void Normalizer::handle_modify(const proto::pitch::ModifyOrder& modify) {
  OrderInfo* info = resolve(modify.order_id);
  if (info == nullptr) return;
  proto::norm::Update update;
  update.exchange_id = config_.exchange_id;
  update.kind = proto::norm::UpdateKind::kOrderModify;
  update.side = info->side;
  update.symbol = info->symbol;
  update.price = modify.price;
  update.quantity = modify.quantity;
  update.order_id = modify.order_id;
  update.exchange_time_ns =
      std::uint64_t{clock_seconds_} * 1'000'000'000ULL + modify.time_offset_ns;
  // Two ladder edits (leave the old level, enter the new one): emit one
  // BBO update describing the final top, not the transient middle state.
  const auto first = apply_depth(info->symbol, info->side, info->price,
                                 -static_cast<std::int64_t>(info->quantity));
  info->price = modify.price;
  info->quantity = modify.quantity;
  const auto second =
      apply_depth(info->symbol, info->side, info->price, modify.quantity);
  emit(update);
  if (first.changed || second.changed) {
    TopChange final_top = second;
    if (!second.changed) {
      // The second edit left the top where the first edit put it.
      const auto bbo = best_of(info->symbol);
      final_top.changed = true;
      if (info->side == proto::Side::kBuy) {
        final_top.best = bbo ? bbo->bid : 0;
      } else {
        final_top.best = bbo ? bbo->ask : 0;
      }
      final_top.quantity = 0;  // unknown without a depth query; price is the signal
    }
    emit_bbo(info->symbol, info->side, final_top, update.exchange_time_ns);
  }
}

void Normalizer::handle_delete(const proto::pitch::DeleteOrder& del) {
  OrderInfo* info = resolve(del.order_id);
  if (info == nullptr) return;
  proto::norm::Update update;
  update.exchange_id = config_.exchange_id;
  update.kind = proto::norm::UpdateKind::kOrderDelete;
  update.side = info->side;
  update.symbol = info->symbol;
  update.price = info->price;
  update.quantity = 0;
  update.order_id = del.order_id;
  update.exchange_time_ns =
      std::uint64_t{clock_seconds_} * 1'000'000'000ULL + del.time_offset_ns;
  const auto side = info->side;
  const auto symbol = info->symbol;
  const auto change = apply_depth(info->symbol, info->side, info->price,
                                  -static_cast<std::int64_t>(info->quantity));
  orders_.erase(del.order_id);
  emit(update);
  emit_bbo(symbol, side, change, update.exchange_time_ns);
}

void Normalizer::handle_trade(const proto::pitch::Trade& trade) {
  proto::norm::Update update;
  update.exchange_id = config_.exchange_id;
  update.kind = proto::norm::UpdateKind::kTradePrint;
  update.side = trade.side;
  update.symbol = trade.symbol;
  update.price = trade.price;
  update.quantity = trade.quantity;
  update.order_id = trade.order_id;
  update.exchange_time_ns =
      std::uint64_t{clock_seconds_} * 1'000'000'000ULL + trade.time_offset_ns;
  emit(update);
}

void Normalizer::register_metrics(telemetry::Registry& registry,
                                  const std::string& prefix) const {
  registry.gauge(prefix + ".datagrams_in",
                 [this] { return static_cast<double>(stats_.datagrams_in); });
  registry.gauge(prefix + ".messages_in",
                 [this] { return static_cast<double>(stats_.messages_in); });
  registry.gauge(prefix + ".updates_out",
                 [this] { return static_cast<double>(stats_.updates_out); });
  registry.gauge(prefix + ".datagrams_out",
                 [this] { return static_cast<double>(stats_.datagrams_out); });
  registry.gauge(prefix + ".bbo_updates",
                 [this] { return static_cast<double>(stats_.bbo_updates); });
  registry.gauge(prefix + ".sequence_gaps",
                 [this] { return static_cast<double>(stats_.sequence_gaps); });
  registry.gauge(prefix + ".messages_lost",
                 [this] { return static_cast<double>(stats_.messages_lost); });
  registry.gauge(prefix + ".unknown_orders",
                 [this] { return static_cast<double>(stats_.unknown_orders); });
  registry.gauge(prefix + ".resyncs_started",
                 [this] { return static_cast<double>(stats_.resyncs_started); });
  registry.gauge(prefix + ".resyncs_completed",
                 [this] { return static_cast<double>(stats_.resyncs_completed); });
  registry.gauge(prefix + ".snapshot_orders_applied",
                 [this] { return static_cast<double>(stats_.snapshot_orders_applied); });
  registry.gauge(prefix + ".messages_buffered_in_recovery",
                 [this] { return static_cast<double>(stats_.messages_buffered_in_recovery); });
  registry.gauge(prefix + ".messages_replayed_after_recovery",
                 [this] { return static_cast<double>(stats_.messages_replayed_after_recovery); });
  registry.gauge(prefix + ".tracked_orders",
                 [this] { return static_cast<double>(tracked_orders()); });
}

std::optional<Normalizer::ReconstructedBbo> Normalizer::best_of(
    const proto::Symbol& symbol) const {
  const auto it = ladders_.find(symbol);
  if (it == ladders_.end()) return std::nullopt;
  const auto [bid, ask] = it->second.best();
  return ReconstructedBbo{bid, ask};
}

void Normalizer::emit(const proto::norm::Update& update) {
  const std::uint32_t partition = config_.partitioning->partition_of(
      update.symbol, proto::InstrumentKind::kEquity);
  Partition& out = *partitions_.at(partition);
  const auto now_ns = static_cast<std::uint64_t>(engine_.now().picos() / 1000);
  out.builder.append(update, now_ns);
  ++stats_.updates_out;
  if (!out.flush_scheduled) {
    out.flush_scheduled = true;
    // The flush runs as its own event: carry the triggering datagram's trace
    // into it so the republished frames join the same trace, and close the
    // normalizer's software span [feed wire arrival, flush/hand-off].
    const telemetry::TraceId trace = telemetry::current_trace();
    const sim::Time t_in = current_input_arrival_;
    engine_.schedule_in(sim::Duration::zero(), [this, &out, trace, t_in] {
      out.flush_scheduled = false;
      telemetry::TraceScope scope{trace};
      out.builder.flush();
      telemetry::record_span(trace, config_.name, telemetry::SpanKind::kSoftware, t_in,
                             engine_.now());
    });
  }
}

}  // namespace tsn::trading
