#include "trading/arbiter.hpp"

#include <utility>

#include "core/check.hpp"
#include "proto/pitch.hpp"

namespace tsn::trading {

LineArbiter::LineArbiter(sim::Scheduler& engine, ArbiterConfig config)
    : engine_(engine), config_(std::move(config)) {
  host_ = std::make_unique<net::Host>(engine_, config_.name, config_.software_latency);
  a_nic_ = &host_->add_nic("a-in", config_.a_mac, config_.a_ip);
  b_nic_ = &host_->add_nic("b-in", config_.b_mac, config_.b_ip);
  out_nic_ = &host_->add_nic("out", config_.out_mac, config_.out_ip);
  a_stack_ = std::make_unique<net::NetStack>(*a_nic_);
  b_stack_ = std::make_unique<net::NetStack>(*b_nic_);
  out_stack_ = std::make_unique<net::NetStack>(*out_nic_);
  a_responder_ = std::make_unique<mcast::IgmpResponder>(*a_stack_);
  b_responder_ = std::make_unique<mcast::IgmpResponder>(*b_stack_);

  a_stack_->bind_udp(config_.feed_port,
                     [this](const net::Ipv4Header&, const net::UdpHeader&,
                            std::span<const std::byte> payload, sim::Time) {
                       on_datagram(Line::kA, payload);
                     });
  b_stack_->bind_udp(config_.feed_port,
                     [this](const net::Ipv4Header&, const net::UdpHeader&,
                            std::span<const std::byte> payload, sim::Time) {
                       on_datagram(Line::kB, payload);
                     });
}

LineArbiter::~LineArbiter() = default;

void LineArbiter::join_feeds() {
  for (const auto group : config_.a_groups) a_responder_->join(group);
  for (const auto group : config_.b_groups) b_responder_->join(group);
}

// tsn-lint: hotpath
void LineArbiter::on_datagram(Line line, std::span<const std::byte> payload) {
  const auto header = proto::pitch::peek_header(payload);
  if (!header) {
    ++stats_.malformed;
    return;
  }
  if (line == Line::kA) {
    ++stats_.datagrams_a;
  } else {
    ++stats_.datagrams_b;
  }
  UnitState& state = units_[header->unit];
  if (!state.synced) {
    // First datagram ever seen for the unit defines the stream start.
    state.synced = true;
    state.next_expected = header->sequence;
  }
  const std::uint32_t end = header->sequence + header->count;
  if (end <= state.next_expected) {
    // Entirely old: the other line (or a declared gap) already covered it.
    // Dropping here is a correctness requirement, not an optimisation — the
    // downstream normalizer rewinds its expected sequence on any datagram
    // it sees, so forwarding a stale copy would manufacture a gap.
    ++stats_.duplicates;
    return;
  }
  if (header->sequence <= state.next_expected) {
    // In sequence (boundaries are identical on both lines, so in practice
    // this is equality). Forward and pull through anything it unblocked.
    forward(header->unit, header->sequence, payload);
    state.next_expected = end;
    drain(header->unit, state);
    return;
  }
  // Ahead of sequence: the lagging line may still deliver the hole. Park
  // the datagram and start the dual-gap clock if it isn't already running.
  // Parking a gap datagram copies the payload by design: it must outlive the
  // caller's receive buffer, and the hold is bounded by the gap window.
  const auto [it, inserted] =  // tsn-lint: allow(hotpath-alloc)
      state.held.emplace(header->sequence, std::vector<std::byte>(payload.begin(), payload.end()));
  if (inserted) {
    ++stats_.held;
  } else {
    ++stats_.duplicates;
  }
  arm_gap_timer(header->unit, state);
}

// tsn-lint: hotpath
void LineArbiter::forward(std::uint8_t unit, std::uint32_t sequence,
                          std::span<const std::byte> payload) {
  ++stats_.forwarded;
  if (tap_) tap_(unit, sequence, payload);
  if (config_.republish) {
    out_stack_->send_multicast(out_group(unit), config_.out_port, payload);
  }
}

// tsn-lint: hotpath
void LineArbiter::drain(std::uint8_t unit, UnitState& state) {
  while (!state.held.empty()) {
    const auto it = state.held.begin();
    const auto header = proto::pitch::peek_header(it->second);
    TSN_DCHECK(header.has_value(), "held datagrams were validated on arrival");
    if (!header || it->first > state.next_expected) break;
    const std::uint32_t end = it->first + header->count;
    if (end > state.next_expected) {
      forward(unit, it->first, it->second);
      state.next_expected = end;
    } else {
      ++stats_.duplicates;  // a declared gap already advanced past it
    }
    state.held.erase(it);
  }
}

void LineArbiter::arm_gap_timer(std::uint8_t unit, UnitState& state) {
  if (state.timer_armed) return;
  state.timer_armed = true;
  engine_.schedule_in(config_.gap_timeout, [this, unit] { on_gap_timeout(unit); });
}

void LineArbiter::on_gap_timeout(std::uint8_t unit) {
  UnitState& state = units_[unit];
  state.timer_armed = false;
  if (state.held.empty()) return;  // the lagging line filled the hole in time
  // Neither line produced the range [next_expected, first_held): a true
  // dual gap. Advance past it; the downstream normalizer sees the jump and
  // falls back to snapshot recovery.
  const std::uint32_t first_held = state.held.begin()->first;
  TSN_DCHECK(first_held > state.next_expected,
             "held datagrams ahead of next_expected are drained eagerly");
  ++stats_.dual_gaps;
  stats_.sequences_lost += first_held - state.next_expected;
  state.next_expected = first_held;
  drain(unit, state);
  // Non-contiguous holds: the remainder gets a fresh timeout window.
  if (!state.held.empty()) arm_gap_timer(unit, state);
}

void LineArbiter::register_metrics(telemetry::Registry& registry,
                                   const std::string& prefix) const {
  registry.gauge(prefix + ".datagrams_a",
                 [this] { return static_cast<double>(stats_.datagrams_a); });
  registry.gauge(prefix + ".datagrams_b",
                 [this] { return static_cast<double>(stats_.datagrams_b); });
  registry.gauge(prefix + ".forwarded", [this] { return static_cast<double>(stats_.forwarded); });
  registry.gauge(prefix + ".duplicates",
                 [this] { return static_cast<double>(stats_.duplicates); });
  registry.gauge(prefix + ".held", [this] { return static_cast<double>(stats_.held); });
  registry.gauge(prefix + ".dual_gaps", [this] { return static_cast<double>(stats_.dual_gaps); });
  registry.gauge(prefix + ".sequences_lost",
                 [this] { return static_cast<double>(stats_.sequences_lost); });
  registry.gauge(prefix + ".malformed", [this] { return static_cast<double>(stats_.malformed); });
}

}  // namespace tsn::trading
