// Cross-market compliance monitoring (§4.2).
//
// "The US Securities and Exchange Commission (SEC) imposes rules that
// prohibit advertising prices that 'lock' (where a bid on one exchange
// equals the asking price on another exchange) or 'cross' (where a bid on
// one exchange is higher than the asking price on another exchange), as
// well as 'trading through' (trading at prices worse than those advertised
// at other markets)." Enforcing these requires exactly the broad internal
// communication the paper says cloud designs struggle with: every venue's
// best prices, everywhere, now.
//
// MarketStateMonitor maintains per-venue best bid/offer per symbol (fed
// from normalized updates), derives the NBBO, detects locked and crossed
// states, and answers the pre-quote question a market maker must ask
// before posting: would this quote lock or cross another venue?
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "proto/norm.hpp"
#include "proto/types.hpp"

namespace tsn::trading {

struct VenueQuote {
  proto::Price bid = 0;  // 0 = no bid
  proto::Price ask = 0;  // 0 = no ask
};

struct Nbbo {
  proto::Price bid = 0;
  proto::Price ask = 0;
  std::uint8_t bid_venue = 0;
  std::uint8_t ask_venue = 0;

  [[nodiscard]] bool two_sided() const noexcept { return bid > 0 && ask > 0; }
  // Locked: best bid equals best ask across *different* venues (within one
  // venue that would simply trade).
  [[nodiscard]] bool locked() const noexcept {
    return two_sided() && bid == ask && bid_venue != ask_venue;
  }
  [[nodiscard]] bool crossed() const noexcept {
    return two_sided() && bid > ask && bid_venue != ask_venue;
  }
};

struct ComplianceStats {
  std::uint64_t quote_updates = 0;
  std::uint64_t locked_transitions = 0;   // entering a locked state
  std::uint64_t crossed_transitions = 0;  // entering a crossed state
  std::uint64_t trade_throughs = 0;
};

class MarketStateMonitor {
 public:
  // Direct quote update (venue's best on one side; 0 clears the side).
  void set_quote(std::uint8_t venue, const proto::Symbol& symbol, proto::Side side,
                 proto::Price price);

  // Adapter for normalized feeds: BBO-affecting updates move the venue's
  // displayed side; trade prints are checked for trade-throughs against
  // the prevailing NBBO.
  void on_update(const proto::norm::Update& update);

  [[nodiscard]] std::optional<Nbbo> nbbo(const proto::Symbol& symbol) const;
  [[nodiscard]] VenueQuote venue_quote(std::uint8_t venue, const proto::Symbol& symbol) const;
  [[nodiscard]] bool is_locked(const proto::Symbol& symbol) const;
  [[nodiscard]] bool is_crossed(const proto::Symbol& symbol) const;

  // The pre-quote gate: posting (side, price) on any venue must not lock
  // or cross another venue's displayed opposite side.
  [[nodiscard]] bool quote_would_lock_or_cross(const proto::Symbol& symbol, proto::Side side,
                                               proto::Price price) const;
  // The most aggressive compliant price for a new quote (one tick away
  // from locking), or the requested price if already compliant.
  [[nodiscard]] proto::Price clamp_to_compliant(const proto::Symbol& symbol, proto::Side side,
                                                proto::Price price,
                                                proto::Price tick = 100) const;

  [[nodiscard]] const ComplianceStats& stats() const noexcept { return stats_; }

 private:
  struct SymbolState {
    std::unordered_map<std::uint8_t, VenueQuote> venues;
    bool was_locked = false;
    bool was_crossed = false;
  };

  void refresh_transitions(SymbolState& state, const proto::Symbol& symbol);
  [[nodiscard]] static std::optional<Nbbo> nbbo_of(const SymbolState& state);

  std::unordered_map<proto::Symbol, SymbolState> symbols_;
  ComplianceStats stats_;
};

}  // namespace tsn::trading
