#include "proto/xpress.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "net/headers.hpp"

namespace tsn::proto::xpress {

namespace {

void write_full_header(net::WireWriter& w, std::uint8_t ctx, std::uint16_t stream_id,
                       std::uint32_t seq, std::span<const std::byte> payload) {
  w.u8(kMagicFull);
  w.u8(ctx);
  w.u16_le(stream_id);
  w.u32_le(seq);
  w.u16_le(static_cast<std::uint16_t>(payload.size()));
  w.bytes(payload);
}

}  // namespace

std::vector<std::byte> encode_full(std::uint16_t stream_id, std::uint32_t seq,
                                   std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  out.reserve(kFullHeaderSize + payload.size());
  net::WireWriter w{out};
  write_full_header(w, kNoContext, stream_id, seq, payload);
  return out;
}

Compressor::Compressor(std::uint8_t ctx_base, std::uint8_t ctx_limit) noexcept
    : next_context_(ctx_base),
      end_context_(static_cast<std::uint8_t>(
          std::min<std::uint32_t>(kMaxContexts, std::uint32_t{ctx_base} + ctx_limit))) {}

std::size_t Compressor::encode(std::uint16_t stream_id, std::uint32_t seq,
                               std::span<const std::byte> payload, std::vector<std::byte>& out) {
  TSN_ASSERT(payload.size() <= 0xffff, "Xpress payload must fit its 16-bit length field");
  net::WireWriter w{out};
  auto it = contexts_.find(stream_id);
  if (it == contexts_.end()) {
    Context ctx;
    if (next_context_ < end_context_) ctx.id = next_context_++;
    ctx.established = ctx.id != kNoContext;
    ctx.last_seq = seq;
    it = contexts_.emplace(stream_id, ctx).first;
    write_full_header(w, ctx.id, stream_id, seq, payload);
    return kFullHeaderSize;
  }
  Context& ctx = it->second;
  if (ctx.id == kNoContext) {
    // Provisioned range exhausted: this stream is permanently uncompressed.
    write_full_header(w, kNoContext, stream_id, seq, payload);
    return kFullHeaderSize;
  }
  if (!ctx.established) {
    ctx.established = true;
    ctx.last_seq = seq;
    write_full_header(w, ctx.id, stream_id, seq, payload);
    return kFullHeaderSize;
  }
  if (seq == ctx.last_seq + 1) {
    ctx.last_seq = seq;
    w.u8(static_cast<std::uint8_t>(0x80 | ctx.id));
    w.u16_le(static_cast<std::uint16_t>(payload.size()));
    w.bytes(payload);
    return kCompactHeaderSize;
  }
  // Sequence discontinuity: resync form re-announces the sequence.
  ctx.last_seq = seq;
  w.u8(static_cast<std::uint8_t>(0xc0 | ctx.id));
  w.u32_le(seq);
  w.u16_le(static_cast<std::uint16_t>(payload.size()));
  w.bytes(payload);
  return kResyncHeaderSize;
}

void Compressor::reset() noexcept {
  // tsn-lint: allow(unordered-iter) order-independent: same flag written to every entry
  for (auto& [stream, ctx] : contexts_) ctx.established = false;
}

std::optional<Decompressor::Result> Decompressor::decode(std::span<const std::byte> data) {
  if (data.empty()) return std::nullopt;
  const auto first = static_cast<std::uint8_t>(data[0]);
  net::WireReader r{data};
  if (first == kMagicFull) {
    r.skip(1);
    const std::uint8_t ctx_id = r.u8();
    const std::uint16_t stream = r.u16_le();
    const std::uint32_t seq = r.u32_le();
    const std::uint16_t length = r.u16_le();
    if (!r.ok() || r.remaining() < length) return std::nullopt;
    // Bind the announced context (if the stream is compressible at all).
    if (ctx_id < kMaxContexts) {
      contexts_[ctx_id] = Context{stream, seq, true};
    } else if (ctx_id != kNoContext) {
      return std::nullopt;  // malformed context byte
    }
    Result out;
    out.frame = Frame{stream, seq, data.subspan(kFullHeaderSize, length)};
    out.consumed = kFullHeaderSize + length;
    TSN_DCHECK(out.consumed <= data.size(), "decoded full frame must stay inside the buffer");
    return out;
  }
  const bool resync = (first & 0xc0) == 0xc0;
  const bool compact = (first & 0xc0) == 0x80;
  if (!resync && !compact) return std::nullopt;  // not a frame boundary
  const std::uint8_t ctx_id = first & 0x3f;
  Context& ctx = contexts_[ctx_id];
  r.skip(1);
  std::uint32_t seq;
  std::size_t header_size;
  if (resync) {
    seq = r.u32_le();
    header_size = kResyncHeaderSize;
  } else {
    seq = ctx.last_seq + 1;
    header_size = kCompactHeaderSize;
  }
  const std::uint16_t length = r.u16_le();
  if (!r.ok() || r.remaining() < length) return std::nullopt;
  if (!ctx.known) {
    ++unknown_context_errors_;
    return std::nullopt;
  }
  ctx.last_seq = seq;
  Result out;
  out.frame = Frame{ctx.stream_id, seq, data.subspan(header_size, length)};
  out.consumed = header_size + length;
  TSN_DCHECK(out.consumed <= data.size(), "decoded compact frame must stay inside the buffer");
  return out;
}

OverheadComparison overhead_comparison() noexcept {
  OverheadComparison out;
  out.standard_headers = net::kEthernetHeaderSize + net::kIpv4HeaderSize + net::kUdpHeaderSize +
                         net::kEthernetFcsSize;
  return out;
}

}  // namespace tsn::proto::xpress
