#include "proto/boe.hpp"

#include <cstring>

#include "core/check.hpp"

namespace tsn::proto::boe {

namespace {

template <class>
inline constexpr bool always_false_v = false;

void write_symbol(net::WireWriter& w, const Symbol& symbol) {
  w.ascii(std::string_view{symbol.raw().data(), Symbol::kWidth}, Symbol::kWidth);
}

}  // namespace

MessageType type_of(const Message& message) noexcept {
  return std::visit(
      [](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, LoginRequest>) return MessageType::kLoginRequest;
        else if constexpr (std::is_same_v<T, LoginAccepted>) return MessageType::kLoginAccepted;
        else if constexpr (std::is_same_v<T, LoginRejected>) return MessageType::kLoginRejected;
        else if constexpr (std::is_same_v<T, Heartbeat>) return MessageType::kHeartbeat;
        else if constexpr (std::is_same_v<T, Logout>) return MessageType::kLogout;
        else if constexpr (std::is_same_v<T, ReplayRequest>) return MessageType::kReplayRequest;
        else if constexpr (std::is_same_v<T, SequenceReset>) return MessageType::kSequenceReset;
        else if constexpr (std::is_same_v<T, NewOrder>) return MessageType::kNewOrder;
        else if constexpr (std::is_same_v<T, CancelOrder>) return MessageType::kCancelOrder;
        else if constexpr (std::is_same_v<T, ModifyOrder>) return MessageType::kModifyOrder;
        else if constexpr (std::is_same_v<T, OrderAccepted>) return MessageType::kOrderAccepted;
        else if constexpr (std::is_same_v<T, OrderRejected>) return MessageType::kOrderRejected;
        else if constexpr (std::is_same_v<T, OrderCancelled>) return MessageType::kOrderCancelled;
        else if constexpr (std::is_same_v<T, OrderModified>) return MessageType::kOrderModified;
        else if constexpr (std::is_same_v<T, CancelRejected>) return MessageType::kCancelRejected;
        else if constexpr (std::is_same_v<T, Fill>) return MessageType::kFill;
        else static_assert(always_false_v<T>);
      },
      message);
}

std::size_t encoded_size(const Message& message) noexcept {
  return std::visit(
      [](const auto& m) -> std::size_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, LoginRequest>) return kHeaderSize + 12;
        else if constexpr (std::is_same_v<T, LoginAccepted>) return kHeaderSize;
        else if constexpr (std::is_same_v<T, LoginRejected>) return kHeaderSize + 1;
        else if constexpr (std::is_same_v<T, Heartbeat>) return kHeaderSize;
        else if constexpr (std::is_same_v<T, Logout>) return kHeaderSize;
        else if constexpr (std::is_same_v<T, ReplayRequest>) return kHeaderSize + 4;
        else if constexpr (std::is_same_v<T, SequenceReset>) return kHeaderSize + 4;
        else if constexpr (std::is_same_v<T, NewOrder>) return kHeaderSize + 28;
        else if constexpr (std::is_same_v<T, CancelOrder>) return kHeaderSize + 8;
        else if constexpr (std::is_same_v<T, ModifyOrder>) return kHeaderSize + 20;
        else if constexpr (std::is_same_v<T, OrderAccepted>) return kHeaderSize + 24;
        else if constexpr (std::is_same_v<T, OrderRejected>) return kHeaderSize + 9;
        else if constexpr (std::is_same_v<T, OrderCancelled>) return kHeaderSize + 12;
        else if constexpr (std::is_same_v<T, OrderModified>) return kHeaderSize + 20;
        else if constexpr (std::is_same_v<T, CancelRejected>) return kHeaderSize + 9;
        else if constexpr (std::is_same_v<T, Fill>) return kHeaderSize + 32;
        else static_assert(always_false_v<T>);
      },
      message);
}

std::vector<std::byte> encode(const Message& message, std::uint32_t seq) {
  std::vector<std::byte> out;
  out.reserve(encoded_size(message));
  encode_into(message, seq, out);
  return out;
}

// tsn-lint: hotpath
void encode_into(const Message& message, std::uint32_t seq, std::vector<std::byte>& out) {
  const std::size_t base = out.size();
  net::WireWriter w{out};
  w.u16_le(kMagic);
  w.u16_le(static_cast<std::uint16_t>(encoded_size(message)));
  w.u8(static_cast<std::uint8_t>(type_of(message)));
  w.u32_le(seq);
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, LoginRequest>) {
          w.u32_le(m.session_id);
          w.u64_le(m.token);
        } else if constexpr (std::is_same_v<T, LoginRejected>) {
          w.u8(static_cast<std::uint8_t>(m.reason));
        } else if constexpr (std::is_same_v<T, ReplayRequest>) {
          w.u32_le(m.last_seen_seq);
        } else if constexpr (std::is_same_v<T, SequenceReset>) {
          w.u32_le(m.next_seq);
        } else if constexpr (std::is_same_v<T, NewOrder>) {
          w.u64_le(m.client_order_id);
          w.u8(static_cast<std::uint8_t>(m.side));
          w.u32_le(m.quantity);
          write_symbol(w, m.symbol);
          w.u64_le(static_cast<std::uint64_t>(m.price));
          w.u8(static_cast<std::uint8_t>(m.tif));
        } else if constexpr (std::is_same_v<T, CancelOrder>) {
          w.u64_le(m.client_order_id);
        } else if constexpr (std::is_same_v<T, ModifyOrder>) {
          w.u64_le(m.client_order_id);
          w.u32_le(m.quantity);
          w.u64_le(static_cast<std::uint64_t>(m.price));
        } else if constexpr (std::is_same_v<T, OrderAccepted>) {
          w.u64_le(m.client_order_id);
          w.u64_le(m.exchange_order_id);
          w.u64_le(m.transact_time_ns);
        } else if constexpr (std::is_same_v<T, OrderRejected>) {
          w.u64_le(m.client_order_id);
          w.u8(static_cast<std::uint8_t>(m.reason));
        } else if constexpr (std::is_same_v<T, OrderCancelled>) {
          w.u64_le(m.client_order_id);
          w.u32_le(m.cancelled_quantity);
        } else if constexpr (std::is_same_v<T, OrderModified>) {
          w.u64_le(m.client_order_id);
          w.u32_le(m.quantity);
          w.u64_le(static_cast<std::uint64_t>(m.price));
        } else if constexpr (std::is_same_v<T, CancelRejected>) {
          w.u64_le(m.client_order_id);
          w.u8(static_cast<std::uint8_t>(m.reason));
        } else if constexpr (std::is_same_v<T, Fill>) {
          w.u64_le(m.client_order_id);
          w.u64_le(m.execution_id);
          w.u32_le(m.quantity);
          w.u64_le(static_cast<std::uint64_t>(m.price));
          w.u32_le(m.leaves_quantity);
        }
        // LoginAccepted / Heartbeat / Logout have empty bodies.
      },
      message);
  TSN_DCHECK(out.size() - base == encoded_size(message),
             "encoded BOE message must match its declared length field");
}

std::size_t complete_length(std::span<const std::byte> data) noexcept {
  if (data.size() < 4) return 0;
  net::WireReader r{data};
  const std::uint16_t magic = r.u16_le();
  const std::uint16_t length = r.u16_le();
  if (!r.ok() || magic != kMagic) return 0;
  if (length < kHeaderSize) return 0;
  return length;
}

std::optional<Decoded> decode(std::span<const std::byte> data) {
  const std::size_t length = complete_length(data);
  if (length == 0 || data.size() < length) return std::nullopt;
  net::WireReader r{data.subspan(0, length)};
  r.skip(4);  // magic + length, already validated
  const auto type = static_cast<MessageType>(r.u8());
  const std::uint32_t seq = r.u32_le();
  Decoded out;
  out.seq = seq;
  out.consumed = length;
  switch (type) {
    case MessageType::kLoginRequest: {
      LoginRequest m;
      m.session_id = r.u32_le();
      m.token = r.u64_le();
      out.message = m;
      break;
    }
    case MessageType::kLoginAccepted:
      out.message = LoginAccepted{};
      break;
    case MessageType::kLoginRejected: {
      LoginRejected m;
      m.reason = static_cast<RejectReason>(r.u8());
      out.message = m;
      break;
    }
    case MessageType::kHeartbeat:
      out.message = Heartbeat{};
      break;
    case MessageType::kLogout:
      out.message = Logout{};
      break;
    case MessageType::kReplayRequest: {
      ReplayRequest m;
      m.last_seen_seq = r.u32_le();
      out.message = m;
      break;
    }
    case MessageType::kSequenceReset: {
      SequenceReset m;
      m.next_seq = r.u32_le();
      out.message = m;
      break;
    }
    case MessageType::kNewOrder: {
      NewOrder m;
      m.client_order_id = r.u64_le();
      m.side = static_cast<Side>(r.u8());
      m.quantity = r.u32_le();
      m.symbol = Symbol{r.ascii(Symbol::kWidth)};
      m.price = static_cast<Price>(r.u64_le());
      m.tif = static_cast<TimeInForce>(r.u8());
      out.message = m;
      break;
    }
    case MessageType::kCancelOrder: {
      CancelOrder m;
      m.client_order_id = r.u64_le();
      out.message = m;
      break;
    }
    case MessageType::kModifyOrder: {
      ModifyOrder m;
      m.client_order_id = r.u64_le();
      m.quantity = r.u32_le();
      m.price = static_cast<Price>(r.u64_le());
      out.message = m;
      break;
    }
    case MessageType::kOrderAccepted: {
      OrderAccepted m;
      m.client_order_id = r.u64_le();
      m.exchange_order_id = r.u64_le();
      m.transact_time_ns = r.u64_le();
      out.message = m;
      break;
    }
    case MessageType::kOrderRejected: {
      OrderRejected m;
      m.client_order_id = r.u64_le();
      m.reason = static_cast<RejectReason>(r.u8());
      out.message = m;
      break;
    }
    case MessageType::kOrderCancelled: {
      OrderCancelled m;
      m.client_order_id = r.u64_le();
      m.cancelled_quantity = r.u32_le();
      out.message = m;
      break;
    }
    case MessageType::kOrderModified: {
      OrderModified m;
      m.client_order_id = r.u64_le();
      m.quantity = r.u32_le();
      m.price = static_cast<Price>(r.u64_le());
      out.message = m;
      break;
    }
    case MessageType::kCancelRejected: {
      CancelRejected m;
      m.client_order_id = r.u64_le();
      m.reason = static_cast<RejectReason>(r.u8());
      out.message = m;
      break;
    }
    case MessageType::kFill: {
      Fill m;
      m.client_order_id = r.u64_le();
      m.execution_id = r.u64_le();
      m.quantity = r.u32_le();
      m.price = static_cast<Price>(r.u64_le());
      m.leaves_quantity = r.u32_le();
      out.message = m;
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  TSN_DCHECK(r.position() <= length, "BOE decode must stay inside the declared length");
  return out;
}

void StreamParser::feed(std::span<const std::byte> chunk) {
  TSN_DCHECK(offset_ <= buffer_.size(), "consumed prefix cannot exceed the buffered bytes");
  // Compact the consumed prefix occasionally to bound memory.
  if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
}

std::optional<Decoded> StreamParser::next() {
  if (broken_) return std::nullopt;
  const std::span<const std::byte> view{buffer_.data() + offset_, buffer_.size() - offset_};
  if (view.size() >= 4 && complete_length(view) == 0) {
    broken_ = true;  // bad magic or impossible length: the stream is torn
    return std::nullopt;
  }
  auto decoded = decode(view);
  if (!decoded) return std::nullopt;
  offset_ += decoded->consumed;
  return decoded;
}

}  // namespace tsn::proto::boe
