#include "proto/pitch.hpp"

#include <stdexcept>
#include <utility>

#include "core/check.hpp"

namespace tsn::proto::pitch {

namespace {

constexpr std::size_t kTimeSize = 6;
constexpr std::size_t kAddShortSize = 26;
constexpr std::size_t kAddLongSize = 34;
constexpr std::size_t kExecutedSize = 26;
constexpr std::size_t kReduceSize_ = 18;
constexpr std::size_t kModifySize = 27;
constexpr std::size_t kDeleteSize = 14;
constexpr std::size_t kTradeSize = 41;
constexpr std::size_t kSnapshotBeginSize = 7;
constexpr std::size_t kSnapshotEndSize = 7;

void write_symbol(net::WireWriter& w, const Symbol& symbol) {
  w.ascii(std::string_view{symbol.raw().data(), Symbol::kWidth}, Symbol::kWidth);
}

// Callers check r.ok() after the surrounding fixed-size message read; the
// sticky failure flag makes the deferred check safe.
Symbol read_symbol(net::WireReader& r) {  // tsn-lint: allow(unchecked-reader)
  return Symbol{r.ascii(Symbol::kWidth)};
}

}  // namespace

std::size_t encoded_size(const Message& message) noexcept {
  return std::visit(
      [](const auto& m) -> std::size_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Time>) {
          return kTimeSize;
        } else if constexpr (std::is_same_v<T, AddOrder>) {
          return m.fits_short_form() ? kAddShortSize : kAddLongSize;
        } else if constexpr (std::is_same_v<T, OrderExecuted>) {
          return kExecutedSize;
        } else if constexpr (std::is_same_v<T, ReduceSize>) {
          return kReduceSize_;
        } else if constexpr (std::is_same_v<T, ModifyOrder>) {
          return kModifySize;
        } else if constexpr (std::is_same_v<T, DeleteOrder>) {
          return kDeleteSize;
        } else if constexpr (std::is_same_v<T, SnapshotBegin>) {
          return kSnapshotBeginSize;
        } else if constexpr (std::is_same_v<T, SnapshotEnd>) {
          return kSnapshotEndSize;
        } else {
          static_assert(std::is_same_v<T, Trade>);
          return kTradeSize;
        }
      },
      message);
}

void encode(const Message& message, net::WireWriter& w) {
  const std::size_t size_before = w.size();
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Time>) {
          w.u8(kTimeSize);
          w.u8(static_cast<std::uint8_t>(MessageType::kTime));
          w.u32_le(m.seconds_since_midnight);
        } else if constexpr (std::is_same_v<T, AddOrder>) {
          if (m.fits_short_form()) {
            w.u8(kAddShortSize);
            w.u8(static_cast<std::uint8_t>(MessageType::kAddOrderShort));
            w.u32_le(m.time_offset_ns);
            w.u64_le(m.order_id);
            w.u8(static_cast<std::uint8_t>(m.side));
            w.u16_le(static_cast<std::uint16_t>(m.quantity));
            write_symbol(w, m.symbol);
            w.u16_le(static_cast<std::uint16_t>(m.price));
            w.u8(m.flags);
          } else {
            w.u8(kAddLongSize);
            w.u8(static_cast<std::uint8_t>(MessageType::kAddOrderLong));
            w.u32_le(m.time_offset_ns);
            w.u64_le(m.order_id);
            w.u8(static_cast<std::uint8_t>(m.side));
            w.u32_le(m.quantity);
            write_symbol(w, m.symbol);
            w.u64_le(static_cast<std::uint64_t>(m.price));
            w.u8(m.flags);
          }
        } else if constexpr (std::is_same_v<T, OrderExecuted>) {
          w.u8(kExecutedSize);
          w.u8(static_cast<std::uint8_t>(MessageType::kOrderExecuted));
          w.u32_le(m.time_offset_ns);
          w.u64_le(m.order_id);
          w.u32_le(m.executed_quantity);
          w.u64_le(m.execution_id);
        } else if constexpr (std::is_same_v<T, ReduceSize>) {
          w.u8(kReduceSize_);
          w.u8(static_cast<std::uint8_t>(MessageType::kReduceSize));
          w.u32_le(m.time_offset_ns);
          w.u64_le(m.order_id);
          w.u32_le(m.cancelled_quantity);
        } else if constexpr (std::is_same_v<T, ModifyOrder>) {
          w.u8(kModifySize);
          w.u8(static_cast<std::uint8_t>(MessageType::kModifyOrder));
          w.u32_le(m.time_offset_ns);
          w.u64_le(m.order_id);
          w.u32_le(m.quantity);
          w.u64_le(static_cast<std::uint64_t>(m.price));
          w.u8(m.flags);
        } else if constexpr (std::is_same_v<T, DeleteOrder>) {
          w.u8(kDeleteSize);
          w.u8(static_cast<std::uint8_t>(MessageType::kDeleteOrder));
          w.u32_le(m.time_offset_ns);
          w.u64_le(m.order_id);
        } else if constexpr (std::is_same_v<T, SnapshotBegin>) {
          w.u8(kSnapshotBeginSize);
          w.u8(static_cast<std::uint8_t>(MessageType::kSnapshotBegin));
          w.u8(m.unit);
          w.u32_le(m.next_sequence);
        } else if constexpr (std::is_same_v<T, SnapshotEnd>) {
          w.u8(kSnapshotEndSize);
          w.u8(static_cast<std::uint8_t>(MessageType::kSnapshotEnd));
          w.u8(m.unit);
          w.u32_le(m.order_count);
        } else {
          static_assert(std::is_same_v<T, Trade>);
          w.u8(kTradeSize);
          w.u8(static_cast<std::uint8_t>(MessageType::kTrade));
          w.u32_le(m.time_offset_ns);
          w.u64_le(m.order_id);
          w.u8(static_cast<std::uint8_t>(m.side));
          w.u32_le(m.quantity);
          write_symbol(w, m.symbol);
          w.u64_le(static_cast<std::uint64_t>(m.price));
          w.u64_le(m.execution_id);
        }
      },
      message);
  TSN_DCHECK(w.size() - size_before == encoded_size(message),
             "encoded PITCH message must match its declared length byte");
}

// tsn-lint: hotpath
std::optional<Message> decode_one(net::WireReader& r) {
  const std::uint8_t length = r.u8();
  const std::uint8_t type = r.u8();
  if (!r.ok()) return std::nullopt;
  switch (static_cast<MessageType>(type)) {
    case MessageType::kTime: {
      if (length != kTimeSize) return std::nullopt;
      Time m;
      m.seconds_since_midnight = r.u32_le();
      if (!r.ok()) return std::nullopt;
      return Message{m};
    }
    case MessageType::kAddOrderShort: {
      if (length != kAddShortSize) return std::nullopt;
      AddOrder m;
      m.time_offset_ns = r.u32_le();
      m.order_id = r.u64_le();
      m.side = static_cast<Side>(r.u8());
      m.quantity = r.u16_le();
      m.symbol = read_symbol(r);
      m.price = r.u16_le();
      m.flags = r.u8();
      if (!r.ok()) return std::nullopt;
      return Message{m};
    }
    case MessageType::kAddOrderLong: {
      if (length != kAddLongSize) return std::nullopt;
      AddOrder m;
      m.time_offset_ns = r.u32_le();
      m.order_id = r.u64_le();
      m.side = static_cast<Side>(r.u8());
      m.quantity = r.u32_le();
      m.symbol = read_symbol(r);
      m.price = static_cast<Price>(r.u64_le());
      m.flags = r.u8();
      if (!r.ok()) return std::nullopt;
      return Message{m};
    }
    case MessageType::kOrderExecuted: {
      if (length != kExecutedSize) return std::nullopt;
      OrderExecuted m;
      m.time_offset_ns = r.u32_le();
      m.order_id = r.u64_le();
      m.executed_quantity = r.u32_le();
      m.execution_id = r.u64_le();
      if (!r.ok()) return std::nullopt;
      return Message{m};
    }
    case MessageType::kReduceSize: {
      if (length != kReduceSize_) return std::nullopt;
      ReduceSize m;
      m.time_offset_ns = r.u32_le();
      m.order_id = r.u64_le();
      m.cancelled_quantity = r.u32_le();
      if (!r.ok()) return std::nullopt;
      return Message{m};
    }
    case MessageType::kModifyOrder: {
      if (length != kModifySize) return std::nullopt;
      ModifyOrder m;
      m.time_offset_ns = r.u32_le();
      m.order_id = r.u64_le();
      m.quantity = r.u32_le();
      m.price = static_cast<Price>(r.u64_le());
      m.flags = r.u8();
      if (!r.ok()) return std::nullopt;
      return Message{m};
    }
    case MessageType::kDeleteOrder: {
      if (length != kDeleteSize) return std::nullopt;
      DeleteOrder m;
      m.time_offset_ns = r.u32_le();
      m.order_id = r.u64_le();
      if (!r.ok()) return std::nullopt;
      return Message{m};
    }
    case MessageType::kSnapshotBegin: {
      if (length != kSnapshotBeginSize) return std::nullopt;
      SnapshotBegin m;
      m.unit = r.u8();
      m.next_sequence = r.u32_le();
      if (!r.ok()) return std::nullopt;
      return Message{m};
    }
    case MessageType::kSnapshotEnd: {
      if (length != kSnapshotEndSize) return std::nullopt;
      SnapshotEnd m;
      m.unit = r.u8();
      m.order_count = r.u32_le();
      if (!r.ok()) return std::nullopt;
      return Message{m};
    }
    case MessageType::kTrade: {
      if (length != kTradeSize) return std::nullopt;
      Trade m;
      m.time_offset_ns = r.u32_le();
      m.order_id = r.u64_le();
      m.side = static_cast<Side>(r.u8());
      m.quantity = r.u32_le();
      m.symbol = read_symbol(r);
      m.price = static_cast<Price>(r.u64_le());
      m.execution_id = r.u64_le();
      if (!r.ok()) return std::nullopt;
      return Message{m};
    }
  }
  return std::nullopt;
}

FrameBuilder::FrameBuilder(std::uint8_t unit, std::size_t max_payload, Sink sink)
    : unit_(unit), max_payload_(max_payload), sink_(std::move(sink)) {
  if (max_payload_ < kUnitHeaderSize + kTradeSize) {
    throw std::invalid_argument{"max_payload too small for any message"};
  }
  begin_frame();
}

void FrameBuilder::begin_frame() {
  buffer_.clear();
  net::WireWriter w{buffer_};
  w.u16_le(0);  // length, patched at flush
  w.u8(0);      // count, patched at flush
  w.u8(unit_);
  w.u32_le(sequence_);
}

void FrameBuilder::append(const Message& message) {
  if (buffer_.size() + encoded_size(message) > max_payload_ || count_ == 0xff) flush();
  TSN_DCHECK(buffer_.size() + encoded_size(message) <= max_payload_,
             "a freshly flushed frame must have room for any single message");
  net::WireWriter w{buffer_};
  encode(message, w);
  ++count_;
  ++sequence_;
}

void FrameBuilder::flush() {
  if (count_ == 0) return;
  TSN_ASSERT(buffer_.size() >= kUnitHeaderSize && buffer_.size() <= 0xffff,
             "unit frame length must fit its 16-bit length field");
  net::WireWriter w{buffer_};
  w.patch_u16_le(0, static_cast<std::uint16_t>(buffer_.size()));
  buffer_[2] = static_cast<std::byte>(count_);
  UnitHeader header;
  header.length = static_cast<std::uint16_t>(buffer_.size());
  header.count = static_cast<std::uint8_t>(count_);
  header.unit = unit_;
  header.sequence = sequence_ - static_cast<std::uint32_t>(count_);
  sink_(std::move(buffer_), header);
  buffer_ = {};
  count_ = 0;
  begin_frame();
}

// tsn-lint: hotpath
std::optional<UnitHeader> peek_header(std::span<const std::byte> payload) {
  net::WireReader r{payload};
  UnitHeader h;
  h.length = r.u16_le();
  h.count = r.u8();
  h.unit = r.u8();
  h.sequence = r.u32_le();
  if (!r.ok() || h.length < kUnitHeaderSize || h.length > payload.size()) return std::nullopt;
  return h;
}

// tsn-lint: hotpath
bool for_each_message(std::span<const std::byte> payload,
                      const std::function<void(const Message&)>& fn) {
  const auto header = peek_header(payload);
  if (!header) return false;
  net::WireReader r{payload.subspan(kUnitHeaderSize, header->length - kUnitHeaderSize)};
  for (std::uint8_t i = 0; i < header->count; ++i) {
    auto message = decode_one(r);
    if (!message) return false;
    fn(*message);
  }
  return r.remaining() == 0;
}

namespace {

// Straight-line little-endian loads for the batch decoder. Bounds are
// established once per message (the length byte is checked against the
// datagram end before any field load), so these are plain unaligned
// byte-assembly loads the compiler folds into single moves.
constexpr std::uint8_t load_u8(const std::byte* p) noexcept {
  return std::to_integer<std::uint8_t>(*p);
}

constexpr std::uint16_t load_u16_le(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>(std::to_integer<std::uint16_t>(p[0]) |
                                    (std::to_integer<std::uint16_t>(p[1]) << 8));
}

constexpr std::uint32_t load_u32_le(const std::byte* p) noexcept {
  return std::to_integer<std::uint32_t>(p[0]) |
         (std::to_integer<std::uint32_t>(p[1]) << 8) |
         (std::to_integer<std::uint32_t>(p[2]) << 16) |
         (std::to_integer<std::uint32_t>(p[3]) << 24);
}

constexpr std::uint64_t load_u64_le(const std::byte* p) noexcept {
  return static_cast<std::uint64_t>(load_u32_le(p)) |
         (static_cast<std::uint64_t>(load_u32_le(p + 4)) << 32);
}

Symbol load_symbol(const std::byte* p) noexcept {
  char buf[Symbol::kWidth];
  for (std::size_t i = 0; i < Symbol::kWidth; ++i) buf[i] = std::to_integer<char>(p[i]);
  return Symbol{std::string_view{buf, Symbol::kWidth}};
}

}  // namespace

// tsn-lint: hotpath
bool decode_batch(std::span<const std::byte> payload, DecodedBatch& out) {
  out.count = 0;
  const auto header = peek_header(payload);
  if (!header) return false;
  out.header = *header;
  const std::size_t n = header->count;
  // Columns keep capacity across datagrams (count <= 255), so a warm buffer
  // never reallocates here.
  out.kind.resize(n);
  out.u32a.resize(n);
  out.order_id.resize(n);
  out.side.resize(n);
  out.quantity.resize(n);
  out.price.resize(n);
  out.execution_id.resize(n);
  out.symbol.resize(n);
  out.flags.resize(n);
  const std::byte* p = payload.data() + kUnitHeaderSize;
  const std::byte* const end = payload.data() + header->length;
  for (std::size_t i = 0; i < n; ++i) {
    if (end - p < 2) return false;
    const std::uint8_t length = load_u8(p);
    const std::uint8_t type = load_u8(p + 1);
    if (length > end - p) return false;
    switch (static_cast<MessageType>(type)) {
      case MessageType::kTime:
        if (length != kTimeSize) return false;
        out.kind[i] = DecodedKind::kTime;
        out.u32a[i] = load_u32_le(p + 2);
        break;
      case MessageType::kAddOrderShort:
        if (length != kAddShortSize) return false;
        out.kind[i] = DecodedKind::kAddOrder;
        out.u32a[i] = load_u32_le(p + 2);
        out.order_id[i] = load_u64_le(p + 6);
        out.side[i] = static_cast<Side>(load_u8(p + 14));
        out.quantity[i] = load_u16_le(p + 15);
        out.symbol[i] = load_symbol(p + 17);
        out.price[i] = load_u16_le(p + 23);
        out.flags[i] = load_u8(p + 25);
        break;
      case MessageType::kAddOrderLong:
        if (length != kAddLongSize) return false;
        out.kind[i] = DecodedKind::kAddOrder;
        out.u32a[i] = load_u32_le(p + 2);
        out.order_id[i] = load_u64_le(p + 6);
        out.side[i] = static_cast<Side>(load_u8(p + 14));
        out.quantity[i] = load_u32_le(p + 15);
        out.symbol[i] = load_symbol(p + 19);
        out.price[i] = static_cast<Price>(load_u64_le(p + 25));
        out.flags[i] = load_u8(p + 33);
        break;
      case MessageType::kOrderExecuted:
        if (length != kExecutedSize) return false;
        out.kind[i] = DecodedKind::kOrderExecuted;
        out.u32a[i] = load_u32_le(p + 2);
        out.order_id[i] = load_u64_le(p + 6);
        out.quantity[i] = load_u32_le(p + 14);
        out.execution_id[i] = load_u64_le(p + 18);
        break;
      case MessageType::kReduceSize:
        if (length != kReduceSize_) return false;
        out.kind[i] = DecodedKind::kReduceSize;
        out.u32a[i] = load_u32_le(p + 2);
        out.order_id[i] = load_u64_le(p + 6);
        out.quantity[i] = load_u32_le(p + 14);
        break;
      case MessageType::kModifyOrder:
        if (length != kModifySize) return false;
        out.kind[i] = DecodedKind::kModifyOrder;
        out.u32a[i] = load_u32_le(p + 2);
        out.order_id[i] = load_u64_le(p + 6);
        out.quantity[i] = load_u32_le(p + 14);
        out.price[i] = static_cast<Price>(load_u64_le(p + 18));
        out.flags[i] = load_u8(p + 26);
        break;
      case MessageType::kDeleteOrder:
        if (length != kDeleteSize) return false;
        out.kind[i] = DecodedKind::kDeleteOrder;
        out.u32a[i] = load_u32_le(p + 2);
        out.order_id[i] = load_u64_le(p + 6);
        break;
      case MessageType::kTrade:
        if (length != kTradeSize) return false;
        out.kind[i] = DecodedKind::kTrade;
        out.u32a[i] = load_u32_le(p + 2);
        out.order_id[i] = load_u64_le(p + 6);
        out.side[i] = static_cast<Side>(load_u8(p + 14));
        out.quantity[i] = load_u32_le(p + 15);
        out.symbol[i] = load_symbol(p + 19);
        out.price[i] = static_cast<Price>(load_u64_le(p + 25));
        out.execution_id[i] = load_u64_le(p + 33);
        break;
      case MessageType::kSnapshotBegin:
        if (length != kSnapshotBeginSize) return false;
        out.kind[i] = DecodedKind::kSnapshotBegin;
        out.flags[i] = load_u8(p + 2);
        out.u32a[i] = load_u32_le(p + 3);
        break;
      case MessageType::kSnapshotEnd:
        if (length != kSnapshotEndSize) return false;
        out.kind[i] = DecodedKind::kSnapshotEnd;
        out.flags[i] = load_u8(p + 2);
        out.u32a[i] = load_u32_le(p + 3);
        break;
      default:
        return false;
    }
    p += length;
    out.count = i + 1;
  }
  return p == end;
}

Message DecodedBatch::message_at(std::size_t i) const {
  switch (kind[i]) {
    case DecodedKind::kTime:
      return Time{u32a[i]};
    case DecodedKind::kAddOrder:
      return AddOrder{u32a[i], order_id[i], side[i], quantity[i], symbol[i], price[i], flags[i]};
    case DecodedKind::kOrderExecuted:
      return OrderExecuted{u32a[i], order_id[i], quantity[i], execution_id[i]};
    case DecodedKind::kReduceSize:
      return ReduceSize{u32a[i], order_id[i], quantity[i]};
    case DecodedKind::kModifyOrder:
      return ModifyOrder{u32a[i], order_id[i], quantity[i], price[i], flags[i]};
    case DecodedKind::kDeleteOrder:
      return DeleteOrder{u32a[i], order_id[i]};
    case DecodedKind::kTrade:
      return Trade{u32a[i], order_id[i], side[i], quantity[i], symbol[i], price[i],
                   execution_id[i]};
    case DecodedKind::kSnapshotBegin:
      return SnapshotBegin{flags[i], u32a[i]};
    case DecodedKind::kSnapshotEnd:
      return SnapshotEnd{flags[i], u32a[i]};
  }
  return Time{};  // unreachable: kind only ever holds the enumerators above
}

std::optional<ParsedFrame> parse_frame(std::span<const std::byte> payload) {
  const auto header = peek_header(payload);
  if (!header) return std::nullopt;
  ParsedFrame out;
  out.header = *header;
  out.messages.reserve(header->count);
  const bool ok = for_each_message(payload, [&out](const Message& m) { out.messages.push_back(m); });
  if (!ok) return std::nullopt;
  return out;
}

}  // namespace tsn::proto::pitch
