// Common market-data value types shared by every protocol codec.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace tsn::proto {

// Order side.
enum class Side : std::uint8_t { kBuy = 'B', kSell = 'S' };

// Prices are fixed-point with 4 implied decimal places (1 == $0.0001),
// matching the convention of exchange binary protocols.
using Price = std::int64_t;
inline constexpr Price kPriceScale = 10'000;

[[nodiscard]] constexpr Price price_from_dollars(double dollars) noexcept {
  return static_cast<Price>(dollars * static_cast<double>(kPriceScale) +
                            (dollars >= 0 ? 0.5 : -0.5));
}
[[nodiscard]] constexpr double price_to_dollars(Price price) noexcept {
  return static_cast<double>(price) / static_cast<double>(kPriceScale);
}

using OrderId = std::uint64_t;
using ExecId = std::uint64_t;
using Quantity = std::uint32_t;

// A fixed six-character, space-padded instrument symbol (the width used on
// the wire, like real equity feeds).
class Symbol {
 public:
  static constexpr std::size_t kWidth = 6;

  constexpr Symbol() noexcept { chars_.fill(' '); }
  explicit Symbol(std::string_view text) noexcept {
    chars_.fill(' ');
    for (std::size_t i = 0; i < text.size() && i < kWidth; ++i) chars_[i] = text[i];
  }

  [[nodiscard]] std::string_view view() const noexcept {
    std::size_t len = kWidth;
    while (len > 0 && chars_[len - 1] == ' ') --len;
    return {chars_.data(), len};
  }
  [[nodiscard]] std::string str() const { return std::string{view()}; }
  [[nodiscard]] const std::array<char, kWidth>& raw() const noexcept { return chars_; }

  // First character, for alphabetical feed partitioning (§2).
  [[nodiscard]] char initial() const noexcept { return chars_[0]; }

  constexpr auto operator<=>(const Symbol&) const noexcept = default;

 private:
  std::array<char, kWidth> chars_{};
};

// Instrument type, for type-based feed partitioning (§2: "equities on one
// group, ETF's on another").
enum class InstrumentKind : std::uint8_t {
  kEquity = 0,
  kEtf = 1,
  kOption = 2,
  kFuture = 3,
};

[[nodiscard]] constexpr std::string_view to_string(InstrumentKind kind) noexcept {
  switch (kind) {
    case InstrumentKind::kEquity:
      return "equity";
    case InstrumentKind::kEtf:
      return "etf";
    case InstrumentKind::kOption:
      return "option";
    case InstrumentKind::kFuture:
      return "future";
  }
  return "?";
}

}  // namespace tsn::proto

template <>
struct std::hash<tsn::proto::Symbol> {
  std::size_t operator()(const tsn::proto::Symbol& s) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s.raw()) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};
