// "TsnPitch" — the exchange market-data wire format.
//
// Modelled closely on depth-of-book feeds like Cboe PITCH (§2): little-
// endian binary messages, each with a 1-byte length and 1-byte type, packed
// several to a UDP datagram behind an 8-byte sequenced unit header. The
// paper's quoted sizes hold: a short-form add order is 26 bytes and an
// order delete is 14 bytes.
//
// Wire layout (all integers little-endian):
//   SequencedUnitHeader:  length(2) count(1) unit(1) sequence(4)      = 8
//   Time:                 len type seconds(4)                          = 6
//   AddOrderShort:        len type offset(4) id(8) side qty(2)
//                         symbol(6) price(2) flags                     = 26
//   AddOrderLong:         len type offset(4) id(8) side qty(4)
//                         symbol(6) price(8) flags                     = 34
//   OrderExecuted:        len type offset(4) id(8) qty(4) exec(8)      = 26
//   ReduceSize:           len type offset(4) id(8) qty(4)              = 18
//   ModifyOrder:          len type offset(4) id(8) qty(4) price(8) fl  = 27
//   DeleteOrder:          len type offset(4) id(8)                     = 14
//   Trade:                len type offset(4) id(8) side qty(4)
//                         symbol(6) price(8) exec(8)                   = 41
//
// `offset` is nanoseconds since the last Time message; Time carries seconds
// since midnight. Short-form add orders can only express prices below
// $6.5535 and sizes below 65536 — the encoder picks the form automatically,
// exactly why real feeds have a bimodal message-length mix.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "net/wire.hpp"
#include "proto/types.hpp"

namespace tsn::proto::pitch {

enum class MessageType : std::uint8_t {
  kTime = 0x20,
  kAddOrderShort = 0x21,
  kAddOrderLong = 0x22,
  kOrderExecuted = 0x23,
  kReduceSize = 0x25,
  kModifyOrder = 0x27,
  kDeleteOrder = 0x29,
  kTrade = 0x2a,
  // Snapshot channel (gap recovery): a snapshot cycle for one live unit is
  // SnapshotBegin, the unit's resting orders as AddOrder messages, then
  // SnapshotEnd. `next_sequence` is where the live stream continues.
  kSnapshotBegin = 0x30,
  kSnapshotEnd = 0x31,
};

struct Time {
  std::uint32_t seconds_since_midnight = 0;
};

struct AddOrder {
  std::uint32_t time_offset_ns = 0;
  OrderId order_id = 0;
  Side side = Side::kBuy;
  Quantity quantity = 0;
  Symbol symbol;
  Price price = 0;
  std::uint8_t flags = 0;

  // True when the message fits the 26-byte short form.
  [[nodiscard]] bool fits_short_form() const noexcept {
    return quantity <= 0xffff && price >= 0 && price <= 0xffff;
  }
};

struct OrderExecuted {
  std::uint32_t time_offset_ns = 0;
  OrderId order_id = 0;
  Quantity executed_quantity = 0;
  ExecId execution_id = 0;
};

struct ReduceSize {
  std::uint32_t time_offset_ns = 0;
  OrderId order_id = 0;
  Quantity cancelled_quantity = 0;
};

struct ModifyOrder {
  std::uint32_t time_offset_ns = 0;
  OrderId order_id = 0;
  Quantity quantity = 0;
  Price price = 0;
  std::uint8_t flags = 0;
};

struct DeleteOrder {
  std::uint32_t time_offset_ns = 0;
  OrderId order_id = 0;
};

struct Trade {
  std::uint32_t time_offset_ns = 0;
  OrderId order_id = 0;  // resting order, 0 for hidden liquidity
  Side side = Side::kBuy;
  Quantity quantity = 0;
  Symbol symbol;
  Price price = 0;
  ExecId execution_id = 0;
};

struct SnapshotBegin {
  std::uint8_t unit = 0;          // the live unit this snapshot covers
  std::uint32_t next_sequence = 0;  // first live sequence after the snapshot
};

struct SnapshotEnd {
  std::uint8_t unit = 0;
  std::uint32_t order_count = 0;  // resting orders carried in the cycle
};

using Message = std::variant<Time, AddOrder, OrderExecuted, ReduceSize, ModifyOrder,
                             DeleteOrder, Trade, SnapshotBegin, SnapshotEnd>;

inline constexpr std::size_t kUnitHeaderSize = 8;

// Encoded size of one message (AddOrder depends on its form).
[[nodiscard]] std::size_t encoded_size(const Message& message) noexcept;

// Appends one message to `w`.
void encode(const Message& message, net::WireWriter& w);

// Decodes one message; advances the reader past it. nullopt on malformed or
// unknown-type input.
[[nodiscard]] std::optional<Message> decode_one(net::WireReader& r);

struct UnitHeader {
  std::uint16_t length = 0;  // bytes including this header
  std::uint8_t count = 0;    // messages in the datagram
  std::uint8_t unit = 0;     // feed partition id
  std::uint32_t sequence = 0;  // sequence of the first message
};

// Packs messages into sequenced datagram payloads of bounded size. When a
// message would overflow the current datagram, the datagram is emitted via
// the sink and a new one begins. Real feeds pack the same way "for
// efficiency" (§2).
class FrameBuilder {
 public:
  using Sink = std::function<void(std::vector<std::byte> payload, const UnitHeader& header)>;

  // `max_payload` bounds the datagram payload (unit header included);
  // 1458 keeps the full frame within a 1500-byte Ethernet payload + margin.
  FrameBuilder(std::uint8_t unit, std::size_t max_payload, Sink sink);

  void append(const Message& message);
  // Emits the pending datagram, if any.
  void flush();

  [[nodiscard]] std::uint32_t next_sequence() const noexcept { return sequence_; }
  [[nodiscard]] std::size_t pending_messages() const noexcept { return count_; }

 private:
  void begin_frame();

  std::uint8_t unit_;
  std::size_t max_payload_;
  Sink sink_;
  std::uint32_t sequence_ = 1;
  std::vector<std::byte> buffer_;
  std::size_t count_ = 0;
};

// Parses a datagram payload. Returns nullopt when the unit header or any
// message is malformed.
struct ParsedFrame {
  UnitHeader header;
  std::vector<Message> messages;
};
[[nodiscard]] std::optional<ParsedFrame> parse_frame(std::span<const std::byte> payload);

// Zero-copy variant: invokes `fn` per message. Returns false on malformed
// input (fn may have been called for a prefix).
[[nodiscard]] bool for_each_message(std::span<const std::byte> payload,
                                    const std::function<void(const Message&)>& fn);

// Parses just the unit header (e.g. for gap detection at taps).
[[nodiscard]] std::optional<UnitHeader> peek_header(std::span<const std::byte> payload);

// ---------------------------------------------------------------------------
// Batch decode (ROADMAP item 4).
//
// `decode_batch` walks a whole datagram's messages into a caller-provided
// struct-of-arrays buffer in one pass: the per-message cost is one length/
// type load, one bounds check, and straight-line little-endian field loads
// into flat columns — no variant construction, no per-field reader checks,
// no callback dispatch. Consumers iterate `kind[0..count)` and read only the
// columns their switch arm needs.

enum class DecodedKind : std::uint8_t {
  kTime = 0,
  kAddOrder,
  kOrderExecuted,
  kReduceSize,
  kModifyOrder,
  kDeleteOrder,
  kTrade,
  kSnapshotBegin,
  kSnapshotEnd,
};

// SoA view of one decoded datagram. Row i holds message i; every column is
// resized to the datagram's message count, and only the fields the row's
// kind carries are meaningful:
//
//   kTime           u32a = seconds_since_midnight
//   kAddOrder       u32a = time_offset_ns; order_id, side, quantity, symbol,
//                   price, flags
//   kOrderExecuted  u32a = time_offset_ns; order_id, quantity, execution_id
//   kReduceSize     u32a = time_offset_ns; order_id, quantity (cancelled)
//   kModifyOrder    u32a = time_offset_ns; order_id, quantity, price, flags
//   kDeleteOrder    u32a = time_offset_ns; order_id
//   kTrade          u32a = time_offset_ns; order_id, side, quantity, symbol,
//                   price, execution_id
//   kSnapshotBegin  u32a = next_sequence; flags = unit
//   kSnapshotEnd    u32a = order_count;   flags = unit
//
// The buffer is reusable: columns keep their capacity across datagrams, so a
// warm consumer decodes allocation-free.
struct DecodedBatch {
  UnitHeader header;
  std::size_t count = 0;

  std::vector<DecodedKind> kind;
  std::vector<std::uint32_t> u32a;
  std::vector<OrderId> order_id;
  std::vector<Side> side;
  std::vector<Quantity> quantity;
  std::vector<Price> price;
  std::vector<ExecId> execution_id;
  std::vector<Symbol> symbol;
  std::vector<std::uint8_t> flags;

  void clear() noexcept { count = 0; }

  // AoS view of row i, for slow consumers and differential tests.
  [[nodiscard]] Message message_at(std::size_t i) const;
};

// Decodes every message of `payload` into `out`. Returns true when the whole
// datagram parsed; on malformed input returns false with `out.count` set to
// the valid message prefix (mirroring `for_each_message`, which invokes its
// callback for the prefix before reporting failure).
[[nodiscard]] bool decode_batch(std::span<const std::byte> payload, DecodedBatch& out);

}  // namespace tsn::proto::pitch
