// "Xpress" — a custom low-latency transport (§5, Protocols).
//
// The paper argues that standard Ethernet/IP/UDP headers (40+ bytes that
// strategies routinely ignore, costing ~40 ns of wire time at 10 Gb/s) are
// excessive for trading traffic, and suggests custom transports co-designed
// with L1S constraints. Xpress is such a design:
//
//  - A fixed 10-byte full header:
//      magic(1)=0xF5 ctx(1) stream(2) seq(4) length(2).
//    The stream id doubles as the filtering/load-balancing key §5 proposes
//    exposing to the network; the ctx byte announces the compression
//    context the sender will use for this stream (0xFF = never compressed).
//  - Stateful header compression for established streams: once a receiver
//    has seen a stream's full header, subsequent packets need only
//      compact:  (0x80|ctx)(1) length(2)            = 3 bytes,
//    which implies seq = last+1; after loss or reordering the sender emits
//      resync:   (0xC0|ctx)(1) seq(4) length(2)     = 7 bytes.
//    ctx is a 6-bit context id, so up to 64 streams can share one merged
//    L1S pipe. Because the pipe is shared, senders merging onto it must be
//    provisioned with disjoint context ranges (Compressor takes a base and
//    a limit) — the same coordination a patch panel already implies.
//
// Framing is self-delimiting (every header carries the payload length), so
// Xpress survives L1S merging, where frames from many inputs interleave on
// one output with no lower-layer demarcation.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/wire.hpp"

namespace tsn::proto::xpress {

inline constexpr std::uint8_t kMagicFull = 0xf5;
inline constexpr std::size_t kFullHeaderSize = 10;
inline constexpr std::size_t kCompactHeaderSize = 3;
inline constexpr std::size_t kResyncHeaderSize = 7;
inline constexpr std::size_t kMaxContexts = 64;
// ctx byte value meaning "this stream is never compressed".
inline constexpr std::uint8_t kNoContext = 0xff;

struct Frame {
  std::uint16_t stream_id = 0;
  std::uint32_t seq = 0;
  std::span<const std::byte> payload;
};

// Encodes one frame with a full (uncompressed) header.
[[nodiscard]] std::vector<std::byte> encode_full(std::uint16_t stream_id, std::uint32_t seq,
                                                 std::span<const std::byte> payload);

// Stateful compressing encoder for one sender on a pipe. Streams are
// assigned context ids in first-use order from the sender's provisioned
// range [ctx_base, ctx_base + ctx_limit); streams beyond the range fall
// back to permanent full headers. Senders sharing a merged pipe must be
// given disjoint ranges.
class Compressor {
 public:
  explicit Compressor(std::uint8_t ctx_base = 0,
                      std::uint8_t ctx_limit = kMaxContexts) noexcept;

  // Appends the encoded frame for `stream_id` to `out`; chooses full,
  // resync, or compact form automatically. Returns the header size used.
  std::size_t encode(std::uint16_t stream_id, std::uint32_t seq,
                     std::span<const std::byte> payload, std::vector<std::byte>& out);

  // Forces the next frame of every stream to carry a full header (e.g.
  // after the receiver reports loss of context).
  void reset() noexcept;

  [[nodiscard]] std::size_t context_count() const noexcept { return contexts_.size(); }

 private:
  struct Context {
    std::uint8_t id = kNoContext;
    std::uint32_t last_seq = 0;
    bool established = false;
  };
  std::unordered_map<std::uint16_t, Context> contexts_;
  std::uint8_t next_context_;
  std::uint8_t end_context_;
};

// Stateful decompressing decoder for one pipe. Feed it a byte stream; it
// yields frames. Compact headers for unknown contexts are unrecoverable
// until the next full header (counted, not thrown).
class Decompressor {
 public:
  struct Result {
    Frame frame;
    std::size_t consumed = 0;
  };

  // Decodes the first frame in `data` (which must start at a frame
  // boundary). nullopt when the data is incomplete or the context is
  // unknown; in the latter case `skip_unknown` says how many bytes to drop.
  [[nodiscard]] std::optional<Result> decode(std::span<const std::byte> data);

  [[nodiscard]] std::uint64_t unknown_context_errors() const noexcept {
    return unknown_context_errors_;
  }

 private:
  struct Context {
    std::uint16_t stream_id = 0;
    std::uint32_t last_seq = 0;
    bool known = false;
  };
  std::array<Context, kMaxContexts> contexts_{};
  std::uint64_t unknown_context_errors_ = 0;
};

// Header-overhead accounting used by the H1 bench: bytes of header per
// frame for standard UDP encapsulation vs Xpress.
struct OverheadComparison {
  std::size_t standard_headers = 0;  // eth + ipv4 + udp + fcs
  std::size_t xpress_full = kFullHeaderSize;
  std::size_t xpress_compact = kCompactHeaderSize;
};
[[nodiscard]] OverheadComparison overhead_comparison() noexcept;

}  // namespace tsn::proto::xpress
