// Feed partitioning schemes (§2, §3).
//
// Exchanges partition their market-data feeds across multicast groups —
// some alphabetically by ticker, some by instrument type. Trading firms
// re-partition normalized data with schemes of their own, and scale the
// partition count with load. All of those policies implement this one
// interface.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "proto/types.hpp"

namespace tsn::proto {

class PartitionScheme {
 public:
  virtual ~PartitionScheme() = default;

  // Maps an instrument to a partition in [0, partition_count()).
  [[nodiscard]] virtual std::uint32_t partition_of(const Symbol& symbol,
                                                   InstrumentKind kind) const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t partition_count() const noexcept = 0;
};

// Alphabetical by the ticker's first letter, split into `buckets`
// contiguous ranges of the A-Z space (e.g. 4 buckets: A-F, G-M, N-S, T-Z).
class AlphabetPartition final : public PartitionScheme {
 public:
  explicit AlphabetPartition(std::uint32_t buckets) : buckets_(buckets) {
    if (buckets == 0 || buckets > 26) throw std::invalid_argument{"1..26 buckets"};
  }

  [[nodiscard]] std::uint32_t partition_of(const Symbol& symbol,
                                           InstrumentKind /*kind*/) const noexcept override {
    char c = symbol.initial();
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
    if (c < 'A' || c > 'Z') return 0;
    return static_cast<std::uint32_t>(c - 'A') * buckets_ / 26;
  }
  [[nodiscard]] std::uint32_t partition_count() const noexcept override { return buckets_; }

 private:
  std::uint32_t buckets_;
};

// By instrument type: equities on one partition, ETFs on another, etc.
class KindPartition final : public PartitionScheme {
 public:
  [[nodiscard]] std::uint32_t partition_of(const Symbol& /*symbol*/,
                                           InstrumentKind kind) const noexcept override {
    return static_cast<std::uint32_t>(kind);
  }
  [[nodiscard]] std::uint32_t partition_count() const noexcept override { return 4; }
};

// Uniform hash over the symbol — the scheme trading firms use internally
// when they need many balanced partitions (§3 Implications).
class HashPartition final : public PartitionScheme {
 public:
  explicit HashPartition(std::uint32_t count) : count_(count) {
    if (count == 0) throw std::invalid_argument{"count must be positive"};
  }

  [[nodiscard]] std::uint32_t partition_of(const Symbol& symbol,
                                           InstrumentKind /*kind*/) const noexcept override {
    return static_cast<std::uint32_t>(std::hash<Symbol>{}(symbol) % count_);
  }
  [[nodiscard]] std::uint32_t partition_count() const noexcept override { return count_; }

 private:
  std::uint32_t count_;
};

// kind-major composite: partition = kind_index * inner_count + inner.
class CompositePartition final : public PartitionScheme {
 public:
  explicit CompositePartition(std::shared_ptr<const PartitionScheme> inner)
      : inner_(std::move(inner)) {
    if (!inner_) throw std::invalid_argument{"inner scheme required"};
  }

  [[nodiscard]] std::uint32_t partition_of(const Symbol& symbol,
                                           InstrumentKind kind) const noexcept override {
    return static_cast<std::uint32_t>(kind) * inner_->partition_count() +
           inner_->partition_of(symbol, kind);
  }
  [[nodiscard]] std::uint32_t partition_count() const noexcept override {
    return 4 * inner_->partition_count();
  }

 private:
  std::shared_ptr<const PartitionScheme> inner_;
};

}  // namespace tsn::proto
