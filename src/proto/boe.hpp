// "TsnBoe" — the binary order-entry protocol.
//
// Modelled on exchange order-entry protocols like Cboe BOE (§2): a
// session-oriented, little-endian binary protocol carried over long-lived
// TCP connections from the trading firm into the exchange. It supports
// login, new/cancel/modify order requests, and the exchange's
// acknowledgements, rejects and fills. The protocol intentionally exhibits
// the races the paper describes — e.g. a cancel request crossing a fill
// notification in flight — which the exchange resolves by rejecting the
// cancel with `kTooLateToCancel`.
//
// Wire layout: every message starts with a 9-byte header
//   magic(2)=0xBA7A length(2, incl. header) type(1) seq(4)
// followed by the type-specific body.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "net/wire.hpp"
#include "proto/types.hpp"

namespace tsn::proto::boe {

inline constexpr std::uint16_t kMagic = 0xba7a;
inline constexpr std::size_t kHeaderSize = 9;

enum class MessageType : std::uint8_t {
  kLoginRequest = 0x01,
  kLoginAccepted = 0x02,
  kLoginRejected = 0x03,
  kHeartbeat = 0x04,
  kLogout = 0x05,
  kReplayRequest = 0x06,
  kSequenceReset = 0x07,
  kNewOrder = 0x10,
  kCancelOrder = 0x11,
  kModifyOrder = 0x12,
  kOrderAccepted = 0x20,
  kOrderRejected = 0x21,
  kOrderCancelled = 0x22,
  kOrderModified = 0x23,
  kCancelRejected = 0x24,
  kFill = 0x25,
};

enum class RejectReason : std::uint8_t {
  kNone = 0,
  kInvalidSymbol = 1,
  kDuplicateOrderId = 2,
  kUnknownOrder = 3,
  kTooLateToCancel = 4,  // the cancel/fill race (§2)
  kRiskLimit = 5,
  kNotLoggedIn = 6,
  kInvalidPrice = 7,
  kInvalidQuantity = 8,
  kGatewayBackpressure = 9,  // shed by the gateway's bounded upstream queue
  kSessionInUse = 10,        // re-login with the wrong token while a live connection holds the session
};

enum class TimeInForce : std::uint8_t {
  kDay = 0,
  kImmediateOrCancel = 1,
};

struct LoginRequest {
  std::uint32_t session_id = 0;
  std::uint64_t token = 0;
};
struct LoginAccepted {};
struct LoginRejected {
  RejectReason reason = RejectReason::kNone;
};
struct Heartbeat {};
struct Logout {};

// Client → exchange after a resumed login: replay every sequenced response
// with seq > last_seen_seq. Session-level messages (logins, heartbeats,
// SequenceReset) carry seq 0 and are never replayed.
struct ReplayRequest {
  std::uint32_t last_seen_seq = 0;
};

// Exchange → client: replay is complete; the next sequenced message the
// session emits will carry `next_seq`.
struct SequenceReset {
  std::uint32_t next_seq = 1;
};

struct NewOrder {
  OrderId client_order_id = 0;
  Side side = Side::kBuy;
  Quantity quantity = 0;
  Symbol symbol;
  Price price = 0;
  TimeInForce tif = TimeInForce::kDay;
};

struct CancelOrder {
  OrderId client_order_id = 0;
};

struct ModifyOrder {
  OrderId client_order_id = 0;
  Quantity quantity = 0;
  Price price = 0;
};

struct OrderAccepted {
  OrderId client_order_id = 0;
  OrderId exchange_order_id = 0;
  std::uint64_t transact_time_ns = 0;
};

struct OrderRejected {
  OrderId client_order_id = 0;
  RejectReason reason = RejectReason::kNone;
};

struct OrderCancelled {
  OrderId client_order_id = 0;
  Quantity cancelled_quantity = 0;
};

struct OrderModified {
  OrderId client_order_id = 0;
  Quantity quantity = 0;
  Price price = 0;
};

struct CancelRejected {
  OrderId client_order_id = 0;
  RejectReason reason = RejectReason::kNone;
};

struct Fill {
  OrderId client_order_id = 0;
  ExecId execution_id = 0;
  Quantity quantity = 0;
  Price price = 0;
  Quantity leaves_quantity = 0;
};

using Message = std::variant<LoginRequest, LoginAccepted, LoginRejected, Heartbeat, Logout,
                             ReplayRequest, SequenceReset, NewOrder, CancelOrder, ModifyOrder,
                             OrderAccepted, OrderRejected, OrderCancelled, OrderModified,
                             CancelRejected, Fill>;

[[nodiscard]] MessageType type_of(const Message& message) noexcept;
[[nodiscard]] std::size_t encoded_size(const Message& message) noexcept;

// Encodes header + body. `seq` is the session sequence number.
[[nodiscard]] std::vector<std::byte> encode(const Message& message, std::uint32_t seq);

// Appending variant: encodes onto the end of `out` (not cleared), reusing
// its capacity — the per-message encode on the million-session send path.
void encode_into(const Message& message, std::uint32_t seq, std::vector<std::byte>& out);

struct Decoded {
  Message message;
  std::uint32_t seq = 0;
  std::size_t consumed = 0;
};

// Decodes the first complete message in `data`; nullopt when the buffer is
// malformed or the message is still incomplete (check `complete_length`).
[[nodiscard]] std::optional<Decoded> decode(std::span<const std::byte> data);

// Length the first message will have once fully buffered (0 when even the
// header is incomplete or the magic is wrong).
[[nodiscard]] std::size_t complete_length(std::span<const std::byte> data) noexcept;

// Reassembles a TCP byte stream into messages: feed arbitrary chunks, pop
// complete messages in order.
class StreamParser {
 public:
  void feed(std::span<const std::byte> chunk);
  // Pops the next complete message, or nullopt if more bytes are needed.
  // Malformed input sets broken() and stops producing.
  [[nodiscard]] std::optional<Decoded> next();
  [[nodiscard]] bool broken() const noexcept { return broken_; }
  [[nodiscard]] std::size_t buffered_bytes() const noexcept { return buffer_.size() - offset_; }

 private:
  std::vector<std::byte> buffer_;
  std::size_t offset_ = 0;
  bool broken_ = false;
};

}  // namespace tsn::proto::boe
