#include "proto/norm.hpp"

#include <stdexcept>
#include <utility>

#include "core/check.hpp"

namespace tsn::proto::norm {

void encode(const Update& update, net::WireWriter& w) {
  w.u8(static_cast<std::uint8_t>(update.kind));
  w.u8(update.exchange_id);
  w.u8(static_cast<std::uint8_t>(update.side));
  w.u8(update.flags);
  w.ascii(std::string_view{update.symbol.raw().data(), Symbol::kWidth}, Symbol::kWidth);
  w.u64_le(static_cast<std::uint64_t>(update.price));
  w.u32_le(update.quantity);
  w.u64_le(update.order_id);
  w.u64_le(update.exchange_time_ns);
}

std::optional<Update> decode_one(net::WireReader& r) {
  Update u;
  u.kind = static_cast<UpdateKind>(r.u8());
  u.exchange_id = r.u8();
  u.side = static_cast<Side>(r.u8());
  u.flags = r.u8();
  u.symbol = Symbol{r.ascii(Symbol::kWidth)};
  u.price = static_cast<Price>(r.u64_le());
  u.quantity = r.u32_le();
  u.order_id = r.u64_le();
  u.exchange_time_ns = r.u64_le();
  if (!r.ok()) return std::nullopt;
  if (static_cast<std::uint8_t>(u.kind) < 1 || static_cast<std::uint8_t>(u.kind) > 5) {
    return std::nullopt;
  }
  return u;
}

DatagramBuilder::DatagramBuilder(std::uint16_t partition, std::size_t max_payload, Sink sink)
    : partition_(partition), max_payload_(max_payload), sink_(std::move(sink)) {
  if (max_payload_ < kHeaderSize + kMessageSize) {
    throw std::invalid_argument{"max_payload too small"};
  }
  begin();
}

void DatagramBuilder::begin() {
  buffer_.clear();
  count_ = 0;
  net::WireWriter w{buffer_};
  w.u16_le(kMagic);
  w.u16_le(partition_);
  w.u16_le(0);  // count, patched
  w.u32_le(sequence_);
  w.u64_le(0);  // send time, patched
}

void DatagramBuilder::append(const Update& update, std::uint64_t now_ns) {
  if (buffer_.size() + kMessageSize > max_payload_ || count_ == 0xffff) flush();
  TSN_DCHECK(buffer_.size() + kMessageSize <= max_payload_,
             "a freshly flushed datagram must have room for one update");
  if (count_ == 0) first_time_ns_ = now_ns;
  net::WireWriter w{buffer_};
  encode(update, w);
  ++count_;
  ++sequence_;
}

void DatagramBuilder::flush() {
  if (count_ == 0) return;
  TSN_ASSERT(buffer_.size() >= kHeaderSize,
             "datagram buffer must hold the full header before patching");
  net::WireWriter w{buffer_};
  w.patch_u16_le(4, static_cast<std::uint16_t>(count_));
  // Patch send time (bytes 10..17, little-endian).
  for (int i = 0; i < 8; ++i) {
    buffer_[10 + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((first_time_ns_ >> (8 * i)) & 0xff);
  }
  DatagramHeader header;
  header.partition = partition_;
  header.count = static_cast<std::uint16_t>(count_);
  header.sequence = sequence_ - static_cast<std::uint32_t>(count_);
  header.send_time_ns = first_time_ns_;
  sink_(std::move(buffer_), header);
  buffer_ = {};
  begin();
}

std::optional<DatagramHeader> peek_header(std::span<const std::byte> payload) {
  net::WireReader r{payload};
  if (r.u16_le() != kMagic) return std::nullopt;
  DatagramHeader h;
  h.partition = r.u16_le();
  h.count = r.u16_le();
  h.sequence = r.u32_le();
  h.send_time_ns = r.u64_le();
  if (!r.ok()) return std::nullopt;
  if (payload.size() < kHeaderSize + h.count * kMessageSize) return std::nullopt;
  return h;
}

bool for_each_update(std::span<const std::byte> payload,
                     const std::function<void(const Update&)>& fn) {
  const auto header = peek_header(payload);
  if (!header) return false;
  net::WireReader r{payload.subspan(kHeaderSize)};
  for (std::uint16_t i = 0; i < header->count; ++i) {
    auto update = decode_one(r);
    if (!update) return false;
    fn(*update);
  }
  return true;
}

std::optional<ParsedDatagram> parse(std::span<const std::byte> payload) {
  const auto header = peek_header(payload);
  if (!header) return std::nullopt;
  ParsedDatagram out;
  out.header = *header;
  out.updates.reserve(header->count);
  if (!for_each_update(payload, [&out](const Update& u) { out.updates.push_back(u); })) {
    return std::nullopt;
  }
  return out;
}

}  // namespace tsn::proto::norm
