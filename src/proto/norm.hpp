// "NORM" — the trading firm's internal normalized market-data format.
//
// Normalizers convert each exchange's native feed into this single standard
// format and re-partition it (§2), so strategies execute directly on
// relevant, uniform market data and common decode work is not repeated on
// every strategy server.
//
// Unlike exchange feeds, all NORM messages are one fixed 38-byte layout —
// fixed size is what makes strategy-side processing branch-free. Datagrams
// carry an 18-byte header: magic(2) partition(2) count(2) seq(4) time(8).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "net/wire.hpp"
#include "proto/types.hpp"

namespace tsn::proto::norm {

inline constexpr std::uint16_t kMagic = 0x4e4d;  // "NM"
inline constexpr std::size_t kHeaderSize = 18;
inline constexpr std::size_t kMessageSize = 38;

enum class UpdateKind : std::uint8_t {
  kOrderAdd = 1,
  kOrderDelete = 2,
  kOrderModify = 3,
  kTradePrint = 4,
  kBboUpdate = 5,  // post-filter best-bid-and-offer change (Fig 2b's events)
};

// One normalized market-data update. `exchange_time_ns` is the exchange's
// own stamp (nanoseconds since midnight); `price`/`quantity` are the
// post-update values.
struct Update {
  UpdateKind kind = UpdateKind::kBboUpdate;
  std::uint8_t exchange_id = 0;
  Side side = Side::kBuy;
  std::uint8_t flags = 0;
  Symbol symbol;
  Price price = 0;
  Quantity quantity = 0;
  OrderId order_id = 0;
  std::uint64_t exchange_time_ns = 0;
};

void encode(const Update& update, net::WireWriter& w);
[[nodiscard]] std::optional<Update> decode_one(net::WireReader& r);

struct DatagramHeader {
  std::uint16_t partition = 0;
  std::uint16_t count = 0;
  std::uint32_t sequence = 0;      // sequence of the first update
  std::uint64_t send_time_ns = 0;  // normalizer's transmit stamp
};

// Packs updates into bounded datagrams, like pitch::FrameBuilder.
class DatagramBuilder {
 public:
  using Sink = std::function<void(std::vector<std::byte> payload, const DatagramHeader& header)>;

  DatagramBuilder(std::uint16_t partition, std::size_t max_payload, Sink sink);

  void append(const Update& update, std::uint64_t now_ns);
  void flush();

  [[nodiscard]] std::uint32_t next_sequence() const noexcept { return sequence_; }

 private:
  void begin();

  std::uint16_t partition_;
  std::size_t max_payload_;
  Sink sink_;
  std::uint32_t sequence_ = 1;
  std::uint64_t first_time_ns_ = 0;
  std::vector<std::byte> buffer_;
  std::size_t count_ = 0;
};

struct ParsedDatagram {
  DatagramHeader header;
  std::vector<Update> updates;
};

[[nodiscard]] std::optional<ParsedDatagram> parse(std::span<const std::byte> payload);
[[nodiscard]] std::optional<DatagramHeader> peek_header(std::span<const std::byte> payload);
[[nodiscard]] bool for_each_update(std::span<const std::byte> payload,
                                   const std::function<void(const Update&)>& fn);

}  // namespace tsn::proto::norm
