// Generational trend model for commodity switches (§3, Latency Trends and
// Multicast Trends).
//
// The paper's observations, encoded as data:
//  - bandwidth roughly doubles with each generation;
//  - minimum latency has *increased* ~20% over the decade, to ~500 ns;
//  - multicast group capacity grew only ~80% across the same generations,
//    while market data grew ~500% in 5 years.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tsn::l2 {

struct SwitchGeneration {
  int year = 0;
  std::string name;
  double bandwidth_tbps = 0.0;
  sim::Duration min_latency;          // cut-through, simple pipeline
  std::size_t mcast_group_capacity = 0;
};

class SwitchTrendModel {
 public:
  // A synthetic six-generation commodity roadmap, 2014-2024, calibrated to
  // the paper's trend statements (not to any vendor's actual parts).
  [[nodiscard]] static std::vector<SwitchGeneration> commodity_roadmap();

  // Linear interpolation over the roadmap.
  [[nodiscard]] static sim::Duration latency_at(int year);
  [[nodiscard]] static std::size_t mcast_groups_at(int year);
  [[nodiscard]] static double bandwidth_at(int year);

  // Latency of one hop through a tuned software host (kernel-bypass "ping
  // pong"), which has been *decreasing* (§3): ~2 us a decade ago, <1 us now.
  [[nodiscard]] static sim::Duration software_hop_at(int year);
};

}  // namespace tsn::l2
