#include "l2/commodity_switch.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/check.hpp"
#include "telemetry/trace.hpp"

namespace tsn::l2 {

CommoditySwitch::CommoditySwitch(sim::Scheduler& engine, std::string name,
                                 CommoditySwitchConfig config)
    : engine_(engine),
      name_(std::move(name)),
      config_(config),
      egress_(config.port_count, nullptr),
      router_port_(config.port_count, false),
      mroutes_(config.mroute_hardware_capacity) {
  TSN_ASSERT(config.port_count > 0, "a switch needs at least one port");
}

void CommoditySwitch::attach_port(net::PortId port, net::Link& egress) noexcept {
  if (port < egress_.size()) egress_[port] = &egress;
}

void CommoditySwitch::set_router_port(net::PortId port, bool is_router) {
  router_port_.at(port) = is_router;
}

void CommoditySwitch::add_route(net::Ipv4Addr prefix, std::uint8_t prefix_len,
                                net::PortId port) {
  TSN_ASSERT(prefix_len <= 32, "IPv4 prefix length cannot exceed 32 bits");
  const std::uint32_t mask =
      prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
  const std::uint32_t canonical = prefix.value() & mask;
  for (auto& route : routes_) {
    if (route.prefix == canonical && route.len == prefix_len) {
      if (std::find(route.ports.begin(), route.ports.end(), port) == route.ports.end()) {
        route.ports.push_back(port);
      }
      return;
    }
  }
  routes_.push_back(Route{canonical, prefix_len, {port}});
  std::sort(routes_.begin(), routes_.end(),
            [](const Route& a, const Route& b) { return a.len > b.len; });
}

void CommoditySwitch::bind_host(net::Ipv4Addr ip, net::MacAddr mac, net::PortId port) {
  add_route(ip, 32, port);
  host_macs_[ip] = mac;
}

void CommoditySwitch::join_group(net::Ipv4Addr group, net::PortId port) {
  mroutes_.join(group, port);
}

void CommoditySwitch::leave_group(net::Ipv4Addr group, net::PortId port) {
  mroutes_.leave(group, port);
}

const CommoditySwitch::Route* CommoditySwitch::lookup_route(net::Ipv4Addr dst) const noexcept {
  for (const auto& route : routes_) {
    const std::uint32_t mask = route.len == 0 ? 0 : ~std::uint32_t{0} << (32 - route.len);
    if ((dst.value() & mask) == route.prefix) return &route;
  }
  return nullptr;
}

std::uint64_t CommoditySwitch::flow_hash(const net::DecodedFrame& frame) noexcept {
  // FNV-1a over the 5-tuple: stable per flow, so ECMP never reorders a flow.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  if (frame.ip) {
    mix(frame.ip->src.value());
    mix(frame.ip->dst.value());
    mix(frame.ip->protocol);
  }
  if (frame.udp) {
    mix(frame.udp->src_port);
    mix(frame.udp->dst_port);
  } else if (frame.tcp) {
    mix(frame.tcp->src_port);
    mix(frame.tcp->dst_port);
  }
  return h;
}

void CommoditySwitch::stall_port(net::PortId port, sim::Duration duration) {
  if (port >= egress_.size()) return;
  if (port_stalled_until_.empty()) {
    port_stalled_until_.assign(egress_.size(), sim::Time::zero());
  }
  const sim::Time until = engine_.now() + duration;
  if (until > port_stalled_until_[port]) port_stalled_until_[port] = until;
}

bool CommoditySwitch::port_stalled(net::PortId port) const noexcept {
  return port < port_stalled_until_.size() && port_stalled_until_[port] > engine_.now();
}

void CommoditySwitch::transmit_on(net::PortId port, const net::PacketPtr& packet) {
  if (port >= egress_.size() || egress_[port] == nullptr) return;
  if (port_stalled(port)) {
    // Held frames release at the stall's end; same-release-time events fire
    // in scheduling order, so the stalled stream stays in order.
    ++stats_.frames_stalled;
    auto self = this;
    engine_.schedule_at(port_stalled_until_[port],
                        [self, port, packet] { self->transmit_on(port, packet); });
    return;
  }
  egress_[port]->transmit(packet);
}

void CommoditySwitch::receive(const net::PacketPtr& packet, net::PortId in_port) {
  TSN_DCHECK(egress_.size() == config_.port_count && router_port_.size() == config_.port_count,
             "port tables must stay sized to the configured port count");
  if (!admin_up_) {
    ++stats_.admin_down_drops;
    return;
  }
  if (loss_override_ > 0.0 && fault_rng_.bernoulli(loss_override_)) {
    ++stats_.fault_loss_drops;
    return;
  }
  auto frame = net::decode_frame(packet->frame());
  if (!frame || !frame->ip) {
    ++stats_.no_route_drops;  // non-IP traffic is not carried on these fabrics
    return;
  }
  if (frame->ip->protocol == net::kIpProtoIgmp) {
    if (auto igmp = mcast::IgmpMessage::decode(frame->payload)) {
      handle_igmp(packet, *igmp, in_port);
    }
    return;
  }
  if (frame->ip->dst.is_multicast()) {
    forward_multicast(packet, frame->ip->dst, in_port);
  } else {
    forward_unicast(packet, *frame, in_port);
  }
}

void CommoditySwitch::forward_unicast(const net::PacketPtr& packet,
                                      const net::DecodedFrame& frame, net::PortId in_port) {
  const Route* route = lookup_route(frame.ip->dst);
  if (route == nullptr || route->ports.empty()) {
    ++stats_.no_route_drops;
    return;
  }
  net::PortId out_port = route->ports.size() == 1
                             ? route->ports[0]
                             : route->ports[flow_hash(frame) % route->ports.size()];
  if (out_port == in_port) {
    ++stats_.no_route_drops;  // would hairpin; treat as routing misconfig
    return;
  }
  // Last-hop MAC rewrite for directly attached hosts, so NIC filters accept
  // the routed frame. The rewritten copy keeps the original id/timestamp —
  // it is the same frame on the wire.
  net::PacketPtr out = packet;
  if (auto it = host_macs_.find(frame.ip->dst);
      it != host_macs_.end() && frame.eth.dst != it->second) {
    rewrite_scratch_.assign(packet->frame().begin(), packet->frame().end());
    const auto& mac = it->second.octets();
    for (std::size_t i = 0; i < 6; ++i) rewrite_scratch_[i] = static_cast<std::byte>(mac[i]);
    out = factory_.remake(rewrite_scratch_, packet->created(), packet->id(), packet->trace());
  }
  ++stats_.unicast_forwarded;
  const sim::Duration delay = config_.forwarding_latency;
  auto self = this;
  const sim::Time rx = engine_.now();
  engine_.schedule_in(delay, [self, out, out_port, rx] {
    // Switch span: frame rx to egress hand-off; the route/mroute lookup and
    // pipeline latency are inside it.
    telemetry::record_span(out->trace(), self->name_, telemetry::SpanKind::kSwitch, rx,
                           self->engine_.now());
    self->transmit_on(out_port, out);
  });
}

void CommoditySwitch::forward_multicast(const net::PacketPtr& packet, net::Ipv4Addr group,
                                        net::PortId in_port) {
  // IGMP-snooping forwarding rule with split horizon: multicast arriving on
  // a non-router port is always pushed toward the router ports (the
  // multicast tree root), so sources reach subscribed subtrees; traffic
  // arriving *from* a router port only follows learned receiver ports.
  // This mirrors a PIM rendezvous-point tree and keeps leaf-spine fabrics
  // loop-free for multicast.
  const bool from_router = in_port < router_port_.size() && router_port_[in_port];
  std::vector<net::PortId> extra;
  if (!from_router) {
    for (net::PortId p = 0; p < router_port_.size(); ++p) {
      if (router_port_[p] && p != in_port) extra.push_back(p);
    }
  }
  const auto entry = mroutes_.lookup(group);
  // Final egress set: learned receiver ports plus the router-port pushes.
  std::vector<net::PortId> out = extra;
  if (entry.ports != nullptr) {
    for (net::PortId p : *entry.ports) {
      if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
    }
  }
  if (out.empty()) {
    if (entry.ports == nullptr && config_.flood_unknown_multicast) {
      // Flood out of every attached port except the ingress.
      std::vector<net::PortId> all;
      for (net::PortId p = 0; p < egress_.size(); ++p) {
        if (egress_[p] != nullptr) all.push_back(p);
      }
      replicate(packet, all, in_port, config_.forwarding_latency);
      ++stats_.multicast_hw_forwarded;
      return;
    }
    ++stats_.no_group_drops;
    return;
  }
  const bool hardware = entry.ports == nullptr || entry.hardware;
  if (hardware) {
    ++stats_.multicast_hw_forwarded;
    replicate(packet, out, in_port, config_.forwarding_latency);
    return;
  }
  // Software path: single-server queue with bounded depth. Queue depth is
  // derived from how far ahead the server is booked.
  const sim::Time now = engine_.now();
  const sim::Duration backlog =
      software_free_at_ > now ? software_free_at_ - now : sim::Duration::zero();
  const auto queued = static_cast<std::size_t>(backlog / config_.software_service_time);
  if (queued >= config_.software_queue_packets) {
    ++stats_.software_queue_drops;
    return;
  }
  const sim::Time done = (software_free_at_ > now ? software_free_at_ : now) +
                         config_.software_service_time;
  TSN_DCHECK(done >= now, "software service completion cannot precede now");
  software_free_at_ = done;
  ++stats_.multicast_sw_forwarded;
  replicate(packet, out, in_port, done - now);
}

void CommoditySwitch::replicate(const net::PacketPtr& packet,
                                const std::vector<net::PortId>& ports, net::PortId in_port,
                                sim::Duration extra_delay) {
  auto self = this;
  const sim::Time rx = engine_.now();
  for (net::PortId port : ports) {
    if (port == in_port) continue;
    ++stats_.replications;
    engine_.schedule_in(extra_delay, [self, packet, port, rx] {
      telemetry::record_span(packet->trace(), self->name_, telemetry::SpanKind::kSwitch, rx,
                             self->engine_.now());
      self->transmit_on(port, packet);
    });
  }
}

void CommoditySwitch::handle_igmp(const net::PacketPtr& packet,
                                  const mcast::IgmpMessage& message, net::PortId in_port) {
  ++stats_.igmp_processed;
  switch (message.type) {
    case mcast::IgmpType::kMembershipReport:
      mroutes_.join(message.group, in_port);
      last_report_[MembershipKey{message.group.value(), in_port}] = engine_.now();
      break;
    case mcast::IgmpType::kLeaveGroup:
      mroutes_.leave(message.group, in_port);
      last_report_.erase(MembershipKey{message.group.value(), in_port});
      break;
    case mcast::IgmpType::kMembershipQuery:
      return;  // another querier's probe: nothing to program
  }
  // Relay the report toward router ports so upstream switches learn that
  // this subtree has receivers.
  std::vector<net::PortId> uplinks;
  for (net::PortId p = 0; p < router_port_.size(); ++p) {
    if (router_port_[p] && p != in_port) uplinks.push_back(p);
  }
  replicate(packet, uplinks, in_port, config_.forwarding_latency);
}

void CommoditySwitch::register_metrics(telemetry::Registry& registry,
                                       const std::string& prefix) const {
  const std::string base = prefix + "." + name_;
  registry.gauge(base + ".unicast_forwarded",
                 [this] { return static_cast<double>(stats_.unicast_forwarded); });
  registry.gauge(base + ".multicast_hw_forwarded",
                 [this] { return static_cast<double>(stats_.multicast_hw_forwarded); });
  registry.gauge(base + ".multicast_sw_forwarded",
                 [this] { return static_cast<double>(stats_.multicast_sw_forwarded); });
  registry.gauge(base + ".software_queue_drops",
                 [this] { return static_cast<double>(stats_.software_queue_drops); });
  registry.gauge(base + ".no_route_drops",
                 [this] { return static_cast<double>(stats_.no_route_drops); });
  registry.gauge(base + ".no_group_drops",
                 [this] { return static_cast<double>(stats_.no_group_drops); });
  registry.gauge(base + ".replications",
                 [this] { return static_cast<double>(stats_.replications); });
  registry.gauge(base + ".admin_down_drops",
                 [this] { return static_cast<double>(stats_.admin_down_drops); });
  registry.gauge(base + ".fault_loss_drops",
                 [this] { return static_cast<double>(stats_.fault_loss_drops); });
  registry.gauge(base + ".frames_stalled",
                 [this] { return static_cast<double>(stats_.frames_stalled); });
  // Current depth of the software forwarding queue (in service times).
  registry.gauge(base + ".software_queue_depth", [this] {
    const sim::Time now = engine_.now();
    if (software_free_at_ <= now) return 0.0;
    return static_cast<double>((software_free_at_ - now) / config_.software_service_time);
  });
  mroutes_.register_metrics(registry, base + ".mroute");
}

void CommoditySwitch::start_querier() {
  if (querier_running_) return;
  if (config_.igmp_query_interval <= sim::Duration::zero() ||
      config_.membership_timeout <= sim::Duration::zero()) {
    throw std::invalid_argument{
        "start_querier requires positive igmp_query_interval and membership_timeout"};
  }
  querier_running_ = true;
  engine_.schedule_in(config_.igmp_query_interval, [this] { querier_tick(); });
}

void CommoditySwitch::querier_tick() {
  // 1. Send a General Query out of every attached host-facing port.
  const auto frame = mcast::build_igmp_frame(
      net::MacAddr::from_host_id(0xfffe), net::Ipv4Addr{10, 255, 255, 254},
      mcast::IgmpMessage{mcast::IgmpType::kMembershipQuery, net::Ipv4Addr{}});
  const auto packet = factory_.make(std::span<const std::byte>{frame}, engine_.now());
  for (net::PortId p = 0; p < egress_.size(); ++p) {
    if (egress_[p] != nullptr && !(p < router_port_.size() && router_port_[p])) {
      transmit_on(p, packet);
    }
  }
  // 2. Age out memberships that missed their refresh window.
  const sim::Time now = engine_.now();
  // Uniform age-out sweep: the surviving set and the eviction counters are
  // the same whatever order entries expire in.
  // tsn-lint: allow(unordered-iter) order-independent: uniform age-out sweep
  for (auto it = last_report_.begin(); it != last_report_.end();) {
    if (now - it->second > config_.membership_timeout) {
      mroutes_.leave(net::Ipv4Addr{it->first.group}, it->first.port);
      ++aged_out_;
      it = last_report_.erase(it);
    } else {
      ++it;
    }
  }
  engine_.schedule_in(config_.igmp_query_interval, [this] { querier_tick(); });
}

}  // namespace tsn::l2
