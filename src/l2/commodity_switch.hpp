// The commodity data-center switch model (Design 1's building block, §4.1).
//
// Behaviour modelled:
//  - Cut-through forwarding with a fixed pipeline latency (~500 ns for
//    current-generation devices, §3 Latency Trends). Serialization is
//    charged by the egress Link, so "switch hop latency" in the paper's
//    arithmetic corresponds to `forwarding_latency` here.
//  - L3 unicast via longest-prefix-match routes with ECMP across equal-cost
//    egress ports (leaf-spine runs a standard Layer-3 protocol, §4.1); the
//    route table is programmed by the topology builder, standing in for BGP.
//  - IP multicast via an mroute table with bounded hardware capacity.
//    Groups that overflow the ASIC table are forwarded on a software path:
//    a single-server queue with a much larger per-packet service time and a
//    bounded queue whose overflow drops frames — "cripples performance and
//    induces heavy packet loss" (§3 Multicast Trends).
//  - IGMPv2 snooping to learn receiver ports, with report propagation
//    toward configured router (uplink) ports.
//  - Last-hop MAC rewrite for routed unicast so host NIC filters behave.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mcast/igmp.hpp"
#include "mcast/mroute.hpp"
#include "net/fabric.hpp"
#include "net/headers.hpp"
#include "sim/scheduler.hpp"
#include "sim/random.hpp"

namespace tsn::l2 {

struct CommoditySwitchConfig {
  std::size_t port_count = 48;
  // Pipeline latency of the hardware forwarding path.
  sim::Duration forwarding_latency = sim::nanos(std::int64_t{500});
  // ASIC mroute table size (groups).
  std::size_t mroute_hardware_capacity = 512;
  // Software (CPU) forwarding path, used when the mroute table overflows:
  // per-packet service time and bounded queue.
  sim::Duration software_service_time = sim::micros(std::int64_t{40});
  std::size_t software_queue_packets = 256;
  // Frames to unknown multicast groups are dropped (snooping, no querier).
  bool flood_unknown_multicast = false;
  // Querier + membership aging (both disabled when zero). With a querier
  // running, receiver ports that stop answering queries are aged out of
  // the mroute table after `membership_timeout` — how real snooping state
  // behaves. Enable via start_querier().
  sim::Duration igmp_query_interval = sim::Duration::zero();
  sim::Duration membership_timeout = sim::Duration::zero();
};

struct SwitchStats {
  std::uint64_t unicast_forwarded = 0;
  std::uint64_t multicast_hw_forwarded = 0;
  std::uint64_t multicast_sw_forwarded = 0;
  std::uint64_t software_queue_drops = 0;
  std::uint64_t no_route_drops = 0;
  std::uint64_t no_group_drops = 0;
  std::uint64_t igmp_processed = 0;
  std::uint64_t replications = 0;  // egress copies made for multicast
  // Fault-injection accounting.
  std::uint64_t admin_down_drops = 0;    // received while the switch was down
  std::uint64_t fault_loss_drops = 0;    // dropped by an injected loss override
  std::uint64_t frames_stalled = 0;      // delayed by a stalled egress port
};

class CommoditySwitch final : public net::PortedDevice, public net::FaultHook {
 public:
  CommoditySwitch(sim::Scheduler& engine, std::string name, CommoditySwitchConfig config);

  // --- wiring -------------------------------------------------------------
  void attach_port(net::PortId port, net::Link& egress) noexcept override;
  // Marks a port as facing another switch/router: IGMP reports are relayed
  // out of these ports so upstream mroute tables learn the subtree.
  void set_router_port(net::PortId port, bool is_router = true);

  // --- control plane (programmed by the topology builder / "BGP") ---------
  // Adds a route for prefix/len; multiple calls with the same prefix add
  // ECMP next-hop ports.
  void add_route(net::Ipv4Addr prefix, std::uint8_t prefix_len, net::PortId port);
  // Binds a directly-attached host: installs a /32 route and enables
  // last-hop destination-MAC rewrite.
  void bind_host(net::Ipv4Addr ip, net::MacAddr mac, net::PortId port);
  // Programs a static multicast route (alternative to IGMP snooping).
  void join_group(net::Ipv4Addr group, net::PortId port);
  void leave_group(net::Ipv4Addr group, net::PortId port);
  // Starts periodic General Queries and membership aging (requires both
  // intervals in the config to be positive). Runs until the engine stops.
  void start_querier();

  // --- fault injection ------------------------------------------------------
  // FaultHook: while admin-down every received frame is dropped (a powered-
  // off or rebooting switch); a loss override randomly discards received
  // frames (ASIC parity errors, overheating optics).
  void set_admin_up(bool up) noexcept override { admin_up_ = up; }
  [[nodiscard]] bool admin_up() const noexcept override { return admin_up_; }
  void set_loss_override(double probability) noexcept override {
    loss_override_ = probability;
  }
  [[nodiscard]] double loss_override() const noexcept override { return loss_override_; }
  // Deterministic stream for fault-loss draws.
  void seed_fault_loss(std::uint64_t seed) noexcept { fault_rng_ = sim::Rng{seed}; }
  // Pauses one egress port: frames bound for it during the stall window are
  // held and released, in order, when the stall ends — head-of-line blocking
  // from a PFC storm or a draining linecard buffer.
  void stall_port(net::PortId port, sim::Duration duration);
  [[nodiscard]] bool port_stalled(net::PortId port) const noexcept;

  // --- data plane ----------------------------------------------------------
  void receive(const net::PacketPtr& packet, net::PortId in_port) override;

  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] const SwitchStats& stats() const noexcept { return stats_; }
  // Registers forwarding/drop counters and mroute occupancy as telemetry
  // gauges under "<prefix>.<switch name>".
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const;
  [[nodiscard]] std::uint64_t memberships_aged_out() const noexcept { return aged_out_; }
  [[nodiscard]] const mcast::MrouteTable& mroutes() const noexcept { return mroutes_; }
  [[nodiscard]] mcast::MrouteTable& mroutes() noexcept { return mroutes_; }
  [[nodiscard]] const CommoditySwitchConfig& config() const noexcept { return config_; }

 private:
  struct Route {
    std::uint32_t prefix = 0;
    std::uint8_t len = 0;
    std::vector<net::PortId> ports;  // ECMP set
  };

  void forward_unicast(const net::PacketPtr& packet, const net::DecodedFrame& frame,
                       net::PortId in_port);
  void forward_multicast(const net::PacketPtr& packet, net::Ipv4Addr group, net::PortId in_port);
  void replicate(const net::PacketPtr& packet, const std::vector<net::PortId>& ports,
                 net::PortId in_port, sim::Duration extra_delay);
  void handle_igmp(const net::PacketPtr& packet, const mcast::IgmpMessage& message,
                   net::PortId in_port);
  void transmit_on(net::PortId port, const net::PacketPtr& packet);
  [[nodiscard]] const Route* lookup_route(net::Ipv4Addr dst) const noexcept;
  [[nodiscard]] static std::uint64_t flow_hash(const net::DecodedFrame& frame) noexcept;

  sim::Scheduler& engine_;
  std::string name_;
  CommoditySwitchConfig config_;
  std::vector<net::Link*> egress_;  // per port, may be null (unused port)
  std::vector<bool> router_port_;
  std::vector<Route> routes_;  // sorted by descending prefix length
  std::unordered_map<net::Ipv4Addr, net::MacAddr> host_macs_;
  mcast::MrouteTable mroutes_;
  SwitchStats stats_;
  // Software forwarding path state (single server queue).
  sim::Time software_free_at_ = sim::Time::zero();
  // Fault-injection state.
  bool admin_up_ = true;
  double loss_override_ = -1.0;  // negative: no injected ingress loss
  sim::Rng fault_rng_{0xfa017a57};
  std::vector<sim::Time> port_stalled_until_;  // lazily sized to port_count
  // Querier / aging state.
  void querier_tick();
  struct MembershipKey {
    std::uint32_t group = 0;
    net::PortId port = 0;
    bool operator==(const MembershipKey&) const = default;
  };
  struct MembershipKeyHash {
    std::size_t operator()(const MembershipKey& k) const noexcept {
      return std::hash<std::uint64_t>{}((std::uint64_t{k.group} << 32) | k.port);
    }
  };
  std::unordered_map<MembershipKey, sim::Time, MembershipKeyHash> last_report_;
  // Pooled source for frames this switch originates (IGMP queries) or
  // rewrites (last-hop MAC); the scratch buffer keeps rewrites
  // allocation-free for pool-inlined frame sizes.
  net::PacketFactory factory_;
  std::vector<std::byte> rewrite_scratch_;
  bool querier_running_ = false;
  std::uint64_t aged_out_ = 0;
};

}  // namespace tsn::l2
