#include "l2/trends.hpp"

#include <algorithm>

namespace tsn::l2 {

std::vector<SwitchGeneration> SwitchTrendModel::commodity_roadmap() {
  // Bandwidth doubles per generation; latency +20% across the decade to
  // ~500 ns; multicast groups +80% across the decade.
  return {
      {2014, "gen1", 1.28, sim::nanos(std::int64_t{417}), 2800},
      {2016, "gen2", 2.56, sim::nanos(std::int64_t{430}), 3100},
      {2018, "gen3", 5.12, sim::nanos(std::int64_t{445}), 3600},
      {2020, "gen4", 10.24, sim::nanos(std::int64_t{462}), 4100},
      {2022, "gen5", 20.48, sim::nanos(std::int64_t{480}), 4600},
      {2024, "gen6", 40.96, sim::nanos(std::int64_t{500}), 5040},
  };
}

namespace {

template <typename Get>
double interpolate(int year, Get get) {
  const auto roadmap = SwitchTrendModel::commodity_roadmap();
  if (year <= roadmap.front().year) return get(roadmap.front());
  if (year >= roadmap.back().year) return get(roadmap.back());
  for (std::size_t i = 1; i < roadmap.size(); ++i) {
    if (year <= roadmap[i].year) {
      const auto& a = roadmap[i - 1];
      const auto& b = roadmap[i];
      const double t = static_cast<double>(year - a.year) / static_cast<double>(b.year - a.year);
      return get(a) + t * (get(b) - get(a));
    }
  }
  return get(roadmap.back());
}

}  // namespace

sim::Duration SwitchTrendModel::latency_at(int year) {
  return sim::nanos(
      interpolate(year, [](const SwitchGeneration& g) { return g.min_latency.nanos(); }));
}

std::size_t SwitchTrendModel::mcast_groups_at(int year) {
  return static_cast<std::size_t>(interpolate(
      year, [](const SwitchGeneration& g) { return static_cast<double>(g.mcast_group_capacity); }));
}

double SwitchTrendModel::bandwidth_at(int year) {
  return interpolate(year, [](const SwitchGeneration& g) { return g.bandwidth_tbps; });
}

sim::Duration SwitchTrendModel::software_hop_at(int year) {
  // ~2 us in 2014 falling to ~0.8 us in 2024 (below 1 us today, §3).
  const int clamped = std::clamp(year, 2014, 2024);
  const double us = 2.0 - 0.12 * (clamped - 2014);
  return sim::micros(us);
}

}  // namespace tsn::l2
