// Record-and-replay (§2).
//
// "Timestamps are also used for conducting simulations after the trading
// day has ended, and for analyzing the performance of new strategies
// being developed." This module closes that loop: a FrameRecorder captures
// complete frames with their timestamps (typically from a Tap's packet
// hook), and a FrameReplayer re-transmits the recording into a fresh
// simulation with the original inter-arrival spacing (optionally
// time-scaled). Because the simulator is deterministic, replaying a
// recorded feed through the same normalizer/strategy stack reproduces the
// day exactly — the property research tooling depends on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "book/order_book.hpp"
#include "net/nic.hpp"
#include "proto/pitch.hpp"
#include "sim/scheduler.hpp"

namespace tsn::capture {

struct RecordedFrame {
  sim::Time at;
  std::vector<std::byte> frame;
};

class FrameRecorder {
 public:
  void record(const net::PacketPtr& packet, sim::Time at) {
    frames_.push_back(RecordedFrame{
        at, std::vector<std::byte>{packet->frame().begin(), packet->frame().end()}});
  }

  [[nodiscard]] const std::vector<RecordedFrame>& frames() const noexcept { return frames_; }
  [[nodiscard]] std::size_t size() const noexcept { return frames_.size(); }
  void clear() noexcept { frames_.clear(); }

  // Serializes to a compact byte blob (and back): the "capture file".
  [[nodiscard]] std::vector<std::byte> serialize() const;
  [[nodiscard]] static std::vector<RecordedFrame> deserialize(
      std::span<const std::byte> blob);

 private:
  std::vector<RecordedFrame> frames_;
};

class FrameReplayer {
 public:
  // Replays into `out` (frames are sent exactly as recorded).
  FrameReplayer(sim::Scheduler& engine, net::Nic& out) noexcept : engine_(engine), out_(out) {}

  // Schedules every recorded frame: frame i fires at
  //   start + (recorded[i].at - recorded[0].at) / speed.
  // speed > 1 compresses time (a whole day in minutes); speed < 1 slows
  // it down. Returns the number of frames scheduled.
  std::size_t replay(const std::vector<RecordedFrame>& recording, sim::Time start,
                     double speed = 1.0);

  [[nodiscard]] std::size_t frames_sent() const noexcept { return sent_; }

 private:
  sim::Scheduler& engine_;
  net::Nic& out_;
  std::size_t sent_ = 0;
};

// Replay-to-book fast lane (ROADMAP item 4): walks a recording of feed
// frames straight into a book — decode_frame to find the UDP payload, one
// batch decode per datagram, then flat-column book updates. No scheduler,
// no NIC hop, no per-message variant: this is the path the "whole trading
// day through the strategy stack before tomorrow's open" use case needs,
// and what bench_micro_hotpaths measures as replay.to_book_msgs_per_s.
class BookReplayer {
 public:
  explicit BookReplayer(book::OrderBook& book) noexcept : book_(book) {}

  struct Stats {
    std::uint64_t datagrams = 0;
    std::uint64_t messages = 0;        // decoded rows seen
    std::uint64_t applied = 0;         // rows that mutated the book
    std::uint64_t malformed_datagrams = 0;
    std::uint64_t unknown_orders = 0;  // executes/reduces/deletes for unseen ids
  };

  // Applies one recorded Ethernet frame (non-UDP frames are counted
  // malformed). Returns messages applied to the book.
  std::uint64_t replay_frame(std::span<const std::byte> frame);
  // Applies one already-deframed datagram payload.
  std::uint64_t replay_payload(std::span<const std::byte> payload);
  // Replays a whole recording in order; returns total messages applied.
  std::uint64_t replay(const std::vector<RecordedFrame>& recording);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] book::OrderBook& book() noexcept { return book_; }

 private:
  std::uint64_t apply(const proto::pitch::DecodedBatch& batch);

  book::OrderBook& book_;
  // Reusable batch buffer: warm replay decodes allocation-free.
  proto::pitch::DecodedBatch batch_;
  Stats stats_;
};

}  // namespace tsn::capture
