// Record-and-replay (§2).
//
// "Timestamps are also used for conducting simulations after the trading
// day has ended, and for analyzing the performance of new strategies
// being developed." This module closes that loop: a FrameRecorder captures
// complete frames with their timestamps (typically from a Tap's packet
// hook), and a FrameReplayer re-transmits the recording into a fresh
// simulation with the original inter-arrival spacing (optionally
// time-scaled). Because the simulator is deterministic, replaying a
// recorded feed through the same normalizer/strategy stack reproduces the
// day exactly — the property research tooling depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "net/nic.hpp"
#include "sim/scheduler.hpp"

namespace tsn::capture {

struct RecordedFrame {
  sim::Time at;
  std::vector<std::byte> frame;
};

class FrameRecorder {
 public:
  void record(const net::PacketPtr& packet, sim::Time at) {
    frames_.push_back(RecordedFrame{
        at, std::vector<std::byte>{packet->frame().begin(), packet->frame().end()}});
  }

  [[nodiscard]] const std::vector<RecordedFrame>& frames() const noexcept { return frames_; }
  [[nodiscard]] std::size_t size() const noexcept { return frames_.size(); }
  void clear() noexcept { frames_.clear(); }

  // Serializes to a compact byte blob (and back): the "capture file".
  [[nodiscard]] std::vector<std::byte> serialize() const;
  [[nodiscard]] static std::vector<RecordedFrame> deserialize(
      std::span<const std::byte> blob);

 private:
  std::vector<RecordedFrame> frames_;
};

class FrameReplayer {
 public:
  // Replays into `out` (frames are sent exactly as recorded).
  FrameReplayer(sim::Scheduler& engine, net::Nic& out) noexcept : engine_(engine), out_(out) {}

  // Schedules every recorded frame: frame i fires at
  //   start + (recorded[i].at - recorded[0].at) / speed.
  // speed > 1 compresses time (a whole day in minutes); speed < 1 slows
  // it down. Returns the number of frames scheduled.
  std::size_t replay(const std::vector<RecordedFrame>& recording, sim::Time start,
                     double speed = 1.0);

  [[nodiscard]] std::size_t frames_sent() const noexcept { return sent_; }

 private:
  sim::Scheduler& engine_;
  net::Nic& out_;
  std::size_t sent_ = 0;
};

}  // namespace tsn::capture
