// Passive network taps and capture appliances (§2).
//
// Trading firms record traffic with precise timestamps for monitoring and
// research: computing a strategy's latency means subtracting the time its
// most recent input arrived from the time its order left, and research
// needs event ordering at sub-100-picosecond precision. A `Tap` sits
// inline on a cable, forwards frames both ways with no added latency (an
// optical splitter), and stamps every frame with its capture clock — which
// has realistic offset, drift, and jitter, so clock-quality requirements
// can be studied rather than assumed away.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "sim/scheduler.hpp"
#include "sim/random.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::capture {

// A capture clock: measured = true + offset + drift * elapsed + jitter.
class CaptureClock {
 public:
  CaptureClock() = default;
  CaptureClock(sim::Duration offset, double drift_ppb, sim::Duration jitter_rms,
               std::uint64_t seed)
      : offset_(offset), drift_ppb_(drift_ppb), jitter_rms_(jitter_rms), rng_(seed) {}

  [[nodiscard]] sim::Time stamp(sim::Time true_time) noexcept {
    const double elapsed_s = true_time.seconds();
    const double drift_ps = drift_ppb_ * 1e-9 * elapsed_s * 1e12;
    const double jitter_ps = rng_.normal(0.0, static_cast<double>(jitter_rms_.picos()));
    return true_time + offset_ +
           sim::Duration{static_cast<std::int64_t>(drift_ps + jitter_ps)};
  }

 private:
  sim::Duration offset_ = sim::Duration::zero();
  double drift_ppb_ = 0.0;
  sim::Duration jitter_rms_ = sim::Duration::zero();
  sim::Rng rng_{0x7a95};
};

struct CaptureRecord {
  std::uint64_t packet_id = 0;
  std::uint32_t frame_bytes = 0;
  net::PortId port = 0;        // which side of the tap saw it
  sim::Time true_time;         // simulation truth
  sim::Time stamped_time;      // what the capture clock recorded
};

class Tap final : public net::PortedDevice {
 public:
  // Optional hook receiving every tapped packet (e.g. a FrameRecorder).
  using PacketHook = std::function<void(const net::PacketPtr&, net::PortId, sim::Time)>;

  Tap(sim::Scheduler& engine, std::string name, CaptureClock clock = {});

  void attach_port(net::PortId port, net::Link& egress) noexcept override;
  void receive(const net::PacketPtr& packet, net::PortId port) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  void set_packet_hook(PacketHook hook) { packet_hook_ = std::move(hook); }

  [[nodiscard]] const std::vector<CaptureRecord>& records() const noexcept { return records_; }
  void clear() noexcept { records_.clear(); }
  // Bounds memory for long runs: keep only the newest `limit` records.
  void set_record_limit(std::size_t limit) noexcept { record_limit_ = limit; }

  // Registers capture-volume gauges under "<prefix>".
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const {
    registry.gauge(prefix + ".records",
                   [this] { return static_cast<double>(records_.size()); });
    registry.gauge(prefix + ".frames_tapped",
                   [this] { return static_cast<double>(frames_tapped_); });
    registry.gauge(prefix + ".bytes_tapped",
                   [this] { return static_cast<double>(bytes_tapped_); });
  }

 private:
  sim::Scheduler& engine_;
  std::string name_;
  CaptureClock clock_;
  net::Link* egress_[2] = {nullptr, nullptr};
  PacketHook packet_hook_;
  std::vector<CaptureRecord> records_;
  std::size_t record_limit_ = 1 << 22;
  // Totals survive record eviction/clear, so gauges stay monotonic.
  std::uint64_t frames_tapped_ = 0;
  std::uint64_t bytes_tapped_ = 0;
};

// Cause/effect latency matching — the paper's strategy-latency measurement
// (order-out time minus most recent input-event time) — moved behind the
// telemetry metrics API; aliased here for existing call sites.
using LatencyTracker = telemetry::LatencyTracker;

}  // namespace tsn::capture
