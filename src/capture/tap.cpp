#include "capture/tap.hpp"

#include <utility>

namespace tsn::capture {

Tap::Tap(sim::Scheduler& engine, std::string name, CaptureClock clock)
    : engine_(engine), name_(std::move(name)), clock_(clock) {}

void Tap::attach_port(net::PortId port, net::Link& egress) noexcept {
  if (port < 2) egress_[port] = &egress;
}

void Tap::receive(const net::PacketPtr& packet, net::PortId port) {
  if (port >= 2) return;
  const sim::Time now = engine_.now();
  if (records_.size() >= record_limit_) {
    records_.erase(records_.begin(), records_.begin() + static_cast<std::ptrdiff_t>(
                                                            record_limit_ / 2));
  }
  records_.push_back(CaptureRecord{packet->id(), static_cast<std::uint32_t>(packet->size_bytes()),
                                   port, now, clock_.stamp(now)});
  ++frames_tapped_;
  bytes_tapped_ += packet->size_bytes();
  if (packet_hook_) packet_hook_(packet, port, now);
  // Pass-through: a splitter adds no forwarding latency. Port 0 traffic
  // continues out of port 1's egress and vice versa.
  net::Link* out = egress_[port ^ 1];
  if (out != nullptr) out->transmit(packet);
}

}  // namespace tsn::capture
