#include "capture/replay.hpp"

#include <memory>
#include <stdexcept>

#include "net/wire.hpp"

namespace tsn::capture {

std::vector<std::byte> FrameRecorder::serialize() const {
  std::vector<std::byte> out;
  net::WireWriter w{out};
  w.u32(0x7ca97e01);  // magic + version
  w.u64(frames_.size());
  for (const auto& frame : frames_) {
    w.u64(static_cast<std::uint64_t>(frame.at.picos()));
    w.u32(static_cast<std::uint32_t>(frame.frame.size()));
    w.bytes(frame.frame);
  }
  return out;
}

std::vector<RecordedFrame> FrameRecorder::deserialize(std::span<const std::byte> blob) {
  net::WireReader r{blob};
  if (r.u32() != 0x7ca97e01) throw std::invalid_argument{"not a capture blob"};
  const std::uint64_t count = r.u64();
  std::vector<RecordedFrame> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RecordedFrame frame;
    frame.at = sim::Time{static_cast<std::int64_t>(r.u64())};
    const std::uint32_t length = r.u32();
    const auto bytes = r.bytes(length);
    if (!r.ok()) throw std::invalid_argument{"truncated capture blob"};
    frame.frame.assign(bytes.begin(), bytes.end());
    out.push_back(std::move(frame));
  }
  return out;
}

std::size_t FrameReplayer::replay(const std::vector<RecordedFrame>& recording, sim::Time start,
                                  double speed) {
  if (speed <= 0.0) throw std::invalid_argument{"speed must be positive"};
  if (recording.empty()) return 0;
  const sim::Time origin = recording.front().at;
  for (const auto& recorded : recording) {
    const double offset_ps = static_cast<double>((recorded.at - origin).picos()) / speed;
    const sim::Time at = start + sim::Duration{static_cast<std::int64_t>(offset_ps)};
    // Own the bytes inside the event: the recording may be destroyed
    // before the replay fires.
    auto bytes = std::make_shared<const std::vector<std::byte>>(recorded.frame);
    engine_.schedule_at(at, [this, bytes] {
      out_.send_frame(std::span<const std::byte>{*bytes});
      ++sent_;
    });
  }
  return recording.size();
}

}  // namespace tsn::capture
