#include "capture/replay.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "net/headers.hpp"
#include "net/wire.hpp"

namespace tsn::capture {

std::vector<std::byte> FrameRecorder::serialize() const {
  std::vector<std::byte> out;
  net::WireWriter w{out};
  w.u32(0x7ca97e01);  // magic + version
  w.u64(frames_.size());
  for (const auto& frame : frames_) {
    w.u64(static_cast<std::uint64_t>(frame.at.picos()));
    w.u32(static_cast<std::uint32_t>(frame.frame.size()));
    w.bytes(frame.frame);
  }
  return out;
}

std::vector<RecordedFrame> FrameRecorder::deserialize(std::span<const std::byte> blob) {
  net::WireReader r{blob};
  if (r.u32() != 0x7ca97e01) throw std::invalid_argument{"not a capture blob"};
  const std::uint64_t count = r.u64();
  std::vector<RecordedFrame> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    RecordedFrame frame;
    frame.at = sim::Time{static_cast<std::int64_t>(r.u64())};
    const std::uint32_t length = r.u32();
    const auto bytes = r.bytes(length);
    if (!r.ok()) throw std::invalid_argument{"truncated capture blob"};
    frame.frame.assign(bytes.begin(), bytes.end());
    out.push_back(std::move(frame));
  }
  return out;
}

std::size_t FrameReplayer::replay(const std::vector<RecordedFrame>& recording, sim::Time start,
                                  double speed) {
  if (speed <= 0.0) throw std::invalid_argument{"speed must be positive"};
  if (recording.empty()) return 0;
  const sim::Time origin = recording.front().at;
  for (const auto& recorded : recording) {
    const double offset_ps = static_cast<double>((recorded.at - origin).picos()) / speed;
    const sim::Time at = start + sim::Duration{static_cast<std::int64_t>(offset_ps)};
    // Own the bytes inside the event: the recording may be destroyed
    // before the replay fires.
    auto bytes = std::make_shared<const std::vector<std::byte>>(recorded.frame);
    engine_.schedule_at(at, [this, bytes] {
      out_.send_frame(std::span<const std::byte>{*bytes});
      ++sent_;
    });
  }
  return recording.size();
}

std::uint64_t BookReplayer::replay_frame(std::span<const std::byte> frame) {
  const auto decoded = net::decode_frame(frame);
  if (!decoded || !decoded->is_udp()) {
    ++stats_.malformed_datagrams;
    return 0;
  }
  return replay_payload(decoded->payload);
}

std::uint64_t BookReplayer::replay_payload(std::span<const std::byte> payload) {
  ++stats_.datagrams;
  if (!proto::pitch::decode_batch(payload, batch_)) {
    // The valid prefix still applies (mirrors the normalizer's lane).
    ++stats_.malformed_datagrams;
  }
  return apply(batch_);
}

// tsn-lint: hotpath
std::uint64_t BookReplayer::apply(const proto::pitch::DecodedBatch& batch) {
  using proto::pitch::DecodedKind;
  std::uint64_t applied = 0;
  for (std::size_t i = 0; i < batch.count; ++i) {
    ++stats_.messages;
    switch (batch.kind[i]) {
      case DecodedKind::kAddOrder: {
        // Feed adds describe orders already resting on the exchange book,
        // so they never cross; submit() rests them directly.
        (void)book_.submit(book::Order{batch.order_id[i], batch.side[i], batch.price[i],
                                       batch.quantity[i]});
        ++applied;
        break;
      }
      case DecodedKind::kOrderExecuted: {
        const auto resting = book_.find(batch.order_id[i]);
        if (!resting) {
          ++stats_.unknown_orders;
          break;
        }
        const proto::Quantity traded = std::min(batch.quantity[i], resting->quantity);
        if (traded == resting->quantity) {
          (void)book_.cancel(batch.order_id[i]);
        } else {
          (void)book_.reduce(batch.order_id[i], resting->quantity - traded);
        }
        ++applied;
        break;
      }
      case DecodedKind::kReduceSize: {
        const auto resting = book_.find(batch.order_id[i]);
        if (!resting) {
          ++stats_.unknown_orders;
          break;
        }
        const proto::Quantity cut = std::min(batch.quantity[i], resting->quantity);
        if (cut == resting->quantity) {
          (void)book_.cancel(batch.order_id[i]);
        } else {
          (void)book_.reduce(batch.order_id[i], resting->quantity - cut);
        }
        ++applied;
        break;
      }
      case DecodedKind::kModifyOrder: {
        if (!book_.replace(batch.order_id[i], batch.quantity[i], batch.price[i])) {
          ++stats_.unknown_orders;
          break;
        }
        ++applied;
        break;
      }
      case DecodedKind::kDeleteOrder: {
        if (!book_.cancel(batch.order_id[i])) {
          ++stats_.unknown_orders;
          break;
        }
        ++applied;
        break;
      }
      case DecodedKind::kTime:
      case DecodedKind::kTrade:
      case DecodedKind::kSnapshotBegin:
      case DecodedKind::kSnapshotEnd:
        // Clock, off-book prints, and snapshot framing carry no book edits.
        break;
    }
  }
  return applied;
}

std::uint64_t BookReplayer::replay(const std::vector<RecordedFrame>& recording) {
  std::uint64_t applied = 0;
  for (const auto& recorded : recording) {
    applied += replay_frame(recorded.frame);
  }
  return applied;
}

}  // namespace tsn::capture
