// Correlated cross-feed bursts (§2).
//
// "Bursts across different feeds are often correlated because the
// underlying market conditions are related — e.g., the announcement of a
// new government regulation might cause the value of symbols in a sector
// to shift, in both equities and options markets." This model produces
// per-feed rate multipliers that share market-wide shock events: each
// feed's multiplier is a blend of a common factor (the market) and an
// idiosyncratic factor, so feeds spike together — the property that makes
// merged feeds and shared uplinks dangerous.
#pragma once

#include <cstdint>
#include <vector>

namespace tsn::feed {

struct CorrelatedBurstConfig {
  std::size_t feed_count = 3;
  std::size_t window_count = 1'000;
  // Weight of the common (market-wide) factor in each feed's rate; the
  // remainder is idiosyncratic. 0 = independent feeds, 1 = lockstep.
  double common_weight = 0.7;
  // Shock arrivals per series and their magnitude (multiplier).
  double shocks_per_series = 6.0;
  double shock_magnitude = 5.0;
  double shock_decay_windows = 10.0;
  // Background lognormal noise.
  double noise_sigma = 0.25;
};

struct CorrelatedBursts {
  // multipliers[f][w]: rate multiplier of feed f in window w (mean ~1).
  std::vector<std::vector<double>> multipliers;

  // Pearson correlation between two feeds' series.
  [[nodiscard]] double correlation(std::size_t a, std::size_t b) const;
  // Largest simultaneous (same-window) total across feeds, relative to the
  // mean total — the sizing number a merged link must absorb.
  [[nodiscard]] double peak_to_mean_total() const;
};

[[nodiscard]] CorrelatedBursts generate_correlated_bursts(const CorrelatedBurstConfig& config,
                                                          std::uint64_t seed);

}  // namespace tsn::feed
