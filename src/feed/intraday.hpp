// Intraday event-rate profile — Figure 2(b).
//
// The paper's figure: options market-data events affecting the BBO for a
// single stock across all 18 options exchanges, one trading day, counted in
// one-second windows. Trading runs 9:30-16:00 with almost nothing outside;
// the median second exceeds 300k events and the busiest second reaches
// 1.5M. The shape is the classic intraday "smile": an open burst, a midday
// trough, and a ramp into the close, with heavy-tailed spike seconds on
// top (correlated bursts, §2).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace tsn::feed {

struct IntradayConfig {
  std::uint32_t open_second = 9 * 3600 + 30 * 60;  // 9:30am
  std::uint32_t close_second = 16 * 3600;          // 4:00pm
  // Baseline (trough) rate in events/second; the smile multiplies this.
  double base_rate = 300'000.0;
  double open_boost = 2.4;     // multiplier at the opening bell
  double close_boost = 1.9;    // multiplier at the close
  double smile_decay_minutes = 25.0;  // how fast the open burst decays
  // Second-to-second lognormal noise (AR(1) on the log-rate).
  double noise_sigma = 0.18;
  double noise_phi = 0.85;
  // Heavy-tailed spike seconds (news, correlated cross-market bursts).
  double spikes_per_day = 40.0;
  double spike_pareto_alpha = 2.2;
  double spike_cap = 4.5;  // max spike multiplier
  // Tiny out-of-hours trickle (fraction of base).
  double after_hours_fraction = 0.0005;
};

class IntradayProfile {
 public:
  explicit IntradayProfile(IntradayConfig config = {});

  // Deterministic shape multiplier at a given second since midnight
  // (1.0 = trough level inside trading hours; ~0 outside).
  [[nodiscard]] double shape(std::uint32_t second_of_day) const noexcept;

  // Simulated per-second event counts for a whole day (86400 entries,
  // indexed by second since midnight). Deterministic per seed.
  [[nodiscard]] std::vector<std::uint64_t> second_counts(std::uint64_t seed) const;

  // Rate multiplier usable with exchange::ActivityConfig::rate_multiplier;
  // sim Time zero is midnight.
  [[nodiscard]] std::function<double(sim::Time)> rate_multiplier() const;

  [[nodiscard]] const IntradayConfig& config() const noexcept { return config_; }

 private:
  IntradayConfig config_;
};

}  // namespace tsn::feed
