#include "feed/correlated.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/random.hpp"

namespace tsn::feed {

namespace {

// One shock-laden factor series of mean ~1.
std::vector<double> factor_series(const CorrelatedBurstConfig& config, sim::Rng& rng) {
  std::vector<double> out(config.window_count, 1.0);
  const auto n_shocks = rng.poisson(config.shocks_per_series);
  for (std::uint64_t k = 0; k < n_shocks; ++k) {
    const auto at = static_cast<std::size_t>(rng.next_below(config.window_count));
    const double magnitude = 1.0 + rng.exponential(config.shock_magnitude - 1.0);
    for (std::size_t w = at; w < config.window_count; ++w) {
      const double decay = std::exp(-static_cast<double>(w - at) / config.shock_decay_windows);
      if (decay < 0.01) break;
      out[w] += (magnitude - 1.0) * decay;
    }
  }
  for (double& v : out) {
    v *= rng.lognormal(-0.5 * config.noise_sigma * config.noise_sigma, config.noise_sigma);
  }
  return out;
}

}  // namespace

CorrelatedBursts generate_correlated_bursts(const CorrelatedBurstConfig& config,
                                            std::uint64_t seed) {
  if (config.common_weight < 0.0 || config.common_weight > 1.0) {
    throw std::invalid_argument{"common_weight must be in [0, 1]"};
  }
  sim::Rng rng{seed};
  const auto market = factor_series(config, rng);
  CorrelatedBursts out;
  out.multipliers.resize(config.feed_count);
  for (std::size_t f = 0; f < config.feed_count; ++f) {
    const auto own = factor_series(config, rng);
    auto& series = out.multipliers[f];
    series.resize(config.window_count);
    for (std::size_t w = 0; w < config.window_count; ++w) {
      series[w] = config.common_weight * market[w] + (1.0 - config.common_weight) * own[w];
    }
  }
  return out;
}

double CorrelatedBursts::correlation(std::size_t a, std::size_t b) const {
  const auto& x = multipliers.at(a);
  const auto& y = multipliers.at(b);
  const auto n = static_cast<double>(x.size());
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double cov = 0.0;
  double vx = 0.0;
  double vy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - mx) * (y[i] - my);
    vx += (x[i] - mx) * (x[i] - mx);
    vy += (y[i] - my) * (y[i] - my);
  }
  const double denom = std::sqrt(vx * vy);
  return denom == 0.0 ? 0.0 : cov / denom;
}

double CorrelatedBursts::peak_to_mean_total() const {
  if (multipliers.empty() || multipliers.front().empty()) return 0.0;
  const std::size_t windows = multipliers.front().size();
  double mean_total = 0.0;
  double peak_total = 0.0;
  for (std::size_t w = 0; w < windows; ++w) {
    double total = 0.0;
    for (const auto& series : multipliers) total += series[w];
    mean_total += total;
    peak_total = total > peak_total ? total : peak_total;
  }
  mean_total /= static_cast<double>(windows);
  return mean_total == 0.0 ? 0.0 : peak_total / mean_total;
}

}  // namespace tsn::feed
