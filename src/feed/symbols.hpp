// Synthetic symbol universe.
//
// Generates a deterministic set of instruments (tickers, kinds, reference
// prices) standing in for the real listed universe, plus Zipf popularity
// weights — trading volume is heavily concentrated in a few names.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/types.hpp"
#include "sim/random.hpp"

namespace tsn::feed {

struct Instrument {
  proto::Symbol symbol;
  proto::InstrumentKind kind = proto::InstrumentKind::kEquity;
  proto::Price reference_price = 0;
  double weight = 0.0;  // relative activity share
};

class SymbolUniverse {
 public:
  // Generates `count` instruments: ~70% equities, 15% ETFs, 15% options
  // underliers by default. Deterministic for a given seed.
  SymbolUniverse(std::size_t count, std::uint64_t seed);

  [[nodiscard]] const std::vector<Instrument>& instruments() const noexcept {
    return instruments_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return instruments_.size(); }
  [[nodiscard]] const Instrument& at(std::size_t i) const { return instruments_.at(i); }

  // Activity weights as a span for Rng::weighted_index.
  [[nodiscard]] const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  std::vector<Instrument> instruments_;
  std::vector<double> weights_;
};

}  // namespace tsn::feed
