#include "feed/intraday.hpp"

#include <algorithm>
#include <cmath>

#include "sim/random.hpp"

namespace tsn::feed {

IntradayProfile::IntradayProfile(IntradayConfig config) : config_(config) {}

double IntradayProfile::shape(std::uint32_t second_of_day) const noexcept {
  if (second_of_day < config_.open_second || second_of_day >= config_.close_second) {
    return config_.after_hours_fraction;
  }
  const double since_open = static_cast<double>(second_of_day - config_.open_second);
  const double until_close = static_cast<double>(config_.close_second - second_of_day);
  const double decay_s = config_.smile_decay_minutes * 60.0;
  // Open burst decays exponentially; close ramp grows exponentially over
  // the last ~30 minutes; the floor between them is the trough (1.0).
  const double open_term = (config_.open_boost - 1.0) * std::exp(-since_open / decay_s);
  const double close_term =
      (config_.close_boost - 1.0) * std::exp(-until_close / (30.0 * 60.0));
  return 1.0 + open_term + close_term;
}

std::vector<std::uint64_t> IntradayProfile::second_counts(std::uint64_t seed) const {
  sim::Rng rng{seed};
  std::vector<std::uint64_t> counts(86'400, 0);
  // AR(1) log-noise state.
  double x = 0.0;
  const double sigma_innov =
      config_.noise_sigma * std::sqrt(1.0 - config_.noise_phi * config_.noise_phi);
  // Pre-draw spike seconds within trading hours.
  const std::uint32_t session_len = config_.close_second - config_.open_second;
  std::vector<double> spike(session_len, 1.0);
  const auto n_spikes = rng.poisson(config_.spikes_per_day);
  for (std::uint64_t s = 0; s < n_spikes; ++s) {
    const auto at = static_cast<std::uint32_t>(rng.next_below(session_len));
    const double magnitude =
        std::min(rng.pareto(1.3, config_.spike_pareto_alpha), config_.spike_cap);
    // Spikes decay over a few seconds (bursts are short but not instant).
    for (std::uint32_t k = 0; k < 5 && at + k < session_len; ++k) {
      spike[at + k] = std::max(spike[at + k], magnitude * std::exp(-0.7 * k));
    }
  }
  for (std::uint32_t sec = 0; sec < 86'400; ++sec) {
    x = config_.noise_phi * x + rng.normal(0.0, sigma_innov);
    double rate = config_.base_rate * shape(sec) * std::exp(x);
    if (sec >= config_.open_second && sec < config_.close_second) {
      rate *= spike[sec - config_.open_second];
    }
    counts[sec] = rng.poisson(rate);
  }
  return counts;
}

std::function<double(sim::Time)> IntradayProfile::rate_multiplier() const {
  const IntradayConfig config = config_;
  return [config](sim::Time now) {
    const auto second = static_cast<std::uint32_t>(now.picos() / 1'000'000'000'000LL) % 86'400;
    IntradayProfile profile{config};
    return profile.shape(second);
  };
}

}  // namespace tsn::feed
