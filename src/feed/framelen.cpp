#include "feed/framelen.hpp"

#include <array>

#include "net/headers.hpp"

namespace tsn::feed {

FeedProfile exchange_a_profile() {
  FeedProfile p;
  p.name = "Exchange A";
  p.add_weight = 0.40;
  p.execute_weight = 0.14;
  p.reduce_weight = 0.05;
  p.modify_weight = 0.20;
  p.delete_weight = 0.09;
  p.trade_weight = 0.12;
  p.long_form_fraction = 0.60;
  p.multi_message_probability = 0.18;
  p.pack_continue_probability = 0.40;
  p.burst_probability = 0.004;
  p.mtu_payload = 1468;  // 1468 + 42 headers + 4 FCS = 1514 on the wire
  return p;
}

FeedProfile exchange_b_profile() {
  FeedProfile p;
  p.name = "Exchange B";
  p.add_weight = 0.34;
  p.execute_weight = 0.10;
  p.reduce_weight = 0.12;
  p.modify_weight = 0.04;
  p.delete_weight = 0.36;
  p.trade_weight = 0.04;
  p.long_form_fraction = 0.10;
  p.multi_message_probability = 0.12;
  p.pack_continue_probability = 0.65;
  p.burst_probability = 0.025;
  p.mtu_payload = 1021;  // caps the wire frame at 1067
  return p;
}

FeedProfile exchange_c_profile() {
  FeedProfile p;
  p.name = "Exchange C";
  // Exchange C's native format has no standalone delete/reduce messages
  // (deletes ride as zero-quantity modifies), so its minimum frame is the
  // 27-byte modify: 8 + 27 + 42 + 4 = 81 bytes on the wire.
  p.add_weight = 0.40;
  p.execute_weight = 0.12;
  p.reduce_weight = 0.0;
  p.modify_weight = 0.26;
  p.delete_weight = 0.0;
  p.trade_weight = 0.22;
  p.long_form_fraction = 0.85;
  p.multi_message_probability = 0.40;
  p.pack_continue_probability = 0.55;
  p.burst_probability = 0.02;
  p.mtu_payload = 1396;  // caps the wire frame at 1442
  return p;
}

FrameLengthSampler::FrameLengthSampler(FeedProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)),
      rng_(seed),
      universe_(512, seed ^ 0x5eedULL),
      builder_(1, profile_.mtu_payload,
               [this](std::vector<std::byte> payload, const proto::pitch::UnitHeader&) {
                 pending_payloads_.push_back(std::move(payload));
               }) {}

proto::pitch::Message FrameLengthSampler::random_message() {
  const std::array<double, 6> weights{profile_.add_weight,    profile_.execute_weight,
                                      profile_.reduce_weight, profile_.modify_weight,
                                      profile_.delete_weight, profile_.trade_weight};
  const auto& inst = universe_.at(rng_.weighted_index(universe_.weights()));
  const auto offset = static_cast<std::uint32_t>(rng_.next_below(1'000'000'000));
  switch (rng_.weighted_index(weights)) {
    case 0: {
      proto::pitch::AddOrder m;
      m.time_offset_ns = offset;
      m.order_id = next_order_id_++;
      m.side = rng_.bernoulli(0.5) ? proto::Side::kBuy : proto::Side::kSell;
      m.symbol = inst.symbol;
      if (rng_.bernoulli(profile_.long_form_fraction)) {
        m.quantity = static_cast<proto::Quantity>(rng_.uniform_int(1, 2'000)) * 100;
        m.price = inst.reference_price + rng_.uniform_int(-500, 500) * 100;
      } else {
        // Short form: price under $6.5535 and size under 65536.
        m.quantity = static_cast<proto::Quantity>(rng_.uniform_int(1, 600)) * 100;
        m.price = rng_.uniform_int(1, 60'000);
      }
      return m;
    }
    case 1: {
      proto::pitch::OrderExecuted m;
      m.time_offset_ns = offset;
      m.order_id = static_cast<proto::OrderId>(rng_.uniform_int(1, 1'000'000));
      m.executed_quantity = static_cast<proto::Quantity>(rng_.uniform_int(1, 50)) * 100;
      m.execution_id = next_order_id_++;
      return m;
    }
    case 2: {
      proto::pitch::ReduceSize m;
      m.time_offset_ns = offset;
      m.order_id = static_cast<proto::OrderId>(rng_.uniform_int(1, 1'000'000));
      m.cancelled_quantity = static_cast<proto::Quantity>(rng_.uniform_int(1, 50)) * 100;
      return m;
    }
    case 3: {
      proto::pitch::ModifyOrder m;
      m.time_offset_ns = offset;
      m.order_id = static_cast<proto::OrderId>(rng_.uniform_int(1, 1'000'000));
      m.quantity = static_cast<proto::Quantity>(rng_.uniform_int(1, 100)) * 100;
      m.price = inst.reference_price + rng_.uniform_int(-500, 500) * 100;
      return m;
    }
    case 4: {
      proto::pitch::DeleteOrder m;
      m.time_offset_ns = offset;
      m.order_id = static_cast<proto::OrderId>(rng_.uniform_int(1, 1'000'000));
      return m;
    }
    default: {
      proto::pitch::Trade m;
      m.time_offset_ns = offset;
      m.order_id = static_cast<proto::OrderId>(rng_.uniform_int(1, 1'000'000));
      m.side = rng_.bernoulli(0.5) ? proto::Side::kBuy : proto::Side::kSell;
      m.quantity = static_cast<proto::Quantity>(rng_.uniform_int(1, 50)) * 100;
      m.symbol = inst.symbol;
      m.price = inst.reference_price;
      m.execution_id = next_order_id_++;
      return m;
    }
  }
}

void FrameLengthSampler::generate_datagrams() {
  // Occasional clock tick message, as real feeds interleave Time messages.
  if (++messages_since_tick_ > 500) {
    messages_since_tick_ = 0;
    builder_.append(proto::pitch::Time{clock_seconds_++});
  }
  std::size_t count = 1;
  if (rng_.bernoulli(profile_.burst_probability)) {
    // Burst: pack until the builder has flushed at least two full frames.
    count = 2 * profile_.mtu_payload / 30;
  } else if (rng_.bernoulli(profile_.multi_message_probability)) {
    while (rng_.bernoulli(profile_.pack_continue_probability) && count < 40) ++count;
    ++count;
  }
  for (std::size_t i = 0; i < count; ++i) builder_.append(random_message());
  builder_.flush();
}

std::vector<std::byte> FrameLengthSampler::next_frame() {
  while (pending_payloads_.empty()) generate_datagrams();
  auto payload = std::move(pending_payloads_.front());
  pending_payloads_.pop_front();
  return net::build_multicast_frame(net::MacAddr::from_host_id(1), net::Ipv4Addr{10, 0, 0, 1},
                                    net::Ipv4Addr{239, 100, 0, 1}, 30001, payload);
}

std::size_t FrameLengthSampler::next_frame_length() { return next_frame().size(); }

}  // namespace tsn::feed
