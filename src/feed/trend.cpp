#include "feed/trend.hpp"

#include <cmath>

#include "sim/random.hpp"

namespace tsn::feed {

MarketDataTrendModel::MarketDataTrendModel(TrendConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

double MarketDataTrendModel::expected_events_per_day(double year) const noexcept {
  const double span = static_cast<double>(config_.last_year + 1 - config_.first_year);
  double t = (year - static_cast<double>(config_.first_year)) / span;
  if (t < 0.0) t = 0.0;
  if (t > 1.0) t = 1.0;
  // Exponential growth reaching growth_multiple at the end of the span.
  return config_.base_events_per_day * std::pow(config_.growth_multiple, t);
}

std::vector<TrendPoint> MarketDataTrendModel::daily_series() const {
  constexpr int kTradingDaysPerYear = 252;
  sim::Rng rng{seed_};
  std::vector<TrendPoint> out;
  out.reserve(static_cast<std::size_t>(config_.last_year - config_.first_year + 1) *
              kTradingDaysPerYear);
  for (int year = config_.first_year; year <= config_.last_year; ++year) {
    for (int day = 0; day < kTradingDaysPerYear; ++day) {
      const double fractional_year =
          static_cast<double>(year) + static_cast<double>(day) / kTradingDaysPerYear;
      double events = expected_events_per_day(fractional_year);
      events *= rng.lognormal(-0.5 * config_.daily_sigma * config_.daily_sigma,
                              config_.daily_sigma);  // mean-one noise
      if (rng.bernoulli(config_.shock_probability)) events *= config_.shock_multiplier;
      out.push_back(TrendPoint{year, day, events});
    }
  }
  return out;
}

}  // namespace tsn::feed
