// Per-exchange frame-length profiles — Table 1.
//
// Each exchange chooses its own binary format, packing policy and MTU
// ceiling (§2), which is why the paper's Table 1 shows three distinct
// min/avg/median/max signatures. This module generates complete Ethernet
// frames through the real TsnPitch encoder and UDP/IP framing — frame
// lengths are measured, never computed from a formula — with per-exchange
// message mixes and packing behaviour calibrated to the paper's rows:
//
//     Feed         min    avg  median   max
//     Exchange A    73     92      89  1514
//     Exchange B    64    113      76  1067
//     Exchange C    81    151     101  1442
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "feed/symbols.hpp"
#include "proto/pitch.hpp"
#include "sim/random.hpp"

namespace tsn::feed {

struct FeedProfile {
  std::string name;
  // Message-type mix (weights; normalized internally).
  double add_weight = 0.45;
  double execute_weight = 0.15;
  double reduce_weight = 0.08;
  double modify_weight = 0.12;
  double delete_weight = 0.12;
  double trade_weight = 0.08;
  // Fraction of add orders that need the 34-byte long form.
  double long_form_fraction = 0.3;
  // Probability a datagram packs more than one message, and the geometric
  // continuation probability for each further message.
  double multi_message_probability = 0.25;
  double pack_continue_probability = 0.55;
  // Probability of a burst datagram packed to the MTU ceiling.
  double burst_probability = 0.01;
  // Datagram payload ceiling (drives the max frame length).
  std::size_t mtu_payload = 1458;
};

// Profiles calibrated to the paper's three feeds.
[[nodiscard]] FeedProfile exchange_a_profile();
[[nodiscard]] FeedProfile exchange_b_profile();
[[nodiscard]] FeedProfile exchange_c_profile();

class FrameLengthSampler {
 public:
  FrameLengthSampler(FeedProfile profile, std::uint64_t seed);

  // Next complete Ethernet frame (header + IP + UDP + payload + pad + FCS).
  [[nodiscard]] std::vector<std::byte> next_frame();
  [[nodiscard]] std::size_t next_frame_length();

  [[nodiscard]] const FeedProfile& profile() const noexcept { return profile_; }

 private:
  void generate_datagrams();
  [[nodiscard]] proto::pitch::Message random_message();

  FeedProfile profile_;
  sim::Rng rng_;
  SymbolUniverse universe_;
  std::deque<std::vector<std::byte>> pending_payloads_;
  proto::pitch::FrameBuilder builder_;
  std::uint64_t next_order_id_ = 1;
  std::uint32_t clock_seconds_ = 34'200;  // 9:30am
  std::uint64_t messages_since_tick_ = 0;
};

}  // namespace tsn::feed
