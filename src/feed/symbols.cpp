#include "feed/symbols.hpp"

#include <cmath>
#include <string>

namespace tsn::feed {

namespace {

// Pronounceable-ish deterministic ticker for index i: base-26 in A..Z with
// length 1-4 plus a disambiguating suffix when the space is exhausted.
std::string make_ticker(std::size_t i) {
  std::string out;
  std::size_t n = i;
  do {
    out.push_back(static_cast<char>('A' + n % 26));
    n /= 26;
  } while (n > 0 && out.size() < 6);
  return out;
}

}  // namespace

SymbolUniverse::SymbolUniverse(std::size_t count, std::uint64_t seed) {
  sim::Rng rng{seed};
  instruments_.reserve(count);
  weights_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Instrument inst;
    inst.symbol = proto::Symbol{make_ticker(i)};
    const double kind_draw = rng.uniform();
    if (kind_draw < 0.70) {
      inst.kind = proto::InstrumentKind::kEquity;
    } else if (kind_draw < 0.85) {
      inst.kind = proto::InstrumentKind::kEtf;
    } else {
      inst.kind = proto::InstrumentKind::kOption;
    }
    // Log-normal price distribution: most names $10-$200, a few much higher.
    inst.reference_price = proto::price_from_dollars(rng.lognormal(3.8, 0.8));
    // Zipf-like weight by rank with noise.
    inst.weight = (1.0 / std::pow(static_cast<double>(i + 1), 1.05)) * rng.uniform(0.5, 1.5);
    instruments_.push_back(inst);
    weights_.push_back(inst.weight);
  }
}

}  // namespace tsn::feed
