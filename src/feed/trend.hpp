// Multi-year market-data growth model — Figure 2(a).
//
// The paper's figure shows daily event counts for US options + equities
// from 2020 through 2024: tens of billions of events per day (an average
// rate above 500k events/second), substantial day-to-day variability, and
// ~500% growth over the five years (§3, "market data has increased 500%
// over the last 5 years").
#pragma once

#include <cstdint>
#include <vector>

namespace tsn::feed {

struct TrendConfig {
  int first_year = 2020;
  int last_year = 2024;
  // Mean events per day at the start of first_year.
  double base_events_per_day = 3.4e10;
  // Total growth multiple across the modelled span (500% growth = 6x).
  double growth_multiple = 6.0;
  // Day-to-day lognormal variability (sigma of log).
  double daily_sigma = 0.22;
  // Occasional high-volatility days (macro events) this much larger.
  double shock_probability = 0.02;
  double shock_multiplier = 2.2;
};

struct TrendPoint {
  int year = 0;
  int day_of_year = 0;    // trading day index within the year, 0-based
  double events = 0.0;    // events that day
};

class MarketDataTrendModel {
 public:
  explicit MarketDataTrendModel(TrendConfig config = {}, std::uint64_t seed = 2020);

  // One point per trading day (252/year), in order.
  [[nodiscard]] std::vector<TrendPoint> daily_series() const;

  // Expected (noise-free) events/day at a fractional year (e.g. 2022.5).
  [[nodiscard]] double expected_events_per_day(double year) const noexcept;

  // Average events/second implied by a daily count over 24h (the paper's
  // ">500k events per second" figure is a whole-day average).
  [[nodiscard]] static double events_per_second(double events_per_day) noexcept {
    return events_per_day / 86'400.0;
  }

  [[nodiscard]] const TrendConfig& config() const noexcept { return config_; }

 private:
  TrendConfig config_;
  std::uint64_t seed_;
};

}  // namespace tsn::feed
