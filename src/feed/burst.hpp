// Sub-second burst microstructure — Figure 2(c).
//
// Inside the busiest second of the day, the paper counts events in 100 µs
// windows: the median window holds 129 events, the busiest 1066 — an 8x
// peak-to-median ratio at a timescale where a software system gets ~100 ns
// per event. Events cluster (order-book cascades), so the per-window rate
// follows a strongly autocorrelated heavy-tailed process, not a flat
// Poisson.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace tsn::feed {

struct BurstConfig {
  std::size_t window_count = 10'000;  // 100 us windows in one second
  // AR(1) parameters of the log-rate process.
  double phi = 0.985;
  double sigma = 0.55;
  // Cluster spikes: brief cascades multiplying the local rate.
  double cascades_per_second = 25.0;
  double cascade_magnitude = 4.0;
  double cascade_decay_windows = 12.0;
};

class BurstMicrostructure {
 public:
  explicit BurstMicrostructure(BurstConfig config = {});

  // Distributes `total_events` across the windows. The returned counts sum
  // to ~total_events (each window is Poisson around its share).
  [[nodiscard]] std::vector<std::uint64_t> window_counts(std::uint64_t total_events,
                                                         std::uint64_t seed) const;

  // Expands window counts into event timestamps (uniform within each
  // window), offset from `second_start`. Used to drive simulations with a
  // faithful arrival process.
  [[nodiscard]] static std::vector<sim::Time> event_times(
      const std::vector<std::uint64_t>& counts, sim::Time second_start, sim::Duration window,
      std::uint64_t seed);

  [[nodiscard]] const BurstConfig& config() const noexcept { return config_; }

 private:
  BurstConfig config_;
};

}  // namespace tsn::feed
