#include "feed/burst.hpp"

#include <algorithm>
#include <cmath>

#include "sim/random.hpp"

namespace tsn::feed {

BurstMicrostructure::BurstMicrostructure(BurstConfig config) : config_(config) {}

std::vector<std::uint64_t> BurstMicrostructure::window_counts(std::uint64_t total_events,
                                                              std::uint64_t seed) const {
  sim::Rng rng{seed};
  const std::size_t n = config_.window_count;
  std::vector<double> rate(n, 0.0);
  // Heavy-tailed autocorrelated base process.
  double x = 0.0;
  const double sigma_innov = config_.sigma * std::sqrt(1.0 - config_.phi * config_.phi);
  for (std::size_t i = 0; i < n; ++i) {
    x = config_.phi * x + rng.normal(0.0, sigma_innov);
    rate[i] = std::exp(x);
  }
  // Cascades: short multiplicative bursts with exponential decay.
  const auto n_cascades = rng.poisson(config_.cascades_per_second);
  for (std::uint64_t c = 0; c < n_cascades; ++c) {
    const auto at = static_cast<std::size_t>(rng.next_below(n));
    const double magnitude = 1.0 + rng.exponential(config_.cascade_magnitude - 1.0);
    for (std::size_t k = 0; k < n - at && k < 8 * static_cast<std::size_t>(
                                                    config_.cascade_decay_windows);
         ++k) {
      rate[at + k] *= 1.0 + (magnitude - 1.0) * std::exp(-static_cast<double>(k) /
                                                         config_.cascade_decay_windows);
    }
  }
  // Clamp the extreme tail: the paper's busiest window is ~8x the median,
  // not unbounded — cascades saturate (matching engines and gateways pace
  // the message flow).
  double mean_rate = 0.0;
  for (double r : rate) mean_rate += r;
  mean_rate /= static_cast<double>(n);
  const double ceiling = 7.5 * mean_rate;
  for (double& r : rate) {
    if (r > ceiling) r = ceiling;
  }
  double total_rate = 0.0;
  for (double r : rate) total_rate += r;
  std::vector<std::uint64_t> counts(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double mean = static_cast<double>(total_events) * rate[i] / total_rate;
    counts[i] = rng.poisson(mean);
  }
  return counts;
}

std::vector<sim::Time> BurstMicrostructure::event_times(
    const std::vector<std::uint64_t>& counts, sim::Time second_start, sim::Duration window,
    std::uint64_t seed) {
  sim::Rng rng{seed};
  std::vector<sim::Time> out;
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  out.reserve(total);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const sim::Time window_start = second_start + window * static_cast<std::int64_t>(i);
    for (std::uint64_t e = 0; e < counts[i]; ++e) {
      const auto offset =
          static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(window.picos())));
      out.push_back(window_start + sim::Duration{offset});
    }
    // Keep each window's events ordered.
    std::sort(out.end() - static_cast<std::ptrdiff_t>(counts[i]), out.end());
  }
  return out;
}

}  // namespace tsn::feed
