#include "core/design.hpp"

#include <cstdio>

namespace tsn::core {

// --- TraditionalDesign --------------------------------------------------------

TraditionalDesign::TraditionalDesign(DeploymentAssumptions assumptions, sim::Duration switch_hop,
                                     std::size_t mroute_capacity)
    : NetworkDesign(assumptions), switch_hop_(switch_hop), mroute_capacity_(mroute_capacity) {}

LatencyBreakdown TraditionalDesign::tick_to_trade() const {
  PathSpec path;
  // Four legs, each leaf -> spine -> leaf (functions grouped by rack):
  // 12 switch hops total (§4.1).
  path.commodity_switch_hops = 12;
  path.commodity_hop_latency = switch_hop_;
  path.software_hops = 3;
  path.software_hop_latency = assumptions().function_latency;
  // Each leg serializes onto the host access link twice (in and out).
  path.link_traversals = 8;
  path.propagation_total = sim::nanos(std::int64_t{50}) * 16;  // intra-building fiber
  return evaluate(path);
}

std::size_t TraditionalDesign::multicast_group_capacity() const { return mroute_capacity_; }

bool TraditionalDesign::supports_partitions(std::size_t partitions) const {
  return partitions <= mroute_capacity_;
}

std::string TraditionalDesign::limitations() const {
  return "network is ~half of tick-to-trade; mroute table caps partitioning; software "
         "fallback on overflow is catastrophic";
}

// --- CloudDesign --------------------------------------------------------------

CloudDesign::CloudDesign(DeploymentAssumptions assumptions, sim::Duration equalized_latency)
    : NetworkDesign(assumptions), equalized_latency_(equalized_latency) {}

LatencyBreakdown CloudDesign::tick_to_trade() const {
  PathSpec path;
  path.commodity_switch_hops = 0;
  path.software_hops = 3;
  path.software_hop_latency = assumptions().function_latency;
  // Every one of the four legs crosses the equalized cloud fabric once.
  path.propagation_total = equalized_latency_ * 4;
  path.link_traversals = 8;
  return evaluate(path);
}

std::size_t CloudDesign::multicast_group_capacity() const {
  // Provider-managed distribution: effectively unconstrained for a tenant.
  return 1 << 16;
}

bool CloudDesign::supports_partitions(std::size_t) const { return true; }

std::string CloudDesign::limitations() const {
  return "equalized latency is orders of magnitude above colo latency; communication "
         "beyond the cloud is excessive; broad internal communication and SEC "
         "cross-market rules are unresolved at scale";
}

// --- L1SDesign ----------------------------------------------------------------

L1SDesign::L1SDesign(DeploymentAssumptions assumptions) : NetworkDesign(assumptions) {}

LatencyBreakdown L1SDesign::tick_to_trade() const {
  PathSpec path;
  // Four L1S stages; the normalized-feed stage merges many feeds onto each
  // strategy NIC and the order-aggregation stage merges strategies onto
  // each gateway port.
  path.l1s_fanout_hops = 2;  // exchange->normalizer, gateway->exchange
  path.l1s_merge_hops = 2;   // normalizer->strategy, strategy->gateway
  path.software_hops = 3;
  path.software_hop_latency = assumptions().function_latency;
  path.link_traversals = 8;
  path.propagation_total = sim::nanos(std::int64_t{30}) * 8;
  return evaluate(path);
}

std::size_t L1SDesign::multicast_group_capacity() const { return 0; }

bool L1SDesign::supports_partitions(std::size_t partitions) const {
  // A strategy consuming `partitions` feeds needs them delivered over its
  // market-data NICs; beyond that, feeds must merge — workable, but §4.3's
  // caveat applies. "Support" here means without any merging.
  return partitions <= assumptions().feed_nics_per_strategy;
}

std::string L1SDesign::limitations() const {
  return "no classification/filtering/multipath; interface proliferation vs merge "
         "congestion; coarse feeds, hard to repartition";
}

// --- FpgaL1SDesign ------------------------------------------------------------

FpgaL1SDesign::FpgaL1SDesign(DeploymentAssumptions assumptions, std::size_t group_capacity)
    : NetworkDesign(assumptions), group_capacity_(group_capacity) {}

LatencyBreakdown FpgaL1SDesign::tick_to_trade() const {
  PathSpec path;
  path.fpga_hops = 4;  // one programmable hop per stage
  path.software_hops = 3;
  path.software_hop_latency = assumptions().function_latency;
  path.link_traversals = 8;
  path.propagation_total = sim::nanos(std::int64_t{30}) * 8;
  return evaluate(path);
}

std::size_t FpgaL1SDesign::multicast_group_capacity() const { return group_capacity_; }

bool FpgaL1SDesign::supports_partitions(std::size_t partitions) const {
  return partitions <= group_capacity_;
}

std::string FpgaL1SDesign::limitations() const {
  return "best of both worlds at ~100 ns with IP multicast, but small forwarding tables "
         "cap partition counts well below firm demand";
}

// --- Reporting ----------------------------------------------------------------

std::string comparison_report(std::span<const NetworkDesign* const> designs,
                              std::size_t partitions_wanted) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-12s %14s %14s %10s %8s %10s\n", "design", "tick-to-trade",
                "network", "net-share", "groups", "partitions");
  out += line;
  for (const NetworkDesign* design : designs) {
    const auto breakdown = design->tick_to_trade();
    std::snprintf(line, sizeof(line), "%-12s %14s %14s %9.1f%% %8zu %10s\n",
                  std::string{design->name()}.c_str(),
                  sim::to_string(breakdown.total()).c_str(),
                  sim::to_string(breakdown.network()).c_str(),
                  breakdown.network_share() * 100.0, design->multicast_group_capacity(),
                  design->supports_partitions(partitions_wanted) ? "yes" : "NO");
    out += line;
  }
  return out;
}

std::vector<std::unique_ptr<NetworkDesign>> all_designs(DeploymentAssumptions assumptions) {
  std::vector<std::unique_ptr<NetworkDesign>> out;
  out.push_back(std::make_unique<TraditionalDesign>(assumptions));
  out.push_back(std::make_unique<CloudDesign>(assumptions));
  out.push_back(std::make_unique<L1SDesign>(assumptions));
  out.push_back(std::make_unique<FpgaL1SDesign>(assumptions));
  return out;
}

}  // namespace tsn::core
