// Feed-to-multicast-group co-design (§5, Routing).
//
// The paper asks: "By co-designing the algorithm used to transform raw
// market data to normalized feeds as well as the mapping from feeds to
// multicast groups, can we achieve a more efficient design?" This module
// answers with a concrete optimizer.
//
// Model: each symbol carries an activity weight; each consumer (strategy)
// subscribes to a set of symbols; the network can deliver at most
// `group_budget` multicast groups (the mroute constraint). A grouping
// assigns every symbol to a group; a consumer must join every group
// containing at least one of its symbols, and therefore receives — and
// must discard — every *other* symbol in those groups. The objective is
// the total over-delivered weight.
//
// The optimizer clusters symbols by subscriber-set signature (symbols
// wanted by exactly the same consumers can share a group for free), then
// merges clusters with the most-similar subscriber sets until the group
// budget is met, always taking the cheapest merge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tsn::core {

using SymbolId = std::uint32_t;
using ConsumerId = std::uint32_t;

struct CodesignInput {
  // weight[s] = activity of symbol s (events/sec or any consistent unit).
  std::vector<double> symbol_weight;
  // subscriptions[c] = the symbols consumer c wants.
  std::vector<std::vector<SymbolId>> subscriptions;
  std::size_t group_budget = 0;
};

struct Grouping {
  // group_of[s] = group index of symbol s.
  std::vector<std::uint32_t> group_of;
  std::size_t group_count = 0;
};

struct CodesignMetrics {
  double wanted_weight = 0.0;     // sum over consumers of subscribed weight
  double delivered_weight = 0.0;  // what the grouping actually delivers
  double over_delivery = 0.0;     // delivered - wanted (discarded at hosts)
  // delivered / wanted: 1.0 is perfect; hash partitioning over few groups
  // can be dramatically worse.
  [[nodiscard]] double efficiency() const noexcept {
    return delivered_weight <= 0.0 ? 1.0 : wanted_weight / delivered_weight;
  }
};

// Evaluates any grouping against the input.
[[nodiscard]] CodesignMetrics evaluate_grouping(const CodesignInput& input,
                                                const Grouping& grouping);

// Baseline: symbols hashed uniformly over the budget.
[[nodiscard]] Grouping hash_grouping(const CodesignInput& input);

// The co-designed grouping: signature clustering + cheapest-merge.
[[nodiscard]] Grouping codesign_grouping(const CodesignInput& input);

// How many groups a perfect (no over-delivery) grouping needs: the number
// of distinct subscriber-set signatures among subscribed symbols.
[[nodiscard]] std::size_t perfect_group_count(const CodesignInput& input);

}  // namespace tsn::core
