#include "core/mcast_analysis.hpp"

#include <cmath>

#include "l2/trends.hpp"

namespace tsn::core {

std::size_t PartitionDemandModel::partitions_at(int year) const noexcept {
  const double years = static_cast<double>(year - reference_year);
  const double value = reference_partitions * std::pow(annual_growth, years);
  return value < 0.0 ? 0 : static_cast<std::size_t>(value + 0.5);
}

McastCapacityReport mcast_capacity_at(int year, PartitionDemandModel demand) {
  McastCapacityReport out;
  out.demand = demand.partitions_at(year);
  out.capacity = l2::SwitchTrendModel::mcast_groups_at(year);
  out.fits = out.demand <= out.capacity;
  out.utilization = out.capacity == 0
                        ? 0.0
                        : static_cast<double>(out.demand) / static_cast<double>(out.capacity);
  return out;
}

int capacity_crossover_year(int from_year, int to_year, PartitionDemandModel demand) {
  for (int year = from_year; year <= to_year; ++year) {
    if (!mcast_capacity_at(year, demand).fits) return year;
  }
  return 0;
}

}  // namespace tsn::core
