// Multicast capacity vs partition demand (§3, Multicast Trends).
//
// The collision the paper documents: market data grew ~500% in five years
// and one representative strategy's partition count doubled from ~600 to
// ~1300 in two — while switch multicast tables grew only ~80% across
// hardware generations. This module projects both curves and finds the
// crossover.
#pragma once

#include <cstddef>

namespace tsn::core {

struct PartitionDemandModel {
  // Calibration: ~600 partitions in 2022 doubling to ~1300 by 2024.
  int reference_year = 2022;
  double reference_partitions = 600.0;
  double annual_growth = 1.47;  // sqrt(1300/600) per year

  [[nodiscard]] std::size_t partitions_at(int year) const noexcept;
};

struct McastCapacityReport {
  std::size_t demand = 0;
  std::size_t capacity = 0;
  bool fits = false;
  double utilization = 0.0;
};

// Demand (partition model) vs hardware capacity (l2::SwitchTrendModel).
[[nodiscard]] McastCapacityReport mcast_capacity_at(int year,
                                                    PartitionDemandModel demand = {});

// First year (searching from `from_year`) where demand exceeds the
// hardware table, i.e. where software-fallback pain begins. Returns 0 if
// it never crosses within the searched horizon.
[[nodiscard]] int capacity_crossover_year(int from_year = 2018, int to_year = 2032,
                                          PartitionDemandModel demand = {});

}  // namespace tsn::core
