// Runtime invariant checks for the hot paths.
//
// Two tiers, one policy:
//
//   TSN_ASSERT(cond, msg)  — always on, every build type. For API misuse and
//     state corruption that must never reach the wire: out-of-range patch
//     offsets, impossible switch configs, accounting underflow. Cost must be
//     a handful of instructions; anything heavier belongs in TSN_DCHECK.
//
//   TSN_DCHECK(cond, msg)  — compiled out under NDEBUG (RelWithDebInfo /
//     Release), active in Debug and therefore under the `asan-ubsan` and
//     `tsan` presets. For per-message and per-event invariants on the hot
//     path: encoded sizes matching declared sizes, event-queue time
//     monotonicity, egress-port bounds.
//
// Neither macro is for malformed *input*: truncated or corrupted frames are
// data, not logic errors, and are handled by WireReader's sticky failure
// flag (see net/wire.hpp). A TSN_ASSERT that fires on a byte pattern an
// adversary can send is a bug in the assert.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tsn::core {

[[noreturn]] inline void check_failed(const char* expr, const char* msg, const char* file,
                                      int line) noexcept {
  std::fprintf(stderr, "TSN_CHECK failed: %s\n  %s\n  at %s:%d\n", msg, expr, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace tsn::core

#define TSN_ASSERT(cond, msg)                                          \
  (static_cast<bool>(cond)                                             \
       ? static_cast<void>(0)                                          \
       : ::tsn::core::check_failed(#cond, (msg), __FILE__, __LINE__))

#ifdef NDEBUG
// sizeof keeps the condition's operands "used" (no -Wunused warnings for
// variables that only feed checks) without evaluating anything at runtime.
#define TSN_DCHECK(cond, msg) static_cast<void>(sizeof((cond) ? 1 : 0))
#else
#define TSN_DCHECK(cond, msg) TSN_ASSERT(cond, msg)
#endif
