#include "core/codesign.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <map>
#include <stdexcept>

namespace tsn::core {

namespace {

// Subscriber set as a bitset over consumers.
using Signature = std::vector<std::uint64_t>;

struct Cluster {
  Signature signature;
  double weight = 0.0;
  std::vector<SymbolId> symbols;
  bool alive = true;
};

int popcount(const Signature& sig) {
  int count = 0;
  for (std::uint64_t word : sig) count += std::popcount(word);
  return count;
}

Signature merge_signatures(const Signature& a, const Signature& b) {
  Signature out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] | b[i];
  return out;
}

// Delivered weight contributed by a cluster: every subscriber of any of
// its symbols receives the whole cluster.
double delivered(const Cluster& cluster) {
  return static_cast<double>(popcount(cluster.signature)) * cluster.weight;
}

std::vector<Signature> symbol_signatures(const CodesignInput& input) {
  const std::size_t words = (input.subscriptions.size() + 63) / 64;
  std::vector<Signature> out(input.symbol_weight.size(), Signature(words, 0));
  for (ConsumerId c = 0; c < input.subscriptions.size(); ++c) {
    for (const SymbolId s : input.subscriptions[c]) {
      if (s >= out.size()) throw std::out_of_range{"subscription to unknown symbol"};
      out[s][c / 64] |= std::uint64_t{1} << (c % 64);
    }
  }
  return out;
}

}  // namespace

CodesignMetrics evaluate_grouping(const CodesignInput& input, const Grouping& grouping) {
  if (grouping.group_of.size() != input.symbol_weight.size()) {
    throw std::invalid_argument{"grouping does not cover the symbol universe"};
  }
  CodesignMetrics out;
  // Validates every subscription before the weight sums index by symbol.
  const auto signatures = symbol_signatures(input);
  // Wanted: straightforward sum.
  for (const auto& wants : input.subscriptions) {
    for (const SymbolId s : wants) out.wanted_weight += input.symbol_weight[s];
  }
  // Delivered: per group, total weight and the union of subscribers.
  std::vector<double> group_weight(grouping.group_count, 0.0);
  const std::size_t words = (input.subscriptions.size() + 63) / 64;
  std::vector<Signature> group_sig(grouping.group_count, Signature(words, 0));
  for (SymbolId s = 0; s < grouping.group_of.size(); ++s) {
    const auto g = grouping.group_of[s];
    if (g >= grouping.group_count) throw std::invalid_argument{"group index out of range"};
    group_weight[g] += input.symbol_weight[s];
    for (std::size_t w = 0; w < words; ++w) group_sig[g][w] |= signatures[s][w];
  }
  for (std::size_t g = 0; g < grouping.group_count; ++g) {
    out.delivered_weight += static_cast<double>(popcount(group_sig[g])) * group_weight[g];
  }
  out.over_delivery = out.delivered_weight - out.wanted_weight;
  return out;
}

Grouping hash_grouping(const CodesignInput& input) {
  if (input.group_budget == 0) throw std::invalid_argument{"group budget must be positive"};
  Grouping out;
  out.group_count = input.group_budget;
  out.group_of.resize(input.symbol_weight.size());
  for (SymbolId s = 0; s < out.group_of.size(); ++s) {
    // Knuth multiplicative hash for a uniform spread.
    out.group_of[s] =
        static_cast<std::uint32_t>((s * 2654435761u) % input.group_budget);
  }
  return out;
}

std::size_t perfect_group_count(const CodesignInput& input) {
  const auto signatures = symbol_signatures(input);
  std::map<Signature, int> distinct;
  for (const auto& sig : signatures) distinct[sig] = 1;
  return distinct.size();
}

Grouping codesign_grouping(const CodesignInput& input) {
  if (input.group_budget == 0) throw std::invalid_argument{"group budget must be positive"};
  const auto signatures = symbol_signatures(input);

  // Phase 1: free clustering by identical subscriber sets.
  std::map<Signature, std::size_t> index;
  std::vector<Cluster> clusters;
  for (SymbolId s = 0; s < signatures.size(); ++s) {
    auto [it, inserted] = index.emplace(signatures[s], clusters.size());
    if (inserted) {
      Cluster cluster;
      cluster.signature = signatures[s];
      clusters.push_back(std::move(cluster));
    }
    clusters[it->second].weight += input.symbol_weight[s];
    clusters[it->second].symbols.push_back(s);
  }

  // Phase 1b: the pairwise phase below is O(k^3); when the signature
  // space is huge (every symbol wanted by a different set), coarsen first
  // by hashing signatures into at most kPairwiseCap buckets. This trades
  // some optimality for tractability and only engages on pathological
  // inputs — structured subscriptions (sector/alphabet/top-N) cluster
  // naturally far below the cap.
  constexpr std::size_t kPairwiseCap = 768;
  if (clusters.size() > kPairwiseCap && clusters.size() > input.group_budget) {
    std::vector<Cluster> coarse(std::min(kPairwiseCap,
                                         std::max(input.group_budget, std::size_t{1})));
    const std::size_t buckets = coarse.size();
    const std::size_t words = clusters.front().signature.size();
    for (auto& c : coarse) c.signature.assign(words, 0);
    for (const auto& cluster : clusters) {
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (std::uint64_t word : cluster.signature) {
        h ^= word;
        h *= 0x100000001b3ULL;
      }
      Cluster& target = coarse[h % buckets];
      target.signature = merge_signatures(target.signature, cluster.signature);
      target.weight += cluster.weight;
      target.symbols.insert(target.symbols.end(), cluster.symbols.begin(),
                            cluster.symbols.end());
    }
    std::erase_if(coarse, [](const Cluster& c) { return c.symbols.empty(); });
    clusters = std::move(coarse);
  }

  // Phase 2: cheapest-merge until the budget is met. Merging A and B
  // changes delivered weight from pop(A)*wA + pop(B)*wB to
  // pop(A|B)*(wA+wB); the greedy step takes the smallest increase.
  std::size_t alive = clusters.size();
  while (alive > input.group_budget) {
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_a = 0;
    std::size_t best_b = 0;
    for (std::size_t a = 0; a < clusters.size(); ++a) {
      if (!clusters[a].alive) continue;
      for (std::size_t b = a + 1; b < clusters.size(); ++b) {
        if (!clusters[b].alive) continue;
        const auto merged = merge_signatures(clusters[a].signature, clusters[b].signature);
        const double cost =
            static_cast<double>(popcount(merged)) * (clusters[a].weight + clusters[b].weight) -
            delivered(clusters[a]) - delivered(clusters[b]);
        if (cost < best_cost) {
          best_cost = cost;
          best_a = a;
          best_b = b;
        }
      }
    }
    Cluster& a = clusters[best_a];
    Cluster& b = clusters[best_b];
    a.signature = merge_signatures(a.signature, b.signature);
    a.weight += b.weight;
    a.symbols.insert(a.symbols.end(), b.symbols.begin(), b.symbols.end());
    b.alive = false;
    --alive;
  }

  Grouping out;
  out.group_of.resize(input.symbol_weight.size());
  std::uint32_t next_group = 0;
  for (const auto& cluster : clusters) {
    if (!cluster.alive) continue;
    for (const SymbolId s : cluster.symbols) out.group_of[s] = next_group;
    ++next_group;
  }
  out.group_count = next_group;
  return out;
}

}  // namespace tsn::core
