// Tick-to-trade latency decomposition (§4).
//
// The paper's design analyses are hop arithmetic: count switch hops and
// software hops along the exchange -> normalizer -> strategy -> gateway ->
// exchange round trip, multiply by per-hop costs, and see where the time
// goes. This model makes that arithmetic explicit and auditable, and the
// event-driven benches check the simulated fabrics against it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/trace.hpp"

namespace tsn::core {

struct LatencyBreakdown {
  sim::Duration switching;      // time inside switch pipelines
  sim::Duration software;       // time inside application hosts
  sim::Duration serialization;  // bits-on-wire time across all links
  sim::Duration propagation;    // distance / signal speed

  [[nodiscard]] sim::Duration network() const noexcept {
    return switching + serialization + propagation;
  }
  [[nodiscard]] sim::Duration total() const noexcept { return network() + software; }
  // Fraction of end-to-end time spent in the network (§4.1: "half of the
  // overall time through the system is spent in the network!").
  [[nodiscard]] double network_share() const noexcept {
    const auto t = total();
    return t.picos() == 0 ? 0.0
                          : static_cast<double>(network().picos()) /
                                static_cast<double>(t.picos());
  }
  [[nodiscard]] std::string to_string() const;
};

struct PathSpec {
  // Hop counts along the full round trip.
  std::size_t commodity_switch_hops = 0;
  std::size_t l1s_fanout_hops = 0;
  std::size_t l1s_merge_hops = 0;  // fan-out hops that also cross a mux
  std::size_t fpga_hops = 0;
  std::size_t software_hops = 3;  // normalizer, strategy, gateway

  // Per-hop costs (defaults are the paper's numbers).
  sim::Duration commodity_hop_latency = sim::nanos(std::int64_t{500});
  sim::Duration l1s_fanout_latency = sim::nanos(std::int64_t{6});
  sim::Duration l1s_merge_extra = sim::nanos(std::int64_t{50});
  sim::Duration fpga_hop_latency = sim::nanos(std::int64_t{100});
  sim::Duration software_hop_latency = sim::micros(std::int64_t{2});

  // Wire accounting.
  std::size_t link_traversals = 0;   // how many links serialize the frame
  std::size_t frame_bytes = 92;      // Table 1's average-ish frame
  std::uint64_t link_rate_bps = 10'000'000'000;
  sim::Duration propagation_total = sim::Duration::zero();
};

[[nodiscard]] LatencyBreakdown evaluate(const PathSpec& path) noexcept;

// Decomposition of one *recorded* trace (telemetry spans) into the same hop
// categories the analytical model uses — the bridge between hop arithmetic
// and what the event-driven simulation actually did. Spans whose kind does
// not tile (kNicRx) are ignored; the rest are expected to partition the
// end-to-end interval exactly.
struct TraceDecomposition {
  std::size_t switch_hops = 0;      // kSwitch spans
  std::size_t l1s_fanout_hops = 0;  // kL1sFanout spans
  std::size_t l1s_merge_hops = 0;   // kL1sMerge spans
  std::size_t software_hops = 0;    // kSoftware spans
  std::size_t matcher_hops = 0;     // kMatcher spans
  std::size_t link_traversals = 0;  // kLink + kWan spans

  sim::Duration switching;  // commodity + L1S + fan-out pipeline time
  sim::Duration software;   // application hosts + matching engine
  sim::Duration wire;       // serialization + propagation + queue wait
  sim::Duration total;      // sum of all tiling span durations

  sim::Time first_in;  // earliest tiling t_in
  sim::Time last_out;  // latest tiling t_out

  [[nodiscard]] sim::Duration end_to_end() const noexcept { return last_out - first_in; }
  // True when the tiling spans partition [first_in, last_out] with no gaps
  // or overlaps: sum of durations == end-to-end, exactly, at ps resolution.
  [[nodiscard]] bool tiles_exactly() const noexcept {
    return total == end_to_end();
  }
};

[[nodiscard]] TraceDecomposition decompose(std::vector<telemetry::Span> spans);

}  // namespace tsn::core
