// The design-space framework (§4): each of the paper's three network
// designs — plus the §5 FPGA-augmented direction — as an object answering
// the questions the paper asks of it: what is the tick-to-trade latency
// decomposition, how many multicast groups can it carry, and can it
// support the firm's partitioning width.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/latency_model.hpp"

namespace tsn::core {

// The paper's reference deployment: ~1000 servers, a few dozen each of
// normalizers and gateways, functions grouped by rack, every function
// averaging under 2 us.
struct DeploymentAssumptions {
  std::size_t servers = 1000;
  std::size_t normalizers = 36;
  std::size_t gateways = 24;
  std::size_t normalized_partitions = 1300;  // §3: ~600 two years ago, 1300 now
  sim::Duration function_latency = sim::micros(std::int64_t{2});
  std::size_t feed_nics_per_strategy = 2;  // market data NICs available
};

class NetworkDesign {
 public:
  virtual ~NetworkDesign() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  // Full round trip: exchange -> normalizer -> strategy -> gateway -> exchange.
  [[nodiscard]] virtual LatencyBreakdown tick_to_trade() const = 0;
  // Multicast groups the fabric can deliver at hardware speed (0 = the
  // design does not use multicast groups).
  [[nodiscard]] virtual std::size_t multicast_group_capacity() const = 0;
  // Can the design deliver this many normalized partitions to a strategy
  // that wants all of them?
  [[nodiscard]] virtual bool supports_partitions(std::size_t partitions) const = 0;
  [[nodiscard]] virtual std::string limitations() const = 0;

 protected:
  explicit NetworkDesign(DeploymentAssumptions assumptions) noexcept
      : assumptions_(assumptions) {}
  [[nodiscard]] const DeploymentAssumptions& assumptions() const noexcept {
    return assumptions_;
  }

 private:
  DeploymentAssumptions assumptions_;
};

// Design 1 (§4.1): leaf-spine, functions grouped by rack; 12 switch hops
// and 3 software hops round trip.
class TraditionalDesign final : public NetworkDesign {
 public:
  explicit TraditionalDesign(DeploymentAssumptions assumptions = {},
                             sim::Duration switch_hop = sim::nanos(std::int64_t{500}),
                             std::size_t mroute_capacity = 5040);

  [[nodiscard]] std::string_view name() const noexcept override { return "traditional"; }
  [[nodiscard]] LatencyBreakdown tick_to_trade() const override;
  [[nodiscard]] std::size_t multicast_group_capacity() const override;
  [[nodiscard]] bool supports_partitions(std::size_t partitions) const override;
  [[nodiscard]] std::string limitations() const override;

 private:
  sim::Duration switch_hop_;
  std::size_t mroute_capacity_;
};

// Design 2 (§4.2): cloud hosting with latency equalization.
class CloudDesign final : public NetworkDesign {
 public:
  explicit CloudDesign(DeploymentAssumptions assumptions = {},
                       sim::Duration equalized_latency = sim::micros(std::int64_t{100}));

  [[nodiscard]] std::string_view name() const noexcept override { return "cloud"; }
  [[nodiscard]] LatencyBreakdown tick_to_trade() const override;
  [[nodiscard]] std::size_t multicast_group_capacity() const override;
  [[nodiscard]] bool supports_partitions(std::size_t partitions) const override;
  [[nodiscard]] std::string limitations() const override;

 private:
  sim::Duration equalized_latency_;
};

// Design 3 (§4.3): quad L1S networks. Feeds merge onto strategy NICs.
class L1SDesign final : public NetworkDesign {
 public:
  explicit L1SDesign(DeploymentAssumptions assumptions = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "l1s"; }
  [[nodiscard]] LatencyBreakdown tick_to_trade() const override;
  [[nodiscard]] std::size_t multicast_group_capacity() const override;
  // Limited by NICs per strategy, not by group tables.
  [[nodiscard]] bool supports_partitions(std::size_t partitions) const override;
  [[nodiscard]] std::string limitations() const override;
};

// §5 Hardware: FPGA-augmented L1S — ~100 ns with IP multicast but small
// tables.
class FpgaL1SDesign final : public NetworkDesign {
 public:
  explicit FpgaL1SDesign(DeploymentAssumptions assumptions = {},
                         std::size_t group_capacity = 96);

  [[nodiscard]] std::string_view name() const noexcept override { return "fpga-l1s"; }
  [[nodiscard]] LatencyBreakdown tick_to_trade() const override;
  [[nodiscard]] std::size_t multicast_group_capacity() const override;
  [[nodiscard]] bool supports_partitions(std::size_t partitions) const override;
  [[nodiscard]] std::string limitations() const override;

 private:
  std::size_t group_capacity_;
};

// Renders the comparison the paper walks through in §4, one row per design.
[[nodiscard]] std::string comparison_report(
    std::span<const NetworkDesign* const> designs,
    std::size_t partitions_wanted);

// Builds all four designs with shared assumptions.
[[nodiscard]] std::vector<std::unique_ptr<NetworkDesign>> all_designs(
    DeploymentAssumptions assumptions = {});

}  // namespace tsn::core
