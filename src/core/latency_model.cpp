#include "core/latency_model.hpp"

#include <cstdio>

namespace tsn::core {

// 128-bit intermediate for rate arithmetic; __extension__ keeps the GCC
// builtin usable under -Wpedantic.
__extension__ typedef __int128 Int128;

std::string LatencyBreakdown::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "switching=%s software=%s serialization=%s propagation=%s total=%s "
                "network-share=%.1f%%",
                sim::to_string(switching).c_str(), sim::to_string(software).c_str(),
                sim::to_string(serialization).c_str(), sim::to_string(propagation).c_str(),
                sim::to_string(total()).c_str(), network_share() * 100.0);
  return buf;
}

LatencyBreakdown evaluate(const PathSpec& path) noexcept {
  LatencyBreakdown out;
  out.switching =
      path.commodity_hop_latency * static_cast<std::int64_t>(path.commodity_switch_hops) +
      path.l1s_fanout_latency *
          static_cast<std::int64_t>(path.l1s_fanout_hops + path.l1s_merge_hops) +
      path.l1s_merge_extra * static_cast<std::int64_t>(path.l1s_merge_hops) +
      path.fpga_hop_latency * static_cast<std::int64_t>(path.fpga_hops);
  out.software = path.software_hop_latency * static_cast<std::int64_t>(path.software_hops);
  if (path.link_rate_bps > 0) {
    // +20 wire bytes per traversal: preamble + IPG.
    const auto bits_per_frame = static_cast<std::int64_t>((path.frame_bytes + 20) * 8);
    const auto per_link_ps =
        (static_cast<Int128>(bits_per_frame) * 1'000'000'000'000) / path.link_rate_bps;
    out.serialization = sim::Duration{static_cast<std::int64_t>(per_link_ps) *
                                      static_cast<std::int64_t>(path.link_traversals)};
  }
  out.propagation = path.propagation_total;
  return out;
}

}  // namespace tsn::core
