#include "core/latency_model.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "net/packet.hpp"

namespace tsn::core {

// 128-bit intermediate for rate arithmetic; __extension__ keeps the GCC
// builtin usable under -Wpedantic.
__extension__ typedef __int128 Int128;

std::string LatencyBreakdown::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "switching=%s software=%s serialization=%s propagation=%s total=%s "
                "network-share=%.1f%%",
                sim::to_string(switching).c_str(), sim::to_string(software).c_str(),
                sim::to_string(serialization).c_str(), sim::to_string(propagation).c_str(),
                sim::to_string(total()).c_str(), network_share() * 100.0);
  return buf;
}

LatencyBreakdown evaluate(const PathSpec& path) noexcept {
  LatencyBreakdown out;
  out.switching =
      path.commodity_hop_latency * static_cast<std::int64_t>(path.commodity_switch_hops) +
      path.l1s_fanout_latency *
          static_cast<std::int64_t>(path.l1s_fanout_hops + path.l1s_merge_hops) +
      path.l1s_merge_extra * static_cast<std::int64_t>(path.l1s_merge_hops) +
      path.fpga_hop_latency * static_cast<std::int64_t>(path.fpga_hops);
  out.software = path.software_hop_latency * static_cast<std::int64_t>(path.software_hops);
  if (path.link_rate_bps > 0) {
    const auto bits_per_frame =
        static_cast<std::int64_t>((path.frame_bytes + net::kWireOverheadBytes) * 8);
    const auto per_link_ps =
        (static_cast<Int128>(bits_per_frame) * 1'000'000'000'000) / path.link_rate_bps;
    out.serialization = sim::Duration{static_cast<std::int64_t>(per_link_ps) *
                                      static_cast<std::int64_t>(path.link_traversals)};
  }
  out.propagation = path.propagation_total;
  return out;
}

TraceDecomposition decompose(std::vector<telemetry::Span> spans) {
  std::erase_if(spans, [](const telemetry::Span& s) { return !s.tiles(); });
  std::sort(spans.begin(), spans.end(), [](const telemetry::Span& a, const telemetry::Span& b) {
    return a.t_in != b.t_in ? a.t_in < b.t_in : a.t_out < b.t_out;
  });
  TraceDecomposition out;
  if (spans.empty()) return out;
  out.first_in = spans.front().t_in;
  out.last_out = spans.front().t_out;
  for (const telemetry::Span& s : spans) {
    out.last_out = std::max(out.last_out, s.t_out);
    out.total = out.total + s.duration();
    switch (s.kind) {
      case telemetry::SpanKind::kSwitch:
        ++out.switch_hops;
        out.switching = out.switching + s.duration();
        break;
      case telemetry::SpanKind::kL1sFanout:
        ++out.l1s_fanout_hops;
        out.switching = out.switching + s.duration();
        break;
      case telemetry::SpanKind::kL1sMerge:
        ++out.l1s_merge_hops;
        out.switching = out.switching + s.duration();
        break;
      case telemetry::SpanKind::kSoftware:
        ++out.software_hops;
        out.software = out.software + s.duration();
        break;
      case telemetry::SpanKind::kMatcher:
        ++out.matcher_hops;
        out.software = out.software + s.duration();
        break;
      case telemetry::SpanKind::kLink:
      case telemetry::SpanKind::kWan:
        ++out.link_traversals;
        out.wire = out.wire + s.duration();
        break;
      case telemetry::SpanKind::kNicRx:
        break;  // filtered above
    }
  }
  return out;
}

}  // namespace tsn::core
