#include "book/reference_book.hpp"

namespace tsn::book {

namespace {

// Whether an incoming order at `incoming_price` crosses a resting level at
// `level_price` on the opposite side.
bool crosses(Side incoming_side, Price incoming_price, Price level_price) noexcept {
  return incoming_side == Side::kBuy ? incoming_price >= level_price
                                     : incoming_price <= level_price;
}

}  // namespace

template <typename Ladder>
Quantity ReferenceBook::match_against(Ladder& ladder, Order& incoming) {
  Quantity filled = 0;
  while (incoming.quantity > 0 && !ladder.empty()) {
    auto level_it = ladder.begin();
    if (!crosses(incoming.side, incoming.price, level_it->first)) break;
    Level& level = level_it->second;
    while (incoming.quantity > 0 && !level.empty()) {
      Order& resting = level.front();
      const Quantity traded = std::min(incoming.quantity, resting.quantity);
      resting.quantity -= traded;
      incoming.quantity -= traded;
      filled += traded;
      ++exec_count_;
      const ExecId exec = next_exec_id_++;
      if (listener_ != nullptr) {
        listener_->on_execute(Execution{resting.id, incoming.id, traded, resting.price, exec,
                                        resting.quantity, incoming.quantity});
      }
      if (resting.quantity == 0) {
        index_.erase(resting.id);
        level.pop_front();
      }
    }
    if (level.empty()) ladder.erase(level_it);
  }
  return filled;
}

template <typename Ladder>
void ReferenceBook::rest_on(Ladder& ladder, const Order& order) {
  Level& level = ladder[order.price];
  level.push_back(order);
  auto position = std::prev(level.end());
  index_.emplace(order.id, Locator{order.side, order.price, position});
  if (listener_ != nullptr) listener_->on_accept(order);
}

ReferenceBook::SubmitOutcome ReferenceBook::submit(const Order& order,
                                                   bool immediate_or_cancel) {
  if (index_.contains(order.id)) return {SubmitResult::kRejectedDuplicate, 0};
  Order incoming = order;
  Quantity filled;
  if (incoming.side == Side::kBuy) {
    filled = match_against(asks_, incoming);
  } else {
    filled = match_against(bids_, incoming);
  }
  if (incoming.quantity == 0) return {SubmitResult::kFilled, filled};
  // Unfilled remainder of an IOC evaporates without ever entering the book.
  if (immediate_or_cancel) return {SubmitResult::kCancelled, filled};
  if (incoming.side == Side::kBuy) {
    rest_on(bids_, incoming);
  } else {
    rest_on(asks_, incoming);
  }
  return {filled > 0 ? SubmitResult::kPartialFill : SubmitResult::kRested, filled};
}

bool ReferenceBook::erase_located(OrderId id, const Locator& loc) {
  if (loc.side == Side::kBuy) {
    auto level_it = bids_.find(loc.price);
    if (level_it == bids_.end()) return false;
    level_it->second.erase(loc.position);
    if (level_it->second.empty()) bids_.erase(level_it);
  } else {
    auto level_it = asks_.find(loc.price);
    if (level_it == asks_.end()) return false;
    level_it->second.erase(loc.position);
    if (level_it->second.empty()) asks_.erase(level_it);
  }
  index_.erase(id);
  return true;
}

std::optional<Quantity> ReferenceBook::cancel(OrderId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  const Locator loc = it->second;
  const Quantity remaining = loc.position->quantity;
  if (!erase_located(id, loc)) return std::nullopt;
  if (listener_ != nullptr) listener_->on_delete(id);
  return remaining;
}

bool ReferenceBook::reduce(OrderId id, Quantity new_quantity) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  Order& order = *it->second.position;
  if (new_quantity >= order.quantity) return false;
  if (new_quantity == 0) return cancel(id).has_value();
  const Quantity cancelled = order.quantity - new_quantity;
  order.quantity = new_quantity;
  if (listener_ != nullptr) listener_->on_reduce(id, cancelled);
  return true;
}

bool ReferenceBook::replace(OrderId id, Quantity new_quantity, Price new_price) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  const Locator loc = it->second;
  const Side side = loc.side;
  if (!erase_located(id, loc)) return false;
  if (listener_ != nullptr) listener_->on_replace(id, new_quantity, new_price);
  // Re-entry matches as a fresh order (price-time priority lost, §2's
  // repricing behaviour).
  Order incoming{id, side, new_price, new_quantity};
  if (incoming.side == Side::kBuy) {
    match_against(asks_, incoming);
  } else {
    match_against(bids_, incoming);
  }
  if (incoming.quantity > 0) {
    if (incoming.side == Side::kBuy) {
      rest_on(bids_, incoming);
    } else {
      rest_on(asks_, incoming);
    }
  }
  return true;
}

void ReferenceBook::for_each_order(const std::function<void(const Order&)>& fn) const {
  for (const auto& [price, level] : bids_) {
    for (const Order& order : level) fn(order);
  }
  for (const auto& [price, level] : asks_) {
    for (const Order& order : level) fn(order);
  }
}

BestQuote ReferenceBook::best() const {
  BestQuote quote;
  if (!bids_.empty()) {
    const auto& [price, level] = *bids_.begin();
    quote.bid_price = price;
    for (const Order& o : level) quote.bid_quantity += o.quantity;
  }
  if (!asks_.empty()) {
    const auto& [price, level] = *asks_.begin();
    quote.ask_price = price;
    for (const Order& o : level) quote.ask_quantity += o.quantity;
  }
  return quote;
}

Quantity ReferenceBook::depth_at(Side side, Price price) const {
  Quantity total = 0;
  if (side == Side::kBuy) {
    auto it = bids_.find(price);
    if (it == bids_.end()) return 0;
    for (const Order& o : it->second) total += o.quantity;
  } else {
    auto it = asks_.find(price);
    if (it == asks_.end()) return 0;
    for (const Order& o : it->second) total += o.quantity;
  }
  return total;
}

std::optional<Order> ReferenceBook::find(OrderId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return *it->second.position;
}

}  // namespace tsn::book
