// Node-based reference order book — the original `std::map`/`std::list`/
// `std::unordered_map` implementation, kept as the behavioral oracle for the
// pooled SoA book that replaced it on the hot path (ROADMAP item 4).
//
// The differential test (tests/test_book_differential.cpp) drives this book
// and the SoA `OrderBook` with identical randomized and fuzz-derived
// sequences and asserts byte-identical executions, quotes, and listener
// callbacks. Nothing in src/ should depend on this class for production
// paths; it trades speed for obviously-correct standard-library structure.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>

#include "book/order_book.hpp"
#include "proto/types.hpp"

namespace tsn::book {

class ReferenceBook {
 public:
  explicit ReferenceBook(Symbol symbol, BookListener* listener = nullptr) noexcept
      : symbol_(symbol), listener_(listener) {}

  void set_listener(BookListener* listener) noexcept { listener_ = listener; }

  using SubmitResult = OrderBook::SubmitResult;
  using SubmitOutcome = OrderBook::SubmitOutcome;

  // The same contract as OrderBook::submit, order for order.
  SubmitOutcome submit(const Order& order, bool immediate_or_cancel = false);

  std::optional<Quantity> cancel(OrderId id);
  bool reduce(OrderId id, Quantity new_quantity);
  bool replace(OrderId id, Quantity new_quantity, Price new_price);

  [[nodiscard]] BestQuote best() const;
  void for_each_order(const std::function<void(const Order&)>& fn) const;
  [[nodiscard]] std::size_t open_orders() const noexcept { return index_.size(); }
  [[nodiscard]] std::size_t bid_levels() const noexcept { return bids_.size(); }
  [[nodiscard]] std::size_t ask_levels() const noexcept { return asks_.size(); }
  [[nodiscard]] Symbol symbol() const noexcept { return symbol_; }
  [[nodiscard]] std::uint64_t executions() const noexcept { return exec_count_; }
  [[nodiscard]] Quantity depth_at(Side side, Price price) const;
  [[nodiscard]] std::optional<Order> find(OrderId id) const;

 private:
  // Bids: best = highest price. Asks: best = lowest. Each level is FIFO.
  using Level = std::list<Order>;
  using BidLadder = std::map<Price, Level, std::greater<>>;
  using AskLadder = std::map<Price, Level, std::less<>>;

  struct Locator {
    Side side;
    Price price;
    Level::iterator position;
  };

  template <typename Ladder>
  Quantity match_against(Ladder& ladder, Order& incoming);
  template <typename Ladder>
  void rest_on(Ladder& ladder, const Order& order);
  bool erase_located(OrderId id, const Locator& loc);

  Symbol symbol_;
  BookListener* listener_;
  BidLadder bids_;
  AskLadder asks_;
  std::unordered_map<OrderId, Locator> index_;
  ExecId next_exec_id_ = 1;
  std::uint64_t exec_count_ = 0;
};

}  // namespace tsn::book
