#include "book/order_book.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace tsn::book {

namespace {

constexpr std::size_t kInitialOrders = 256;
constexpr std::size_t kInitialLevels = 64;
constexpr std::size_t kInitialIndex = 512;  // power of two

constexpr std::uint8_t kEmpty = 0;
constexpr std::uint8_t kFull = 1;
constexpr std::uint8_t kTombstone = 2;

// Integer finalizer (splitmix64 tail): order ids are often sequential, so
// the index needs real avalanche to keep probe chains short.
constexpr std::size_t hash_id(OrderId id) noexcept {
  std::uint64_t x = id;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<std::size_t>(x);
}

constexpr std::size_t next_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Slab growth (cold: runs only when a slab or the index is exhausted; every
// structure is index-linked, so reallocation never invalidates live state).

void OrderBook::grow_orders(std::size_t new_capacity) {
  const std::size_t old = order_id_.size();
  TSN_DCHECK(new_capacity > old, "order slab growth must add slots");
  order_id_.resize(new_capacity);
  order_price_.resize(new_capacity);
  order_qty_.resize(new_capacity);
  order_next_.resize(new_capacity);
  order_prev_.resize(new_capacity);
  order_level_.resize(new_capacity);
  order_side_.resize(new_capacity);
  // Thread the new slots onto the freelist so pops come out ascending.
  for (std::size_t i = new_capacity; i-- > old;) {
    order_next_[i] = free_order_;
    free_order_ = static_cast<std::uint32_t>(i);
  }
}

void OrderBook::grow_levels(std::size_t new_capacity) {
  const std::size_t old = level_price_.size();
  TSN_DCHECK(new_capacity > old, "level slab growth must add slots");
  level_price_.resize(new_capacity);
  level_qty_.resize(new_capacity);
  level_head_.resize(new_capacity);
  level_tail_.resize(new_capacity);
  level_next_.resize(new_capacity);
  level_prev_.resize(new_capacity);
  for (std::size_t i = new_capacity; i-- > old;) {
    level_next_[i] = free_level_;
    free_level_ = static_cast<std::uint32_t>(i);
  }
}

void OrderBook::index_grow(std::size_t min_capacity) {
  const std::size_t new_cap = next_pow2(std::max(min_capacity, kInitialIndex));
  Column<OrderId> keys(new_cap);
  Column<std::uint32_t> slots(new_cap);
  Column<std::uint8_t> states(new_cap);  // zero-initialized: all kEmpty
  const std::size_t mask = new_cap - 1;
  for (std::size_t i = 0; i < index_.keys.size(); ++i) {
    if (index_.states[i] != kFull) continue;
    std::size_t j = hash_id(index_.keys[i]) & mask;
    while (states[j] == kFull) j = (j + 1) & mask;
    states[j] = kFull;
    keys[j] = index_.keys[i];
    slots[j] = index_.slots[i];
  }
  index_.keys = std::move(keys);
  index_.slots = std::move(slots);
  index_.states = std::move(states);
  index_.occupied = index_.count;  // tombstones compacted away
}

void OrderBook::reserve(std::size_t orders, std::size_t levels) {
  if (orders > order_id_.size()) grow_orders(next_pow2(orders));
  if (levels > level_price_.size()) grow_levels(next_pow2(levels));
  // Keep the index below the 3/4 load trigger for `orders` live entries.
  if (orders * 2 > index_.keys.size()) index_grow(orders * 2);
}

// ---------------------------------------------------------------------------
// Id index.

// tsn-lint: hotpath
std::uint32_t OrderBook::index_find(OrderId id) const {
  if (index_.keys.empty()) return kNull;
  const std::size_t mask = index_.keys.size() - 1;
  std::size_t i = hash_id(id) & mask;
  while (true) {
    const std::uint8_t state = index_.states[i];
    if (state == kEmpty) return kNull;
    if (state == kFull && index_.keys[i] == id) return index_.slots[i];
    i = (i + 1) & mask;
  }
}

// tsn-lint: hotpath
void OrderBook::index_insert(OrderId id, std::uint32_t slot) {
  // 3/4 load (live + tombstones) triggers the cold rehash, which also
  // compacts tombstones left by cancels.
  if ((index_.occupied + 1) * 4 >= index_.keys.size() * 3) {
    index_grow((index_.count + 1) * 2);
  }
  const std::size_t mask = index_.keys.size() - 1;
  std::size_t i = hash_id(id) & mask;
  while (index_.states[i] == kFull) i = (i + 1) & mask;
  if (index_.states[i] == kEmpty) ++index_.occupied;  // tombstone reuse keeps occupancy
  index_.states[i] = kFull;
  index_.keys[i] = id;
  index_.slots[i] = slot;
  ++index_.count;
}

// tsn-lint: hotpath
void OrderBook::index_erase(OrderId id) {
  const std::size_t mask = index_.keys.size() - 1;
  std::size_t i = hash_id(id) & mask;
  while (true) {
    const std::uint8_t state = index_.states[i];
    TSN_DCHECK(state != kEmpty, "index_erase requires a present key");
    if (state == kFull && index_.keys[i] == id) {
      index_.states[i] = kTombstone;
      --index_.count;
      return;
    }
    i = (i + 1) & mask;
  }
}

// ---------------------------------------------------------------------------
// Slab freelists.

// tsn-lint: hotpath
std::uint32_t OrderBook::alloc_order_slot() {
  if (free_order_ == kNull) {
    grow_orders(order_id_.empty() ? kInitialOrders : order_id_.size() * 2);
  }
  const std::uint32_t slot = free_order_;
  free_order_ = order_next_[slot];
  return slot;
}

// tsn-lint: hotpath
std::uint32_t OrderBook::alloc_level_slot() {
  if (free_level_ == kNull) {
    grow_levels(level_price_.empty() ? kInitialLevels : level_price_.size() * 2);
  }
  const std::uint32_t slot = free_level_;
  free_level_ = level_next_[slot];
  return slot;
}

// ---------------------------------------------------------------------------
// Ladder maintenance.

// Finds the level for `price` on one side, splicing in a fresh level slot at
// the sorted position if none exists. Walks from the best level: resting
// traffic clusters near the top of book, so the scan is short in practice.
// tsn-lint: hotpath
std::uint32_t OrderBook::level_for(bool bid_side, Price price) {
  std::uint32_t* head = bid_side ? &best_bid_ : &best_ask_;
  std::uint32_t prev = kNull;
  std::uint32_t cur = *head;
  while (cur != kNull) {
    const Price level_price = level_price_[cur];
    if (level_price == price) return cur;
    const bool better = bid_side ? level_price > price : level_price < price;
    if (!better) break;
    prev = cur;
    cur = level_next_[cur];
  }
  const std::uint32_t level = alloc_level_slot();
  level_price_[level] = price;
  level_qty_[level] = 0;
  level_head_[level] = kNull;
  level_tail_[level] = kNull;
  level_prev_[level] = prev;
  level_next_[level] = cur;
  if (prev != kNull) {
    level_next_[prev] = level;
  } else {
    *head = level;
  }
  if (cur != kNull) level_prev_[cur] = level;
  if (bid_side) {
    ++bid_level_count_;
  } else {
    ++ask_level_count_;
  }
  return level;
}

// tsn-lint: hotpath
void OrderBook::unlink_level(bool bid_side, std::uint32_t level) {
  const std::uint32_t prev = level_prev_[level];
  const std::uint32_t next = level_next_[level];
  if (prev != kNull) {
    level_next_[prev] = next;
  } else if (bid_side) {
    best_bid_ = next;
  } else {
    best_ask_ = next;
  }
  if (next != kNull) level_prev_[next] = prev;
  level_next_[level] = free_level_;
  free_level_ = level;
  if (bid_side) {
    --bid_level_count_;
  } else {
    --ask_level_count_;
  }
}

// Removes one resting order from its level chain (freeing the level when it
// empties) and recycles the order slot. The id index entry is the caller's
// responsibility.
// tsn-lint: hotpath
void OrderBook::unlink_order(std::uint32_t order) {
  const std::uint32_t level = order_level_[order];
  const std::uint32_t prev = order_prev_[order];
  const std::uint32_t next = order_next_[order];
  if (prev != kNull) {
    order_next_[prev] = next;
  } else {
    level_head_[level] = next;
  }
  if (next != kNull) {
    order_prev_[next] = prev;
  } else {
    level_tail_[level] = prev;
  }
  level_qty_[level] -= order_qty_[order];
  if (level_head_[level] == kNull) {
    unlink_level(order_side_[order] == Side::kBuy, level);
  }
  order_next_[order] = free_order_;
  free_order_ = order;
}

// ---------------------------------------------------------------------------
// Matching.

// tsn-lint: hotpath
Quantity OrderBook::match_incoming(Order& incoming) {
  Quantity filled = 0;
  const bool buy = incoming.side == Side::kBuy;
  std::uint32_t* best = buy ? &best_ask_ : &best_bid_;
  while (incoming.quantity > 0) {
    const std::uint32_t level = *best;
    if (level == kNull) break;
    const Price level_price = level_price_[level];
    if (buy ? incoming.price < level_price : incoming.price > level_price) break;
    while (incoming.quantity > 0) {
      const std::uint32_t resting = level_head_[level];
      if (resting == kNull) break;
      const Quantity traded = std::min(incoming.quantity, order_qty_[resting]);
      order_qty_[resting] -= traded;
      incoming.quantity -= traded;
      level_qty_[level] -= traded;
      filled += traded;
      ++exec_count_;
      const ExecId exec = next_exec_id_++;
      if (listener_ != nullptr) {
        listener_->on_execute(Execution{order_id_[resting], incoming.id, traded,
                                        order_price_[resting], exec, order_qty_[resting],
                                        incoming.quantity});
      }
      if (order_qty_[resting] == 0) {
        index_erase(order_id_[resting]);
        // Pop the front of the FIFO chain and recycle the slot.
        const std::uint32_t next = order_next_[resting];
        level_head_[level] = next;
        if (next != kNull) {
          order_prev_[next] = kNull;
        } else {
          level_tail_[level] = kNull;
        }
        order_next_[resting] = free_order_;
        free_order_ = resting;
      }
    }
    if (level_head_[level] == kNull) unlink_level(!buy, level);
  }
  return filled;
}

// tsn-lint: hotpath
void OrderBook::rest_order(const Order& order) {
  const bool bid_side = order.side == Side::kBuy;
  const std::uint32_t level = level_for(bid_side, order.price);
  const std::uint32_t slot = alloc_order_slot();
  order_id_[slot] = order.id;
  order_price_[slot] = order.price;
  order_qty_[slot] = order.quantity;
  order_side_[slot] = order.side;
  order_level_[slot] = level;
  order_next_[slot] = kNull;
  const std::uint32_t tail = level_tail_[level];
  order_prev_[slot] = tail;
  if (tail != kNull) {
    order_next_[tail] = slot;
  } else {
    level_head_[level] = slot;
  }
  level_tail_[level] = slot;
  level_qty_[level] += order.quantity;
  index_insert(order.id, slot);
  if (listener_ != nullptr) listener_->on_accept(order);
}

// ---------------------------------------------------------------------------
// Public API.

// tsn-lint: hotpath
OrderBook::SubmitOutcome OrderBook::submit(const Order& order, bool immediate_or_cancel) {
  if (index_find(order.id) != kNull) return {SubmitResult::kRejectedDuplicate, 0};
  Order incoming = order;
  const Quantity filled = match_incoming(incoming);
  if (incoming.quantity == 0) return {SubmitResult::kFilled, filled};
  // Unfilled remainder of an IOC evaporates without ever entering the book.
  if (immediate_or_cancel) return {SubmitResult::kCancelled, filled};
  rest_order(incoming);
  return {filled > 0 ? SubmitResult::kPartialFill : SubmitResult::kRested, filled};
}

// tsn-lint: hotpath
std::optional<Quantity> OrderBook::cancel(OrderId id) {
  const std::uint32_t slot = index_find(id);
  if (slot == kNull) return std::nullopt;
  const Quantity remaining = order_qty_[slot];
  index_erase(id);
  unlink_order(slot);
  if (listener_ != nullptr) listener_->on_delete(id);
  return remaining;
}

// tsn-lint: hotpath
bool OrderBook::reduce(OrderId id, Quantity new_quantity) {
  const std::uint32_t slot = index_find(id);
  if (slot == kNull) return false;
  if (new_quantity >= order_qty_[slot]) return false;
  if (new_quantity == 0) return cancel(id).has_value();
  const Quantity cancelled = order_qty_[slot] - new_quantity;
  order_qty_[slot] = new_quantity;
  level_qty_[order_level_[slot]] -= cancelled;
  if (listener_ != nullptr) listener_->on_reduce(id, cancelled);
  return true;
}

// tsn-lint: hotpath
bool OrderBook::replace(OrderId id, Quantity new_quantity, Price new_price) {
  const std::uint32_t slot = index_find(id);
  if (slot == kNull) return false;
  const Side side = order_side_[slot];
  index_erase(id);
  unlink_order(slot);
  if (listener_ != nullptr) listener_->on_replace(id, new_quantity, new_price);
  // Re-entry matches as a fresh order (price-time priority lost, §2's
  // repricing behaviour).
  Order incoming{id, side, new_price, new_quantity};
  match_incoming(incoming);
  if (incoming.quantity > 0) rest_order(incoming);
  return true;
}

void OrderBook::for_each_order(const std::function<void(const Order&)>& fn) const {
  for (std::uint32_t level = best_bid_; level != kNull; level = level_next_[level]) {
    for (std::uint32_t o = level_head_[level]; o != kNull; o = order_next_[o]) {
      fn(Order{order_id_[o], order_side_[o], order_price_[o], order_qty_[o]});
    }
  }
  for (std::uint32_t level = best_ask_; level != kNull; level = level_next_[level]) {
    for (std::uint32_t o = level_head_[level]; o != kNull; o = order_next_[o]) {
      fn(Order{order_id_[o], order_side_[o], order_price_[o], order_qty_[o]});
    }
  }
}

BestQuote OrderBook::best() const {
  BestQuote quote;
  if (best_bid_ != kNull) {
    quote.bid_price = level_price_[best_bid_];
    quote.bid_quantity = level_qty_[best_bid_];
  }
  if (best_ask_ != kNull) {
    quote.ask_price = level_price_[best_ask_];
    quote.ask_quantity = level_qty_[best_ask_];
  }
  return quote;
}

Quantity OrderBook::depth_at(Side side, Price price) const {
  for (std::uint32_t level = side == Side::kBuy ? best_bid_ : best_ask_; level != kNull;
       level = level_next_[level]) {
    if (level_price_[level] == price) return level_qty_[level];
  }
  return 0;
}

std::optional<Order> OrderBook::find(OrderId id) const {
  const std::uint32_t slot = index_find(id);
  if (slot == kNull) return std::nullopt;
  return Order{order_id_[slot], order_side_[slot], order_price_[slot], order_qty_[slot]};
}

}  // namespace tsn::book
