// Price-time-priority limit order book — the matching substrate every
// exchange in the simulation runs (§2: exchanges "match up compatible buy
// and sell orders").
//
// The book keeps two price-ordered ladders of FIFO queues. Incoming orders
// match against the opposite side from the top of book, in price-time
// priority; any remainder rests. The book reports every state change
// through a listener interface, which the exchange turns into market-data
// messages.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>

#include "proto/types.hpp"

namespace tsn::book {

using proto::ExecId;
using proto::OrderId;
using proto::Price;
using proto::Quantity;
using proto::Side;
using proto::Symbol;

struct Order {
  OrderId id = 0;
  Side side = Side::kBuy;
  Price price = 0;
  Quantity quantity = 0;  // remaining
};

struct BestQuote {
  std::optional<Price> bid_price;
  Quantity bid_quantity = 0;
  std::optional<Price> ask_price;
  Quantity ask_quantity = 0;

  bool operator==(const BestQuote&) const = default;
};

// One match between a resting and an aggressive order.
struct Execution {
  OrderId resting_id = 0;
  OrderId aggressive_id = 0;
  Quantity quantity = 0;
  Price price = 0;  // the resting order's price
  ExecId exec_id = 0;
  Quantity resting_remaining = 0;
  Quantity aggressive_remaining = 0;
};

// Receives every book event, in match order.
class BookListener {
 public:
  virtual ~BookListener() = default;
  virtual void on_accept(const Order& order) = 0;
  virtual void on_execute(const Execution& execution) = 0;
  virtual void on_reduce(OrderId order_id, Quantity cancelled) = 0;
  virtual void on_delete(OrderId order_id) = 0;
  virtual void on_replace(OrderId order_id, Quantity new_quantity, Price new_price) = 0;
};

class OrderBook {
 public:
  explicit OrderBook(Symbol symbol, BookListener* listener = nullptr) noexcept
      : symbol_(symbol), listener_(listener) {}

  void set_listener(BookListener* listener) noexcept { listener_ = listener; }

  enum class SubmitResult {
    kFilled,              // fully executed on entry
    kRested,              // no fill; resting in full
    kPartialFill,         // some filled; remainder resting
    kCancelled,           // IOC remainder cancelled (possibly after fills)
    kRejectedDuplicate,   // order id already live
  };

  struct SubmitOutcome {
    SubmitResult result = SubmitResult::kRested;
    Quantity filled = 0;
  };

  // Submits a limit order. Matches as far as possible; the remainder rests
  // unless `immediate_or_cancel`.
  SubmitOutcome submit(const Order& order, bool immediate_or_cancel = false);

  // Cancels a resting order in full, returning the cancelled quantity.
  // nullopt if unknown (e.g. already filled: the cancel/fill race of §2
  // surfaces here).
  std::optional<Quantity> cancel(OrderId id);

  // Reduces quantity without losing time priority; false if unknown or the
  // reduction is not a decrease.
  bool reduce(OrderId id, Quantity new_quantity);

  // Price or size-increase change: cancels and re-enters (loses priority),
  // matching immediately if marketable. False if unknown.
  bool replace(OrderId id, Quantity new_quantity, Price new_price);

  [[nodiscard]] BestQuote best() const;
  // Visits every resting order, bids first (best to worst), then asks —
  // the iteration a snapshot service uses to serialize book state.
  void for_each_order(const std::function<void(const Order&)>& fn) const;
  [[nodiscard]] std::size_t open_orders() const noexcept { return index_.size(); }
  [[nodiscard]] std::size_t bid_levels() const noexcept { return bids_.size(); }
  [[nodiscard]] std::size_t ask_levels() const noexcept { return asks_.size(); }
  [[nodiscard]] Symbol symbol() const noexcept { return symbol_; }
  [[nodiscard]] std::uint64_t executions() const noexcept { return exec_count_; }
  // Depth at a given price level (0 if none).
  [[nodiscard]] Quantity depth_at(Side side, Price price) const;

 private:
  // Bids: best = highest price. Asks: best = lowest. Each level is FIFO.
  using Level = std::list<Order>;
  using BidLadder = std::map<Price, Level, std::greater<>>;
  using AskLadder = std::map<Price, Level, std::less<>>;

  struct Locator {
    Side side;
    Price price;
    Level::iterator position;
  };

  template <typename Ladder>
  Quantity match_against(Ladder& ladder, Order& incoming);
  template <typename Ladder>
  void rest_on(Ladder& ladder, const Order& order);
  bool erase_located(OrderId id, const Locator& loc);

  Symbol symbol_;
  BookListener* listener_;
  BidLadder bids_;
  AskLadder asks_;
  std::unordered_map<OrderId, Locator> index_;
  ExecId next_exec_id_ = 1;
  std::uint64_t exec_count_ = 0;
};

}  // namespace tsn::book
