// Price-time-priority limit order book — the matching substrate every
// exchange in the simulation runs (§2: exchanges "match up compatible buy
// and sell orders").
//
// Pooled struct-of-arrays implementation (ROADMAP item 4). Orders and price
// levels live in slab-allocated parallel columns with freelist reuse:
//
//   order slab   id | price | qty | next | prev | level | side
//   level slab   price | qty | head | tail | next | prev
//
// Each column is its own 64-byte-aligned array (SNIPPETS.md snippet 2), so
// the fields the matching loop touches stream through separate cache lines
// and a submit/cancel/match never allocates once the slabs are warm. Levels
// form an intrusive sorted doubly-linked ladder per side (best at the head);
// orders form an intrusive FIFO chain per level; an open-addressing id index
// gives O(1) cancels. Growth doubles the slabs off the hot path.
//
// The book reports every state change through a listener interface, which
// the exchange turns into market-data messages. Event order, execution ids,
// and all query results are byte-identical to the node-based ReferenceBook
// (asserted by tests/test_book_differential.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <optional>
#include <vector>

#include "proto/types.hpp"

namespace tsn::book {

using proto::ExecId;
using proto::OrderId;
using proto::Price;
using proto::Quantity;
using proto::Side;
using proto::Symbol;

struct Order {
  OrderId id = 0;
  Side side = Side::kBuy;
  Price price = 0;
  Quantity quantity = 0;  // remaining
};

struct BestQuote {
  std::optional<Price> bid_price;
  Quantity bid_quantity = 0;
  std::optional<Price> ask_price;
  Quantity ask_quantity = 0;

  bool operator==(const BestQuote&) const = default;
};

// One match between a resting and an aggressive order.
struct Execution {
  OrderId resting_id = 0;
  OrderId aggressive_id = 0;
  Quantity quantity = 0;
  Price price = 0;  // the resting order's price
  ExecId exec_id = 0;
  Quantity resting_remaining = 0;
  Quantity aggressive_remaining = 0;
};

// Receives every book event, in match order.
class BookListener {
 public:
  virtual ~BookListener() = default;
  virtual void on_accept(const Order& order) = 0;
  virtual void on_execute(const Execution& execution) = 0;
  virtual void on_reduce(OrderId order_id, Quantity cancelled) = 0;
  virtual void on_delete(OrderId order_id) = 0;
  virtual void on_replace(OrderId order_id, Quantity new_quantity, Price new_price) = 0;
};

// Cache-line-aligned backing for one SoA column: the base of every column is
// 64-byte aligned so no two columns share a line and the matching loop's
// streaming loads stay line-exclusive.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlign = 64;

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{kAlign}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{kAlign});
  }
  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

template <typename T>
using Column = std::vector<T, CacheAlignedAllocator<T>>;

class OrderBook {
 public:
  explicit OrderBook(Symbol symbol, BookListener* listener = nullptr) noexcept
      : symbol_(symbol), listener_(listener) {}

  void set_listener(BookListener* listener) noexcept { listener_ = listener; }

  enum class SubmitResult {
    kFilled,              // fully executed on entry
    kRested,              // no fill; resting in full
    kPartialFill,         // some filled; remainder resting
    kCancelled,           // IOC remainder cancelled (possibly after fills)
    kRejectedDuplicate,   // order id already live
  };

  struct SubmitOutcome {
    SubmitResult result = SubmitResult::kRested;
    Quantity filled = 0;
  };

  // Submits a limit order. Matches as far as possible; the remainder rests
  // unless `immediate_or_cancel`.
  SubmitOutcome submit(const Order& order, bool immediate_or_cancel = false);

  // Cancels a resting order in full, returning the cancelled quantity.
  // nullopt if unknown (e.g. already filled: the cancel/fill race of §2
  // surfaces here).
  std::optional<Quantity> cancel(OrderId id);

  // Reduces quantity without losing time priority; false if unknown or the
  // reduction is not a decrease.
  bool reduce(OrderId id, Quantity new_quantity);

  // Price or size-increase change: cancels and re-enters (loses priority),
  // matching immediately if marketable. False if unknown.
  bool replace(OrderId id, Quantity new_quantity, Price new_price);

  [[nodiscard]] BestQuote best() const;
  // Visits every resting order, bids first (best to worst), then asks —
  // the iteration a snapshot service uses to serialize book state.
  void for_each_order(const std::function<void(const Order&)>& fn) const;
  [[nodiscard]] std::size_t open_orders() const noexcept { return index_.count; }
  [[nodiscard]] std::size_t bid_levels() const noexcept { return bid_level_count_; }
  [[nodiscard]] std::size_t ask_levels() const noexcept { return ask_level_count_; }
  [[nodiscard]] Symbol symbol() const noexcept { return symbol_; }
  [[nodiscard]] std::uint64_t executions() const noexcept { return exec_count_; }
  // Depth at a given price level (0 if none).
  [[nodiscard]] Quantity depth_at(Side side, Price price) const;
  // O(1) lookup of a resting order (replay-to-book consumers resolve
  // executed/reduced quantities through this).
  [[nodiscard]] std::optional<Order> find(OrderId id) const;

  // Pre-sizes the slabs and the id index so the first `orders` resting
  // orders across `levels` price levels never grow mid-update.
  void reserve(std::size_t orders, std::size_t levels);

 private:
  static constexpr std::uint32_t kNull = 0xffffffffu;

  // Open-addressing OrderId -> order-slot map (linear probing, tombstones,
  // power-of-two capacity). Never iterated, so probe order can't leak into
  // observable behaviour.
  struct IdIndex {
    Column<OrderId> keys;
    Column<std::uint32_t> slots;
    Column<std::uint8_t> states;  // 0 empty, 1 full, 2 tombstone
    std::size_t count = 0;        // live entries
    std::size_t occupied = 0;     // live + tombstones
  };

  Quantity match_incoming(Order& incoming);
  void rest_order(const Order& order);
  std::uint32_t level_for(bool bid_side, Price price);
  void unlink_order(std::uint32_t order);
  void unlink_level(bool bid_side, std::uint32_t level);
  std::uint32_t alloc_order_slot();
  std::uint32_t alloc_level_slot();
  void grow_orders(std::size_t new_capacity);
  void grow_levels(std::size_t new_capacity);

  [[nodiscard]] std::uint32_t index_find(OrderId id) const;
  void index_insert(OrderId id, std::uint32_t slot);
  void index_erase(OrderId id);
  void index_grow(std::size_t min_capacity);

  Symbol symbol_;
  BookListener* listener_;

  // Order slab (parallel columns; slot = row).
  Column<OrderId> order_id_;
  Column<Price> order_price_;
  Column<Quantity> order_qty_;
  Column<std::uint32_t> order_next_;  // FIFO chain toward the level tail / freelist link
  Column<std::uint32_t> order_prev_;
  Column<std::uint32_t> order_level_;
  Column<Side> order_side_;
  std::uint32_t free_order_ = kNull;

  // Level slab (parallel columns; slot = row).
  Column<Price> level_price_;
  Column<Quantity> level_qty_;        // aggregate resting quantity at the level
  Column<std::uint32_t> level_head_;  // front of the FIFO (oldest order)
  Column<std::uint32_t> level_tail_;
  Column<std::uint32_t> level_next_;  // next-worse level on the side / freelist link
  Column<std::uint32_t> level_prev_;
  std::uint32_t free_level_ = kNull;

  // Ladder heads: bids descend from the highest price, asks ascend from the
  // lowest, so the head is always the best level on its side.
  std::uint32_t best_bid_ = kNull;
  std::uint32_t best_ask_ = kNull;
  std::size_t bid_level_count_ = 0;
  std::size_t ask_level_count_ = 0;

  IdIndex index_;
  ExecId next_exec_id_ = 1;
  std::uint64_t exec_count_ = 0;
};

}  // namespace tsn::book
