#include "wan/metro.hpp"

namespace tsn::wan {

namespace {

constexpr double kSpeedOfLight = 299'792'458.0;  // m/s

// Approximate geodesics for the northern-New-Jersey triangle.
constexpr double kMahwahSecaucus = 40'000.0;   // ~25 miles
constexpr double kSecaucusCarteret = 16'000.0; // ~10 miles
constexpr double kMahwahCarteret = 56'000.0;   // ~35 miles

}  // namespace

WanTechParams params_for(LinkTech tech) noexcept {
  switch (tech) {
    case LinkTech::kFiber:
      return WanTechParams{0.66, 1.40, 100'000'000'000, 0.0};
    case LinkTech::kMicrowave:
      // Near-c in air, near-geodesic towers, but ~1 Gb/s and rain fade.
      return WanTechParams{0.9997, 1.05, 1'000'000'000, 0.02};
  }
  return {};
}

double geodesic_meters(Colo a, Colo b) noexcept {
  if (a == b) return 0.0;
  const auto pair = static_cast<int>(a) + static_cast<int>(b);
  // Mahwah(0)+Secaucus(1)=1, Secaucus(1)+Carteret(2)=3, Mahwah(0)+Carteret(2)=2.
  switch (pair) {
    case 1:
      return kMahwahSecaucus;
    case 3:
      return kSecaucusCarteret;
    default:
      return kMahwahCarteret;
  }
}

sim::Duration propagation_delay(Colo a, Colo b, LinkTech tech) noexcept {
  const WanTechParams p = params_for(tech);
  const double meters = geodesic_meters(a, b) * p.path_inflation;
  const double seconds = meters / (kSpeedOfLight * p.speed_fraction_of_c);
  return sim::seconds(seconds);
}

net::LinkConfig wan_link_config(Colo a, Colo b, LinkTech tech, bool raining) noexcept {
  const WanTechParams p = params_for(tech);
  net::LinkConfig config;
  config.rate_bps = p.rate_bps;
  config.propagation = propagation_delay(a, b, tech);
  config.queue_capacity_bytes = 4 << 20;
  config.loss_probability = raining ? p.weather_loss : 0.0;
  config.span_kind = telemetry::SpanKind::kWan;
  return config;
}

void register_wan_link_metrics(telemetry::Registry& registry, const std::string& prefix,
                               const net::Link& link) {
  registry.gauge(prefix + ".frames_delivered",
                 [&link] { return static_cast<double>(link.stats().frames_delivered); });
  registry.gauge(prefix + ".frames_dropped_queue",
                 [&link] { return static_cast<double>(link.stats().frames_dropped_queue); });
  registry.gauge(prefix + ".rain_fade_losses",
                 [&link] { return static_cast<double>(link.stats().frames_dropped_loss); });
  registry.gauge(prefix + ".bytes_delivered",
                 [&link] { return static_cast<double>(link.stats().bytes_delivered); });
}

void schedule_rain_fade(fault::FaultInjector& injector, const std::string& link_name,
                        sim::Time start, sim::Duration rise, sim::Duration fall,
                        LinkTech tech) {
  const double peak = params_for(tech).weather_loss;
  if (peak <= 0.0) return;
  injector.ramp_loss(link_name, start, rise, fall, peak);
}

sim::Duration microwave_advantage(Colo a, Colo b) noexcept {
  return propagation_delay(a, b, LinkTech::kFiber) -
         propagation_delay(a, b, LinkTech::kMicrowave);
}

}  // namespace tsn::wan
