// Inter-colo WAN modelling (§2).
//
// Trading on all US equities markets means servers in three co-location
// facilities tens of miles apart (Figure 1a): Mahwah (NYSE family),
// Secaucus (Cboe/MIAX families), and Carteret (Nasdaq family). Firms run
// private WANs between them and shave latency with microwave/laser links,
// which beat fiber two ways — straighter paths and c in air vs ~0.66c in
// glass — at the cost of weather-dependent loss and far less bandwidth.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "fault/injector.hpp"
#include "net/link.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::wan {

enum class Colo : std::uint8_t { kMahwah = 0, kSecaucus = 1, kCarteret = 2 };
inline constexpr std::size_t kColoCount = 3;

[[nodiscard]] constexpr std::string_view to_string(Colo colo) noexcept {
  switch (colo) {
    case Colo::kMahwah:
      return "Mahwah";
    case Colo::kSecaucus:
      return "Secaucus";
    case Colo::kCarteret:
      return "Carteret";
  }
  return "?";
}

enum class LinkTech : std::uint8_t { kFiber, kMicrowave };

struct WanTechParams {
  // Fraction of c the signal propagates at (fiber ~0.66, air ~0.9997).
  double speed_fraction_of_c = 0.66;
  // Route length relative to the geodesic (fiber follows rights-of-way).
  double path_inflation = 1.40;
  std::uint64_t rate_bps = 10'000'000'000;
  // Loss probability under adverse weather (microwave rain fade).
  double weather_loss = 0.0;
};

[[nodiscard]] WanTechParams params_for(LinkTech tech) noexcept;

// Straight-line distance between colos, meters.
[[nodiscard]] double geodesic_meters(Colo a, Colo b) noexcept;

// One-way propagation delay for a technology between two colos.
[[nodiscard]] sim::Duration propagation_delay(Colo a, Colo b, LinkTech tech) noexcept;

// Builds a LinkConfig for the WAN hop. When `raining` is true, microwave
// links suffer their weather loss probability; fiber is unaffected.
[[nodiscard]] net::LinkConfig wan_link_config(Colo a, Colo b, LinkTech tech,
                                              bool raining = false) noexcept;

// Latency advantage of microwave over fiber for a colo pair.
[[nodiscard]] sim::Duration microwave_advantage(Colo a, Colo b) noexcept;

// Schedules a rain-fade event against a fault-injector-registered WAN link:
// a triangular loss ramp that climbs to the technology's weather-loss peak
// over `rise`, then decays over `fall`. Fiber has no weather loss, so the
// call is a no-op for it — which is exactly the paper's argument for keeping
// a fiber backup under every microwave path.
void schedule_rain_fade(fault::FaultInjector& injector, const std::string& link_name,
                        sim::Time start, sim::Duration rise, sim::Duration fall,
                        LinkTech tech = LinkTech::kMicrowave);

// Registers a WAN segment's delivery/drop counters under `prefix`; microwave
// rain-fade losses surface as "<prefix>.rain_fade_losses". The link must
// outlive the registry snapshotting.
void register_wan_link_metrics(telemetry::Registry& registry, const std::string& prefix,
                               const net::Link& link);

}  // namespace tsn::wan
