#include "deploy/reference.hpp"

#include <functional>
#include <string>

namespace tsn::deploy {

namespace {

// Addressing callback: (rack, index) -> IP. Leaf-spine uses its rack
// subnets; the L1S fabric uses a flat space.
using Addresser = std::function<net::Ipv4Addr(std::size_t rack, std::size_t index)>;

}  // namespace

Deployment::Deployment(DeploymentConfig config) : config_(config) {}

void Deployment::start() {
  normalizer_->join_feeds();
  gateway_->start();
  for (auto& strategy : strategies_) strategy->start();
  engine_.run();
}

void Deployment::run(sim::Duration duration) {
  if (!driver_) {
    exchange::ActivityConfig activity;
    activity.events_per_second = config_.events_per_second;
    activity.cross_weight = 0.2;
    driver_ = std::make_unique<exchange::MarketActivityDriver>(*exchange_, activity,
                                                               config_.seed);
  }
  driver_->run_until(engine_.now() + duration);
  engine_.run();
}

void Deployment::run_bounded(sim::Duration activity, sim::Duration drain) {
  if (!driver_) {
    exchange::ActivityConfig activity_config;
    activity_config.events_per_second = config_.events_per_second;
    activity_config.cross_weight = 0.2;
    driver_ = std::make_unique<exchange::MarketActivityDriver>(*exchange_, activity_config,
                                                               config_.seed);
  }
  driver_->run_until(engine_.now() + activity);
  engine_.run_until(engine_.now() + activity + drain);
}

DeploymentReport Deployment::report() const {
  DeploymentReport out;
  out.feed_datagrams = exchange_->stats().feed_datagrams;
  out.feed_messages = exchange_->stats().feed_messages;
  out.normalized_updates = normalizer_->stats().updates_out;
  out.sequence_gaps = normalizer_->stats().sequence_gaps;
  for (const auto& strategy : strategies_) {
    out.updates_received += strategy->stats().updates_received;
    out.orders_sent += strategy->stats().orders_sent;
    out.acks += strategy->stats().acks;
    out.fills += strategy->stats().fills;
    out.tick_to_trade_ns.merge(strategy->tick_to_trade());
    out.order_rtt_ns.merge(strategy->order_rtt());
    out.feed_path_ns.merge(strategy->feed_path());
  }
  out.frames_dropped = fabric_.total_stats().frames_dropped_queue +
                       fabric_.total_stats().frames_dropped_loss;
  return out;
}

void Deployment::register_metrics(telemetry::Registry& registry) const {
  exchange_->register_metrics(registry, "exchange");
  normalizer_->register_metrics(registry, "normalizer");
  gateway_->register_metrics(registry, "gateway");
  for (const auto& strategy : strategies_) {
    strategy->register_metrics(registry, "strategy." + strategy->config().name);
  }
  fabric_.register_metrics(registry, "fabric");
}

void LeafSpineDeployment::register_metrics(telemetry::Registry& registry) const {
  Deployment::register_metrics(registry);
  for (std::size_t i = 0; i < topo_->leaf_count(); ++i) {
    topo_->leaf(i).register_metrics(registry, "switch");
  }
  for (std::size_t i = 0; i < topo_->spine_count(); ++i) {
    topo_->spine(i).register_metrics(registry, "switch");
  }
}

void QuadL1sDeployment::register_metrics(telemetry::Registry& registry) const {
  Deployment::register_metrics(registry);
  using topo::Stage;
  for (const Stage stage :
       {Stage::kFeeds, Stage::kNormDist, Stage::kOrderAgg, Stage::kToExchange}) {
    topo_->stage_switch(stage).register_metrics(registry, "l1s");
  }
}

namespace {

struct BuiltApps {
  std::unique_ptr<exchange::Exchange> exchange;
  std::unique_ptr<trading::Normalizer> normalizer;
  std::unique_ptr<trading::Gateway> gateway;
  std::vector<std::unique_ptr<trading::MomentumTaker>> strategies;
};

BuiltApps build_apps(sim::Scheduler& engine, const DeploymentConfig& config,
                     const Addresser& address, std::uint32_t& next_host_id) {
  BuiltApps apps;
  auto next_mac = [&next_host_id] { return net::MacAddr::from_host_id(next_host_id++); };

  exchange::ExchangeConfig xconfig;
  xconfig.name = "EXCH";
  xconfig.exchange_id = 1;
  for (std::size_t i = 0; i < config.symbol_count; ++i) {
    xconfig.symbols.push_back({proto::Symbol{"SY" + std::to_string(i)},
                               proto::InstrumentKind::kEquity,
                               proto::price_from_dollars(50.0 + static_cast<double>(i) * 7.0)});
  }
  xconfig.feed_partitioning = std::make_shared<proto::HashPartition>(config.exchange_units);
  xconfig.feed_mac = next_mac();
  xconfig.feed_ip = address(0, 0);
  xconfig.order_mac = next_mac();
  xconfig.order_ip = address(0, 1);
  apps.exchange = std::make_unique<exchange::Exchange>(engine, xconfig);

  trading::NormalizerConfig nconfig;
  nconfig.name = "norm";
  nconfig.exchange_id = 1;
  for (std::uint8_t u = 0; u < apps.exchange->unit_count(); ++u) {
    nconfig.feed_groups.push_back(apps.exchange->unit_group(u));
  }
  nconfig.feed_port = xconfig.feed_port;
  nconfig.partitioning = std::make_shared<proto::HashPartition>(config.norm_partitions);
  nconfig.software_latency = config.software_latency;
  nconfig.in_mac = next_mac();
  nconfig.in_ip = address(1, 0);
  nconfig.out_mac = next_mac();
  nconfig.out_ip = address(1, 1);
  apps.normalizer = std::make_unique<trading::Normalizer>(engine, nconfig);

  trading::GatewayConfig gconfig;
  gconfig.name = "gw";
  gconfig.exchange_mac = xconfig.order_mac;
  gconfig.exchange_ip = xconfig.order_ip;
  gconfig.exchange_port = xconfig.order_port;
  gconfig.software_latency = config.software_latency;
  gconfig.client_mac = next_mac();
  gconfig.client_ip = address(3, 0);
  gconfig.upstream_mac = next_mac();
  gconfig.upstream_ip = address(3, 1);
  apps.gateway = std::make_unique<trading::Gateway>(engine, gconfig);

  for (std::size_t s = 0; s < config.strategy_count; ++s) {
    trading::StrategyConfig sconfig;
    sconfig.name = "strat" + std::to_string(s);
    for (std::uint32_t p = 0; p < config.norm_partitions; ++p) {
      sconfig.subscriptions.push_back(apps.normalizer->partition_group(p));
    }
    sconfig.norm_port = nconfig.out_port;
    sconfig.gateway_mac = gconfig.client_mac;
    sconfig.gateway_ip = gconfig.client_ip;
    sconfig.gateway_port = gconfig.listen_port;
    sconfig.decision_latency = config.decision_latency;
    sconfig.software_latency = config.software_latency;
    sconfig.md_mac = next_mac();
    sconfig.md_ip = address(2, 2 * s);
    sconfig.order_mac = next_mac();
    sconfig.order_ip = address(2, 2 * s + 1);
    apps.strategies.push_back(std::make_unique<trading::MomentumTaker>(
        engine, sconfig, config.momentum_tick, 100));
  }
  return apps;
}

}  // namespace

topo::LeafSpineConfig LeafSpineDeployment::default_topo() {
  topo::LeafSpineConfig config;
  config.spine_count = 2;
  config.leaf_count = 4;
  config.ports_per_leaf = 34;  // room for 16 strategies per rack
  return config;
}

LeafSpineDeployment::LeafSpineDeployment(DeploymentConfig config,
                                         topo::LeafSpineConfig topo_config)
    : Deployment(config) {
  topo_ = std::make_unique<topo::LeafSpineFabric>(fabric_, topo_config);
  auto apps = build_apps(engine_, config_, topo::LeafSpineFabric::host_ip, next_host_id_);
  exchange_ = std::move(apps.exchange);
  normalizer_ = std::move(apps.normalizer);
  gateway_ = std::move(apps.gateway);
  strategies_ = std::move(apps.strategies);

  topo_->attach_host(0, exchange_->feed_nic());
  topo_->attach_host(0, exchange_->order_nic());
  topo_->attach_host(1, normalizer_->in_nic());
  topo_->attach_host(1, normalizer_->out_nic());
  for (auto& strategy : strategies_) {
    topo_->attach_host(2, strategy->md_nic());
    topo_->attach_host(2, strategy->order_nic());
  }
  topo_->attach_host(3, gateway_->client_nic());
  topo_->attach_host(3, gateway_->upstream_nic());
}

QuadL1sDeployment::QuadL1sDeployment(DeploymentConfig config, topo::QuadL1Config topo_config)
    : Deployment(config) {
  topo_ = std::make_unique<topo::QuadL1Fabric>(fabric_, topo_config);
  // Flat addressing: the circuit fabric does no routing.
  auto address = [](std::size_t rack, std::size_t index) {
    return net::Ipv4Addr{10, 9, static_cast<std::uint8_t>(rack),
                         static_cast<std::uint8_t>(index + 1)};
  };
  auto apps = build_apps(engine_, config_, address, next_host_id_);
  exchange_ = std::move(apps.exchange);
  normalizer_ = std::move(apps.normalizer);
  gateway_ = std::move(apps.gateway);
  strategies_ = std::move(apps.strategies);

  using topo::Stage;
  // Stage 1: exchange feed -> normalizer.
  const auto feed_out = topo_->attach(Stage::kFeeds, exchange_->feed_nic());
  const auto norm_in = topo_->attach(Stage::kFeeds, normalizer_->in_nic());
  topo_->patch(Stage::kFeeds, feed_out, norm_in);
  // Stage 2: normalized feed fan-out to every strategy.
  const auto norm_out = topo_->attach(Stage::kNormDist, normalizer_->out_nic());
  for (auto& strategy : strategies_) {
    const auto port = topo_->attach(Stage::kNormDist, strategy->md_nic());
    topo_->patch(Stage::kNormDist, norm_out, port);
  }
  // Stage 3: strategies merge onto the gateway; responses fan back out.
  const auto gw_client = topo_->attach(Stage::kOrderAgg, gateway_->client_nic());
  for (auto& strategy : strategies_) {
    const auto port = topo_->attach(Stage::kOrderAgg, strategy->order_nic());
    topo_->patch_duplex(Stage::kOrderAgg, port, gw_client);
  }
  // Stage 4: gateway to the exchange order port.
  const auto gw_up = topo_->attach(Stage::kToExchange, gateway_->upstream_nic());
  const auto exch_orders = topo_->attach(Stage::kToExchange, exchange_->order_nic());
  topo_->patch_duplex(Stage::kToExchange, gw_up, exch_orders);
}

}  // namespace tsn::deploy
