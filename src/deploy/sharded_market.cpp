#include "deploy/sharded_market.hpp"

#include <string>
#include <utility>

#include "core/check.hpp"
#include "net/bridge.hpp"
#include "proto/partition.hpp"

namespace tsn::deploy {

namespace {

// FNV-1a folding for the end-state digest. Everything funnels through
// 64-bit mixes so the digest is layout- and padding-independent.
struct Digest {
  std::uint64_t hash = 1469598103934665603ull;

  void mix(std::uint64_t value) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (i * 8)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
  void mix_price(std::optional<proto::Price> price) noexcept {
    mix(price ? static_cast<std::uint64_t>(*price) + 1 : 0);
  }
};

void mix_exchange(Digest& d, exchange::Exchange& exch) {
  const exchange::ExchangeStats& s = exch.stats();
  d.mix(s.feed_messages);
  d.mix(s.feed_datagrams);
  d.mix(s.orders_received);
  d.mix(s.orders_accepted);
  d.mix(s.orders_rejected);
  d.mix(s.cancels_received);
  d.mix(s.cancel_rejects);
  d.mix(s.fills_sent);
  for (const exchange::SymbolSpec& spec : exch.config().symbols) {
    book::OrderBook& book = exch.book(spec.symbol);
    const book::BestQuote best = book.best();
    d.mix_price(best.bid_price);
    d.mix(best.bid_quantity);
    d.mix_price(best.ask_price);
    d.mix(best.ask_quantity);
    d.mix(book.open_orders());
    d.mix(book.bid_levels());
    d.mix(book.ask_levels());
    d.mix(book.executions());
  }
}

void mix_normalizer(Digest& d, const trading::Normalizer& norm) {
  const trading::NormalizerStats& s = norm.stats();
  d.mix(s.datagrams_in);
  d.mix(s.messages_in);
  d.mix(s.updates_out);
  d.mix(s.datagrams_out);
  d.mix(s.bbo_updates);
  d.mix(s.unknown_orders);
  d.mix(s.sequence_gaps);
  d.mix(s.messages_lost);
  d.mix(s.resyncs_started);
  d.mix(s.resyncs_completed);
  d.mix(s.snapshot_orders_applied);
  d.mix(norm.tracked_orders());
}

void mix_bbos(Digest& d, const trading::Normalizer& norm, const exchange::Exchange& feed) {
  for (const exchange::SymbolSpec& spec : feed.config().symbols) {
    const auto bbo = norm.best_of(spec.symbol);
    d.mix(bbo ? 1 : 0);
    if (bbo) {
      d.mix(static_cast<std::uint64_t>(bbo->bid));
      d.mix(static_cast<std::uint64_t>(bbo->ask));
    }
  }
}

void mix_switch(Digest& d, const l2::CommoditySwitch& xsw) {
  const l2::SwitchStats& s = xsw.stats();
  d.mix(s.unicast_forwarded);
  d.mix(s.multicast_hw_forwarded);
  d.mix(s.multicast_sw_forwarded);
  d.mix(s.software_queue_drops);
  d.mix(s.no_route_drops);
  d.mix(s.no_group_drops);
  d.mix(s.igmp_processed);
  d.mix(s.replications);
}

void mix_fabric(Digest& d, const net::Fabric& fabric) {
  const net::LinkStats s = fabric.total_stats();
  d.mix(s.frames_delivered);
  d.mix(s.frames_dropped_queue);
  d.mix(s.frames_dropped_loss);
  d.mix(s.bytes_delivered);
  d.mix(static_cast<std::uint64_t>(s.max_queue_delay.picos()));
}

}  // namespace

ShardedMarket::ShardedMarket(sim::Engine& engine, const ShardedMarketConfig& config)
    : config_(config), plain_(&engine) {
  TSN_ASSERT(config_.partitions > 0, "a market needs at least one partition");
  for (std::size_t p = 0; p < config_.partitions; ++p) build_partition(p, engine);
  wire_cross_links();
}

ShardedMarket::ShardedMarket(sim::ShardedEngine& engine, const ShardedMarketConfig& config)
    : config_(config), sharded_(&engine) {
  TSN_ASSERT(config_.partitions > 0, "a market needs at least one partition");
  TSN_ASSERT(engine.domain_count() >= config_.partitions,
             "sharded market needs one domain per partition");
  for (std::size_t p = 0; p < config_.partitions; ++p) {
    build_partition(p, engine.domain(static_cast<sim::DomainId>(p)));
  }
  wire_cross_links();
}

void ShardedMarket::build_partition(std::size_t p, sim::Scheduler& scheduler) {
  auto partition = std::make_unique<Partition>(scheduler);
  const auto octet = static_cast<std::uint8_t>(p);
  const auto host_base = static_cast<std::uint32_t>(p) * 100;

  exchange::ExchangeConfig exchange_config;
  exchange_config.name = "EXCH" + std::to_string(p);
  exchange_config.exchange_id = static_cast<std::uint8_t>(p + 1);
  exchange_config.symbols = {
      {proto::Symbol{"AA" + std::to_string(p)}, proto::InstrumentKind::kEquity,
       proto::price_from_dollars(100)},
      {proto::Symbol{"BB" + std::to_string(p)}, proto::InstrumentKind::kEquity,
       proto::price_from_dollars(50)}};
  exchange_config.feed_partitioning = std::make_shared<proto::HashPartition>(1);
  exchange_config.feed_group_base = net::Ipv4Addr{239, 100, octet, 0};
  exchange_config.snapshot_group_base = net::Ipv4Addr{239, 101, octet, 0};
  exchange_config.snapshot_interval = sim::millis(std::int64_t{5});
  exchange_config.feed_mac = net::MacAddr::from_host_id(host_base + 1);
  exchange_config.feed_ip = net::Ipv4Addr{10, static_cast<std::uint8_t>(p + 1), 0, 1};
  exchange_config.order_mac = net::MacAddr::from_host_id(host_base + 2);
  exchange_config.order_ip = net::Ipv4Addr{10, static_cast<std::uint8_t>(p + 1), 0, 2};
  partition->exch = std::make_unique<exchange::Exchange>(scheduler, exchange_config);

  l2::CommoditySwitchConfig switch_config;
  switch_config.port_count = 8;
  partition->xsw = std::make_unique<l2::CommoditySwitch>(
      scheduler, "xsw" + std::to_string(p), switch_config);

  trading::NormalizerConfig norm_config;
  norm_config.exchange_id = static_cast<std::uint8_t>(p + 1);
  norm_config.feed_groups = {partition->exch->unit_group(0)};
  norm_config.snapshot_groups = {partition->exch->snapshot_group(0)};
  norm_config.exchange_partitioning = std::make_shared<proto::HashPartition>(1);
  norm_config.partitioning = std::make_shared<proto::HashPartition>(2);
  norm_config.in_mac = net::MacAddr::from_host_id(host_base + 10);
  norm_config.in_ip = net::Ipv4Addr{10, static_cast<std::uint8_t>(p + 1), 1, 1};
  norm_config.out_mac = net::MacAddr::from_host_id(host_base + 11);
  norm_config.out_ip = net::Ipv4Addr{10, static_cast<std::uint8_t>(p + 1), 1, 2};
  partition->norm = std::make_unique<trading::Normalizer>(scheduler, norm_config);

  // Exchange feed into the switch, local normalizer on a full cable (its
  // IGMP joins flow back up and install the local mroutes).
  net::Link& to_xsw = partition->fabric.make_link(
      "exch" + std::to_string(p) + "->xsw", net::LinkConfig{}, *partition->xsw, kIngressPort);
  partition->exch->feed_nic().attach_port(0, to_xsw);
  partition->fabric.connect(*partition->xsw, kLocalPort, partition->norm->in_nic(), 0,
                            net::LinkConfig{});

  if (config_.partitions > 1) {
    // The observer consumes the ring-previous partition's incremental feed.
    // Its uplink never exists (the remote link is one-way), so it gets no
    // snapshot channel: the MAC filter comes from join_feeds(), whose IGMP
    // report vanishes on the unattached egress — identically in the plain
    // and sharded builds.
    const std::size_t source =
        (p + config_.partitions - 1) % config_.partitions;
    trading::NormalizerConfig observer_config;
    observer_config.exchange_id = static_cast<std::uint8_t>(source + 1);
    observer_config.feed_groups = {
        net::Ipv4Addr{239, 100, static_cast<std::uint8_t>(source), 0}};
    observer_config.exchange_partitioning = std::make_shared<proto::HashPartition>(1);
    observer_config.partitioning = std::make_shared<proto::HashPartition>(2);
    observer_config.in_mac = net::MacAddr::from_host_id(host_base + 20);
    observer_config.in_ip = net::Ipv4Addr{10, static_cast<std::uint8_t>(p + 1), 2, 1};
    observer_config.out_mac = net::MacAddr::from_host_id(host_base + 21);
    observer_config.out_ip = net::Ipv4Addr{10, static_cast<std::uint8_t>(p + 1), 2, 2};
    partition->observer = std::make_unique<trading::Normalizer>(scheduler, observer_config);

    // No IGMP can cross the one-way inter-partition link, so the remote
    // egress gets a static mroute for this partition's feed group.
    partition->xsw->join_group(partition->exch->unit_group(0), kRemotePort);
  }

  partitions_.push_back(std::move(partition));
}

void ShardedMarket::wire_cross_links() {
  if (config_.partitions <= 1) return;
  net::LinkConfig cross;
  cross.propagation = config_.cross_propagation;
  for (std::size_t src = 0; src < config_.partitions; ++src) {
    const std::size_t dst = (src + 1) % config_.partitions;
    Partition& from = *partitions_[src];
    Partition& to = *partitions_[dst];
    const std::string name = "x" + std::to_string(src) + "->" + std::to_string(dst);
    if (sharded_ != nullptr) {
      net::Link& link = from.fabric.make_remote_link(name, cross);
      net::bridge_domains(*sharded_, sharded_->domain(static_cast<sim::DomainId>(src)), link,
                          sharded_->domain(static_cast<sim::DomainId>(dst)),
                          to.fabric.packets(), to.observer->in_nic(), 0);
      from.xsw->attach_port(kRemotePort, link);
    } else {
      net::Link& link = from.fabric.make_link(name, cross, to.observer->in_nic(), 0);
      from.xsw->attach_port(kRemotePort, link);
    }
  }
}

void ShardedMarket::run() {
  const sim::Time end = sim::Time::zero() + config_.run_for;
  exchange::ActivityConfig activity;
  activity.events_per_second = config_.events_per_second;
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    Partition& partition = *partitions_[p];
    partition.exch->start_snapshots();
    partition.norm->join_feeds();
    if (partition.observer) partition.observer->join_feeds();
    partition.driver = std::make_unique<exchange::MarketActivityDriver>(
        *partition.exch, activity, config_.seed + p);
    partition.driver->run_until(end);
  }
  const sim::Time stop = end + config_.drain;
  if (sharded_ != nullptr) {
    sharded_->run_until(stop);
  } else {
    plain_->run_until(stop);
  }
}

std::uint64_t ShardedMarket::digest() {
  Digest d;
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    Partition& partition = *partitions_[p];
    d.mix(p);
    mix_exchange(d, *partition.exch);
    if (partition.driver) {
      const exchange::ActivityStats& a = partition.driver->stats();
      d.mix(a.adds);
      d.mix(a.cancels);
      d.mix(a.replaces);
      d.mix(a.crosses);
      d.mix(partition.driver->resting_orders());
    }
    mix_normalizer(d, *partition.norm);
    mix_bbos(d, *partition.norm, *partition.exch);
    if (partition.observer) {
      const std::size_t source = (p + partitions_.size() - 1) % partitions_.size();
      mix_normalizer(d, *partition.observer);
      mix_bbos(d, *partition.observer, *partitions_[source]->exch);
    }
    mix_switch(d, *partition.xsw);
    mix_fabric(d, partition.fabric);
  }
  return d.hash;
}

void ShardedMarket::register_partition_metrics(std::size_t partition,
                                               telemetry::Registry& registry) {
  Partition& part = *partitions_[partition];
  const std::string prefix = "p" + std::to_string(partition);
  part.exch->register_metrics(registry, prefix + ".exch");
  part.xsw->register_metrics(registry, prefix + ".l2");
  part.norm->register_metrics(registry, prefix + ".norm");
  if (part.observer) part.observer->register_metrics(registry, prefix + ".obs");
  part.fabric.register_metrics(registry, prefix + ".fabric");
}

}  // namespace tsn::deploy
