#include "deploy/multicolo.hpp"

#include <string>

namespace tsn::deploy {

MultiColoDeployment::MultiColoDeployment(MultiColoConfig config)
    : Deployment(config.apps), colo_config_(config) {
  // Addressing: 10.0/16 is the exchange colo, 10.1+/16 the firm's racks.
  auto address = [](std::size_t rack, std::size_t index) {
    return net::Ipv4Addr{10, static_cast<std::uint8_t>(rack), 0,
                         static_cast<std::uint8_t>(index + 1)};
  };
  l2::CommoditySwitchConfig sw_config;
  sw_config.port_count = 40;
  exchange_switch_ =
      std::make_unique<l2::CommoditySwitch>(engine_, "colo-exch-sw", sw_config);
  firm_switch_ = std::make_unique<l2::CommoditySwitch>(engine_, "colo-firm-sw", sw_config);

  // WAN circuit on port 0 of both switches.
  const auto wan_link = wan::wan_link_config(colo_config_.exchange_colo,
                                             colo_config_.firm_colo, colo_config_.wan_tech,
                                             colo_config_.raining);
  fabric_.connect(*exchange_switch_, 0, *firm_switch_, 0, wan_link);
  // The firm side relays IGMP joins toward the exchange colo.
  firm_switch_->set_router_port(0, true);
  // Routes across the WAN.
  exchange_switch_->add_route(net::Ipv4Addr{10, 1, 0, 0}, 8, 0);  // everything firmward
  firm_switch_->add_route(net::Ipv4Addr{10, 0, 0, 0}, 16, 0);     // exchange subnet

  // Applications: same builder conventions as the reference deployments.
  exchange::ExchangeConfig xconfig;
  xconfig.name = "EXCH";
  xconfig.exchange_id = 1;
  for (std::size_t i = 0; i < config_.symbol_count; ++i) {
    xconfig.symbols.push_back({proto::Symbol{"SY" + std::to_string(i)},
                               proto::InstrumentKind::kEquity,
                               proto::price_from_dollars(50.0 + static_cast<double>(i) * 7.0)});
  }
  xconfig.feed_partitioning = std::make_shared<proto::HashPartition>(config_.exchange_units);
  xconfig.feed_mac = net::MacAddr::from_host_id(next_host_id_++);
  xconfig.feed_ip = address(0, 0);
  xconfig.order_mac = net::MacAddr::from_host_id(next_host_id_++);
  xconfig.order_ip = address(0, 1);
  exchange_ = std::make_unique<exchange::Exchange>(engine_, xconfig);

  trading::NormalizerConfig nconfig;
  nconfig.name = "norm";
  nconfig.exchange_id = 1;
  for (std::uint8_t u = 0; u < exchange_->unit_count(); ++u) {
    nconfig.feed_groups.push_back(exchange_->unit_group(u));
  }
  nconfig.feed_port = xconfig.feed_port;
  nconfig.partitioning = std::make_shared<proto::HashPartition>(config_.norm_partitions);
  nconfig.software_latency = config_.software_latency;
  nconfig.in_mac = net::MacAddr::from_host_id(next_host_id_++);
  nconfig.in_ip = address(1, 0);
  nconfig.out_mac = net::MacAddr::from_host_id(next_host_id_++);
  nconfig.out_ip = address(1, 1);
  normalizer_ = std::make_unique<trading::Normalizer>(engine_, nconfig);

  trading::GatewayConfig gconfig;
  gconfig.name = "gw";
  gconfig.exchange_mac = xconfig.order_mac;
  gconfig.exchange_ip = xconfig.order_ip;
  gconfig.exchange_port = xconfig.order_port;
  gconfig.software_latency = config_.software_latency;
  gconfig.client_mac = net::MacAddr::from_host_id(next_host_id_++);
  gconfig.client_ip = address(3, 0);
  gconfig.upstream_mac = net::MacAddr::from_host_id(next_host_id_++);
  gconfig.upstream_ip = address(3, 1);
  gateway_ = std::make_unique<trading::Gateway>(engine_, gconfig);

  for (std::size_t s = 0; s < config_.strategy_count; ++s) {
    trading::StrategyConfig sconfig;
    sconfig.name = "strat" + std::to_string(s);
    for (std::uint32_t p = 0; p < config_.norm_partitions; ++p) {
      sconfig.subscriptions.push_back(normalizer_->partition_group(p));
    }
    sconfig.norm_port = nconfig.out_port;
    sconfig.gateway_mac = gconfig.client_mac;
    sconfig.gateway_ip = gconfig.client_ip;
    sconfig.gateway_port = gconfig.listen_port;
    sconfig.decision_latency = config_.decision_latency;
    sconfig.software_latency = config_.software_latency;
    sconfig.md_mac = net::MacAddr::from_host_id(next_host_id_++);
    sconfig.md_ip = address(2, 2 * s);
    sconfig.order_mac = net::MacAddr::from_host_id(next_host_id_++);
    sconfig.order_ip = address(2, 2 * s + 1);
    strategies_.push_back(std::make_unique<trading::MomentumTaker>(
        engine_, sconfig, config_.momentum_tick, 100));
  }

  // Wiring: exchange NICs in colo A; the firm's stack in colo B.
  net::LinkConfig access;  // 10 GbE intra-colo defaults
  net::PortId exch_port = 1;
  auto attach_exchange_side = [&](net::Nic& nic) {
    fabric_.connect(*exchange_switch_, exch_port, nic, 0, access);
    exchange_switch_->bind_host(nic.ip(), nic.mac(), exch_port);
    ++exch_port;
  };
  net::PortId firm_port = 1;
  auto attach_firm_side = [&](net::Nic& nic) {
    fabric_.connect(*firm_switch_, firm_port, nic, 0, access);
    firm_switch_->bind_host(nic.ip(), nic.mac(), firm_port);
    ++firm_port;
  };
  attach_exchange_side(exchange_->feed_nic());
  attach_exchange_side(exchange_->order_nic());
  attach_firm_side(normalizer_->in_nic());
  attach_firm_side(normalizer_->out_nic());
  for (auto& strategy : strategies_) {
    attach_firm_side(strategy->md_nic());
    attach_firm_side(strategy->order_nic());
  }
  attach_firm_side(gateway_->client_nic());
  attach_firm_side(gateway_->upstream_nic());
}

}  // namespace tsn::deploy
