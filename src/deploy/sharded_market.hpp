// Multi-partition market deployment for the sharded simulation engine.
//
// Each partition is a self-contained market region — exchange, activity
// driver, A-feed switch, and a local normalizer — plus an *observer*
// normalizer that consumes the previous partition's feed, so market data
// crosses partition boundaries in a ring. The rig builds in two modes over
// byte-identical component wiring:
//
//   * plain:   every partition schedules on one `sim::Engine`; the
//              cross-partition feed rides an ordinary local link.
//   * sharded: partition p lives on `ShardedEngine::domain(p)`; the
//              cross-partition feed rides a bridged remote link
//              (net/bridge.hpp), whose propagation delay bounds the
//              engine's conservative lookahead.
//
// Because the link model runs identically up to the delivery hop and the
// bridged rebuild preserves frame bytes, id, and origin timestamp, the two
// modes — and golden vs windowed execution at any worker count — converge
// to the same end state. `digest()` folds every partition's books, stats,
// and counters into one value so drills can assert exactly that.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exchange/activity.hpp"
#include "exchange/exchange.hpp"
#include "l2/commodity_switch.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/sharded_engine.hpp"
#include "telemetry/metrics.hpp"
#include "trading/normalizer.hpp"

namespace tsn::deploy {

struct ShardedMarketConfig {
  std::uint16_t partitions = 4;
  std::uint64_t seed = 7;
  double events_per_second = 20'000.0;
  sim::Duration run_for = sim::millis(std::int64_t{50});
  // Extra engine time past the last market event so in-flight datagrams and
  // timers drain deterministically.
  sim::Duration drain = sim::millis(std::int64_t{5});
  // One-way delay of the inter-partition links. This is the sharded
  // engine's lookahead, so it trades realism against window count: a metro
  // cross-connect's microseconds already buy generous parallel windows.
  sim::Duration cross_propagation = sim::micros(std::int64_t{5});
};

class ShardedMarket {
 public:
  // Plain build: all partitions on one engine, cross links local.
  ShardedMarket(sim::Engine& engine, const ShardedMarketConfig& config);
  // Sharded build: partition p on engine.domain(p); requires
  // engine.domain_count() >= config.partitions. Cross links are bridged.
  ShardedMarket(sim::ShardedEngine& engine, const ShardedMarketConfig& config);
  ShardedMarket(const ShardedMarket&) = delete;
  ShardedMarket& operator=(const ShardedMarket&) = delete;

  // Starts snapshots, feed joins, and activity drivers, then runs the
  // engine through run_for + drain.
  void run();

  // FNV-1a over every partition's end state: exchange/activity/normalizer/
  // observer/switch/fabric counters and full book summaries. Two runs that
  // executed the same events in an equivalent order agree exactly.
  [[nodiscard]] std::uint64_t digest();

  // Exports partition p's component gauges under "p<p>.<component>".
  // Registered on a caller-owned registry so determinism drills can diff
  // the JSON snapshots of independent runs byte-for-byte.
  void register_partition_metrics(std::size_t partition, telemetry::Registry& registry);

  [[nodiscard]] std::uint16_t partition_count() const noexcept {
    return config_.partitions;
  }
  [[nodiscard]] exchange::Exchange& exch(std::size_t partition) noexcept {
    return *partitions_[partition]->exch;
  }
  [[nodiscard]] trading::Normalizer& norm(std::size_t partition) noexcept {
    return *partitions_[partition]->norm;
  }
  // The observer consuming partition ((p + n - 1) % n)'s feed; null when
  // the deployment has a single partition (no ring).
  [[nodiscard]] trading::Normalizer* observer(std::size_t partition) noexcept {
    return partitions_[partition]->observer.get();
  }
  [[nodiscard]] l2::CommoditySwitch& xsw(std::size_t partition) noexcept {
    return *partitions_[partition]->xsw;
  }

 private:
  static constexpr net::PortId kIngressPort = 0;  // exchange feed in
  static constexpr net::PortId kLocalPort = 1;    // local normalizer
  static constexpr net::PortId kRemotePort = 2;   // next partition's observer

  struct Partition {
    explicit Partition(sim::Scheduler& scheduler) : fabric(scheduler) {}
    net::Fabric fabric;
    std::unique_ptr<exchange::Exchange> exch;
    std::unique_ptr<l2::CommoditySwitch> xsw;
    std::unique_ptr<trading::Normalizer> norm;
    std::unique_ptr<trading::Normalizer> observer;
    std::unique_ptr<exchange::MarketActivityDriver> driver;
  };

  void build_partition(std::size_t p, sim::Scheduler& scheduler);
  void wire_cross_links();

  ShardedMarketConfig config_;
  sim::Engine* plain_ = nullptr;
  sim::ShardedEngine* sharded_ = nullptr;
  std::vector<std::unique_ptr<Partition>> partitions_;
};

}  // namespace tsn::deploy
