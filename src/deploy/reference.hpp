// Reference deployments: the full §2 application stack (exchange with
// matching engine and PITCH feed, normalizers, strategies, gateway) wired
// onto each §4 network design, ready to run. Benches and examples build on
// these instead of re-wiring the pipeline by hand.
#pragma once

#include <memory>
#include <vector>

#include "exchange/activity.hpp"
#include "exchange/exchange.hpp"
#include "sim/engine.hpp"
#include "topo/leaf_spine.hpp"
#include "topo/quad_l1s.hpp"
#include "trading/gateway.hpp"
#include "trading/normalizer.hpp"
#include "trading/strategy.hpp"

namespace tsn::deploy {

struct DeploymentConfig {
  std::size_t strategy_count = 4;
  std::size_t symbol_count = 8;
  std::uint32_t norm_partitions = 4;
  std::uint8_t exchange_units = 2;
  double events_per_second = 40'000.0;
  std::uint64_t seed = 17;
  // Strategy behaviour.
  proto::Price momentum_tick = 100;
  sim::Duration decision_latency = sim::micros(std::int64_t{2});
  sim::Duration software_latency = sim::nanos(std::int64_t{900});
};

struct DeploymentReport {
  std::uint64_t feed_datagrams = 0;
  std::uint64_t feed_messages = 0;
  std::uint64_t normalized_updates = 0;
  std::uint64_t sequence_gaps = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t orders_sent = 0;
  std::uint64_t acks = 0;
  std::uint64_t fills = 0;
  telemetry::Histogram tick_to_trade_ns;    // across all strategies
  telemetry::Histogram order_rtt_ns;        // order -> exchange ack
  telemetry::Histogram feed_path_ns;        // exchange event -> strategy NIC
  std::uint64_t frames_dropped = 0;
};

// Shared base: owns the engine, the application boxes, and the activity
// driver; subclasses wire the boxes onto a specific fabric.
class Deployment {
 public:
  virtual ~Deployment() = default;

  // Starts joins/handshakes/logins and lets them settle.
  void start();
  // Runs background market activity for the given duration (drains the
  // event queue afterwards — unsuitable when periodic services like IGMP
  // queriers or snapshot channels are running).
  void run(sim::Duration duration);
  // Runs market activity for `activity`, then a `drain` window, advancing
  // the clock with run_until so perpetual services don't wedge the run.
  void run_bounded(sim::Duration activity, sim::Duration drain = sim::millis(std::int64_t{5}));

  [[nodiscard]] DeploymentReport report() const;

  // Registers every box's metrics (exchange, normalizer, gateway,
  // strategies, fabric aggregate) plus fabric-specific switch metrics in
  // subclasses. One call gives a run a full observability surface.
  virtual void register_metrics(telemetry::Registry& registry) const;

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] exchange::Exchange& exchange() noexcept { return *exchange_; }
  [[nodiscard]] trading::Normalizer& normalizer() noexcept { return *normalizer_; }
  [[nodiscard]] trading::Gateway& gateway() noexcept { return *gateway_; }
  [[nodiscard]] trading::Strategy& strategy(std::size_t i) { return *strategies_.at(i); }
  [[nodiscard]] std::size_t strategy_count() const noexcept { return strategies_.size(); }
  [[nodiscard]] net::Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] const DeploymentConfig& config() const noexcept { return config_; }

 protected:
  explicit Deployment(DeploymentConfig config);

  sim::Engine engine_;
  net::Fabric fabric_{engine_};
  DeploymentConfig config_;
  std::unique_ptr<exchange::Exchange> exchange_;
  std::unique_ptr<trading::Normalizer> normalizer_;
  std::unique_ptr<trading::Gateway> gateway_;
  std::vector<std::unique_ptr<trading::MomentumTaker>> strategies_;
  std::unique_ptr<exchange::MarketActivityDriver> driver_;
  std::uint32_t next_host_id_ = 5000;
};

// Design 1: the stack on a leaf-spine fabric, functions grouped by rack
// (exchange ToR = rack 0, normalizers rack 1, strategies rack 2, gateways
// rack 3) — the placement that yields the paper's 12-switch-hop round trip.
class LeafSpineDeployment final : public Deployment {
 public:
  explicit LeafSpineDeployment(DeploymentConfig config = {},
                               topo::LeafSpineConfig topo_config = default_topo());

  [[nodiscard]] topo::LeafSpineFabric& topology() noexcept { return *topo_; }

  [[nodiscard]] static topo::LeafSpineConfig default_topo();

  // Base metrics plus every leaf/spine switch (including mroute tables).
  void register_metrics(telemetry::Registry& registry) const override;

 private:
  std::unique_ptr<topo::LeafSpineFabric> topo_;
};

// Design 3: the stack on four L1S circuit fabrics. The normalized feed
// fans out to every strategy; strategies merge onto the gateway port (the
// order-aggregation mux). Merge-contention behaviour under wider merges is
// exercised by the D3 bench directly against Layer1Switch.
class QuadL1sDeployment final : public Deployment {
 public:
  explicit QuadL1sDeployment(DeploymentConfig config = {},
                             topo::QuadL1Config topo_config = topo::QuadL1Config{});

  [[nodiscard]] topo::QuadL1Fabric& topology() noexcept { return *topo_; }

  // Base metrics plus the four stage switches.
  void register_metrics(telemetry::Registry& registry) const override;

 private:
  std::unique_ptr<topo::QuadL1Fabric> topo_;
};

}  // namespace tsn::deploy
