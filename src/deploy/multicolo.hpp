// Multi-colo deployment (§2): the exchange lives in one co-location
// facility, the trading firm's stack in another, tens of miles away. The
// feed and order paths cross a private WAN circuit — fiber or microwave —
// so the deployment exposes exactly the trade the paper describes: the
// microwave path is hundreds of microseconds faster but rain-faded and
// thin; the fiber path is slower but clean.
#pragma once

#include <memory>

#include "deploy/reference.hpp"
#include "l2/commodity_switch.hpp"
#include "wan/metro.hpp"

namespace tsn::deploy {

struct MultiColoConfig {
  DeploymentConfig apps;
  wan::Colo exchange_colo = wan::Colo::kCarteret;
  wan::Colo firm_colo = wan::Colo::kSecaucus;
  wan::LinkTech wan_tech = wan::LinkTech::kMicrowave;
  bool raining = false;
};

class MultiColoDeployment final : public Deployment {
 public:
  explicit MultiColoDeployment(MultiColoConfig config);

  [[nodiscard]] l2::CommoditySwitch& exchange_switch() noexcept { return *exchange_switch_; }
  [[nodiscard]] l2::CommoditySwitch& firm_switch() noexcept { return *firm_switch_; }
  [[nodiscard]] const MultiColoConfig& colo_config() const noexcept { return colo_config_; }
  // One-way WAN propagation for the configured technology.
  [[nodiscard]] sim::Duration wan_delay() const noexcept {
    return wan::propagation_delay(colo_config_.exchange_colo, colo_config_.firm_colo,
                                  colo_config_.wan_tech);
  }

 private:
  MultiColoConfig colo_config_;
  std::unique_ptr<l2::CommoditySwitch> exchange_switch_;
  std::unique_ptr<l2::CommoditySwitch> firm_switch_;
};

}  // namespace tsn::deploy
