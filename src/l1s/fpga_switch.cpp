#include "l1s/fpga_switch.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/trace.hpp"

namespace tsn::l1s {

FpgaSwitch::FpgaSwitch(sim::Scheduler& engine, std::string name, FpgaSwitchConfig config)
    : engine_(engine),
      name_(std::move(name)),
      config_(config),
      egress_(config.port_count, nullptr),
      ingress_filters_(config.port_count) {}

void FpgaSwitch::attach_port(net::PortId port, net::Link& egress) noexcept {
  if (port < egress_.size()) egress_[port] = &egress;
}

bool FpgaSwitch::join_group(net::Ipv4Addr group, net::PortId port) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    if (groups_.size() >= config_.group_table_capacity) return false;
    it = groups_.emplace(group, std::vector<net::PortId>{}).first;
  }
  if (std::find(it->second.begin(), it->second.end(), port) == it->second.end()) {
    it->second.push_back(port);
  }
  return true;
}

void FpgaSwitch::leave_group(net::Ipv4Addr group, net::PortId port) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  std::erase(it->second, port);
  if (it->second.empty()) groups_.erase(it);
}

void FpgaSwitch::add_ingress_filter(net::PortId port, net::Ipv4Addr first, net::Ipv4Addr last) {
  ingress_filters_.at(port).push_back(Range{first.value(), last.value()});
}

void FpgaSwitch::clear_ingress_filters(net::PortId port) { ingress_filters_.at(port).clear(); }

bool FpgaSwitch::passes_filter(net::PortId port, net::Ipv4Addr group) const noexcept {
  const auto& ranges = ingress_filters_[port];
  if (ranges.empty()) return true;
  return std::any_of(ranges.begin(), ranges.end(), [&](const Range& r) {
    return group.value() >= r.first && group.value() <= r.last;
  });
}

void FpgaSwitch::receive(const net::PacketPtr& packet, net::PortId in_port) {
  auto frame = net::decode_frame(packet->frame());
  if (!frame || !frame->ip || !frame->ip->dst.is_multicast()) {
    // The FPGA fabric here is multicast-only (the quad networks of §4.3
    // carry feeds); anything else is dropped.
    ++stats_.no_group_drops;
    return;
  }
  const net::Ipv4Addr group = frame->ip->dst;
  if (in_port >= ingress_filters_.size() || !passes_filter(in_port, group)) {
    ++stats_.frames_filtered;
    return;
  }
  const auto it = groups_.find(group);
  if (it == groups_.end()) {
    ++stats_.no_group_drops;
    return;
  }
  ++stats_.frames_forwarded;
  auto self = this;
  const sim::Time rx = engine_.now();
  for (net::PortId out : it->second) {
    if (out == in_port || out >= egress_.size() || egress_[out] == nullptr) continue;
    ++stats_.replications;
    net::Link* link = egress_[out];
    engine_.schedule_in(config_.forwarding_latency, [self, link, packet, rx] {
      telemetry::record_span(packet->trace(), self->name_, telemetry::SpanKind::kL1sFanout, rx,
                             self->engine_.now());
      link->transmit(packet);
    });
  }
}

}  // namespace tsn::l1s
