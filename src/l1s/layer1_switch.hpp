// Layer-1 switches (§4.3).
//
// An L1S is essentially a crossbar of circuits: any input port can be
// patched to any set of output ports with 5-6 ns of latency. It performs no
// packet classification, no filtering, and no multipath — it never looks at
// the bytes. Two additional capabilities the paper highlights:
//  - merging: several inputs can be patched onto one output through a mux
//    stage, at the cost of ~50 ns extra latency — and of contention, since
//    the output serializes whatever arrives (bursts on merged feeds queue or
//    drop at the egress link, §4.3's central caveat);
//  - hardware timestamping: every ingress frame can be stamped with the
//    arrival time at full precision.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "sim/scheduler.hpp"
#include "sim/random.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::l1s {

struct L1SwitchConfig {
  std::size_t port_count = 32;
  // Input-to-output circuit latency.
  sim::Duration fanout_latency = sim::nanos(std::int64_t{6});
  // Extra latency when the output is a merge (mux) of several inputs.
  sim::Duration merge_latency = sim::nanos(std::int64_t{50});
};

struct L1Stats {
  std::uint64_t frames_forwarded = 0;
  std::uint64_t frames_unpatched = 0;  // arrived on a port with no circuit
  std::uint64_t merged_frames = 0;     // frames that crossed a mux stage
  std::uint64_t admin_down_drops = 0;  // fault injection: received while down
  std::uint64_t fault_loss_drops = 0;  // fault injection: loss override
};

class Layer1Switch final : public net::PortedDevice, public net::FaultHook {
 public:
  // Callback invoked for every ingress frame with the hardware timestamp.
  using TimestampHook =
      std::function<void(const net::PacketPtr&, net::PortId in_port, sim::Time at)>;

  Layer1Switch(sim::Scheduler& engine, std::string name, L1SwitchConfig config);

  void attach_port(net::PortId port, net::Link& egress) noexcept override;

  // Patches a circuit from `in` to `out`. A given input may feed many
  // outputs (fan-out); a given output may be fed by many inputs (merge).
  void patch(net::PortId in, net::PortId out);
  void unpatch(net::PortId in, net::PortId out);
  [[nodiscard]] bool is_merge_output(net::PortId out) const noexcept;
  [[nodiscard]] std::size_t circuit_count() const noexcept;

  void set_timestamp_hook(TimestampHook hook) { timestamp_hook_ = std::move(hook); }

  // FaultHook: an L1S has no buffering, so admin-down simply goes dark and a
  // loss override models a degraded optical path through the crossbar.
  void set_admin_up(bool up) noexcept override { admin_up_ = up; }
  [[nodiscard]] bool admin_up() const noexcept override { return admin_up_; }
  void set_loss_override(double probability) noexcept override {
    loss_override_ = probability;
  }
  [[nodiscard]] double loss_override() const noexcept override { return loss_override_; }
  void seed_fault_loss(std::uint64_t seed) noexcept { fault_rng_ = sim::Rng{seed}; }

  void receive(const net::PacketPtr& packet, net::PortId in_port) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] const L1Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const L1SwitchConfig& config() const noexcept { return config_; }

  // Registers forwarding counters as gauges under "<prefix>.<name>".
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const {
    const std::string base = prefix + "." + name_;
    registry.gauge(base + ".frames_forwarded",
                   [this] { return static_cast<double>(stats_.frames_forwarded); });
    registry.gauge(base + ".frames_unpatched",
                   [this] { return static_cast<double>(stats_.frames_unpatched); });
    registry.gauge(base + ".merged_frames",
                   [this] { return static_cast<double>(stats_.merged_frames); });
    registry.gauge(base + ".circuits",
                   [this] { return static_cast<double>(circuit_count()); });
    registry.gauge(base + ".admin_down_drops",
                   [this] { return static_cast<double>(stats_.admin_down_drops); });
    registry.gauge(base + ".fault_loss_drops",
                   [this] { return static_cast<double>(stats_.fault_loss_drops); });
  }

 private:
  sim::Scheduler& engine_;
  std::string name_;
  L1SwitchConfig config_;
  std::vector<net::Link*> egress_;
  std::vector<std::vector<net::PortId>> patch_map_;  // in-port -> out-ports
  std::vector<std::uint32_t> feeders_;               // out-port -> #inputs patched to it
  TimestampHook timestamp_hook_;
  L1Stats stats_;
  bool admin_up_ = true;
  double loss_override_ = -1.0;
  sim::Rng fault_rng_{0x11517a05};
};

}  // namespace tsn::l1s
