// Layer-1 switches (§4.3).
//
// An L1S is essentially a crossbar of circuits: any input port can be
// patched to any set of output ports with 5-6 ns of latency. It performs no
// packet classification, no filtering, and no multipath — it never looks at
// the bytes. Two additional capabilities the paper highlights:
//  - merging: several inputs can be patched onto one output through a mux
//    stage, at the cost of ~50 ns extra latency — and of contention, since
//    the output serializes whatever arrives (bursts on merged feeds queue or
//    drop at the egress link, §4.3's central caveat);
//  - hardware timestamping: every ingress frame can be stamped with the
//    arrival time at full precision.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::l1s {

struct L1SwitchConfig {
  std::size_t port_count = 32;
  // Input-to-output circuit latency.
  sim::Duration fanout_latency = sim::nanos(std::int64_t{6});
  // Extra latency when the output is a merge (mux) of several inputs.
  sim::Duration merge_latency = sim::nanos(std::int64_t{50});
};

struct L1Stats {
  std::uint64_t frames_forwarded = 0;
  std::uint64_t frames_unpatched = 0;  // arrived on a port with no circuit
  std::uint64_t merged_frames = 0;     // frames that crossed a mux stage
};

class Layer1Switch final : public net::PortedDevice {
 public:
  // Callback invoked for every ingress frame with the hardware timestamp.
  using TimestampHook =
      std::function<void(const net::PacketPtr&, net::PortId in_port, sim::Time at)>;

  Layer1Switch(sim::Engine& engine, std::string name, L1SwitchConfig config);

  void attach_port(net::PortId port, net::Link& egress) noexcept override;

  // Patches a circuit from `in` to `out`. A given input may feed many
  // outputs (fan-out); a given output may be fed by many inputs (merge).
  void patch(net::PortId in, net::PortId out);
  void unpatch(net::PortId in, net::PortId out);
  [[nodiscard]] bool is_merge_output(net::PortId out) const noexcept;
  [[nodiscard]] std::size_t circuit_count() const noexcept;

  void set_timestamp_hook(TimestampHook hook) { timestamp_hook_ = std::move(hook); }

  void receive(const net::PacketPtr& packet, net::PortId in_port) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] const L1Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const L1SwitchConfig& config() const noexcept { return config_; }

  // Registers forwarding counters as gauges under "<prefix>.<name>".
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const {
    const std::string base = prefix + "." + name_;
    registry.gauge(base + ".frames_forwarded",
                   [this] { return static_cast<double>(stats_.frames_forwarded); });
    registry.gauge(base + ".frames_unpatched",
                   [this] { return static_cast<double>(stats_.frames_unpatched); });
    registry.gauge(base + ".merged_frames",
                   [this] { return static_cast<double>(stats_.merged_frames); });
    registry.gauge(base + ".circuits",
                   [this] { return static_cast<double>(circuit_count()); });
  }

 private:
  sim::Engine& engine_;
  std::string name_;
  L1SwitchConfig config_;
  std::vector<net::Link*> egress_;
  std::vector<std::vector<net::PortId>> patch_map_;  // in-port -> out-ports
  std::vector<std::uint32_t> feeders_;               // out-port -> #inputs patched to it
  TimestampHook timestamp_hook_;
  L1Stats stats_;
};

}  // namespace tsn::l1s
