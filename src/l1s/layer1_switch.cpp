#include "l1s/layer1_switch.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/check.hpp"
#include "telemetry/trace.hpp"

namespace tsn::l1s {

Layer1Switch::Layer1Switch(sim::Scheduler& engine, std::string name, L1SwitchConfig config)
    : engine_(engine),
      name_(std::move(name)),
      config_(config),
      egress_(config.port_count, nullptr),
      patch_map_(config.port_count),
      feeders_(config.port_count, 0) {
  TSN_ASSERT(config.port_count > 0, "a layer-1 switch needs at least one port");
}

void Layer1Switch::attach_port(net::PortId port, net::Link& egress) noexcept {
  if (port < egress_.size()) egress_[port] = &egress;
}

void Layer1Switch::patch(net::PortId in, net::PortId out) {
  if (in >= patch_map_.size() || out >= egress_.size()) {
    throw std::out_of_range{"L1S port out of range"};
  }
  auto& outs = patch_map_[in];
  if (std::find(outs.begin(), outs.end(), out) != outs.end()) return;
  outs.push_back(out);
  ++feeders_[out];
  TSN_DCHECK(feeders_[out] <= patch_map_.size(),
             "an output cannot have more feeders than there are input ports");
}

void Layer1Switch::unpatch(net::PortId in, net::PortId out) {
  if (in >= patch_map_.size() || out >= egress_.size()) return;
  auto& outs = patch_map_[in];
  const auto it = std::find(outs.begin(), outs.end(), out);
  if (it == outs.end()) return;
  outs.erase(it);
  TSN_DCHECK(feeders_[out] > 0, "a tracked circuit implies a feeder on its output");
  if (feeders_[out] > 0) --feeders_[out];
}

bool Layer1Switch::is_merge_output(net::PortId out) const noexcept {
  return out < feeders_.size() && feeders_[out] > 1;
}

std::size_t Layer1Switch::circuit_count() const noexcept {
  std::size_t count = 0;
  for (const auto& outs : patch_map_) count += outs.size();
  return count;
}

void Layer1Switch::receive(const net::PacketPtr& packet, net::PortId in_port) {
  TSN_DCHECK(egress_.size() == patch_map_.size() && egress_.size() == feeders_.size(),
             "patch tables must stay sized to the configured port count");
  if (timestamp_hook_) timestamp_hook_(packet, in_port, engine_.now());
  if (!admin_up_) {
    ++stats_.admin_down_drops;
    return;
  }
  if (loss_override_ > 0.0 && fault_rng_.bernoulli(loss_override_)) {
    ++stats_.fault_loss_drops;
    return;
  }
  if (in_port >= patch_map_.size() || patch_map_[in_port].empty()) {
    ++stats_.frames_unpatched;
    return;
  }
  auto self = this;
  const sim::Time rx = engine_.now();
  for (net::PortId out : patch_map_[in_port]) {
    net::Link* link = egress_[out];
    if (link == nullptr) continue;
    const bool merged = feeders_[out] > 1;
    const sim::Duration delay =
        config_.fanout_latency + (merged ? config_.merge_latency : sim::Duration::zero());
    ++stats_.frames_forwarded;
    if (merged) ++stats_.merged_frames;
    engine_.schedule_in(delay, [self, link, packet, rx, merged] {
      telemetry::record_span(packet->trace(), self->name_,
                             merged ? telemetry::SpanKind::kL1sMerge
                                    : telemetry::SpanKind::kL1sFanout,
                             rx, self->engine_.now());
      link->transmit(packet);
    });
  }
}

}  // namespace tsn::l1s
