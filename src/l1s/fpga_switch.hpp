// FPGA-augmented Layer-1 switch (§5, Hardware).
//
// The paper's future-work direction: reconfigurable hardware added to an
// L1S gives ~100 ns latency *with* standard IP forwarding and multicast —
// "the best of both worlds" — but with small forwarding tables. This device
// implements exactly that envelope:
//  - fixed ~100 ns pipeline latency;
//  - IP multicast with a small, strictly bounded group table — joins beyond
//    capacity are *rejected* (there is no software fallback on an FPGA);
//  - per-port ingress filtering on multicast group ranges, the "filtering
//    and splitting feeds" capability §5 proposes, which lets merged feeds
//    stay within output bandwidth.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "net/headers.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::l1s {

struct FpgaSwitchConfig {
  std::size_t port_count = 32;
  sim::Duration forwarding_latency = sim::nanos(std::int64_t{100});
  // Hard ceiling on multicast groups — small, as §5 warns.
  std::size_t group_table_capacity = 96;
};

struct FpgaStats {
  std::uint64_t frames_forwarded = 0;
  std::uint64_t frames_filtered = 0;
  std::uint64_t no_group_drops = 0;
  std::uint64_t replications = 0;
};

class FpgaSwitch final : public net::PortedDevice {
 public:
  FpgaSwitch(sim::Scheduler& engine, std::string name, FpgaSwitchConfig config);

  void attach_port(net::PortId port, net::Link& egress) noexcept override;

  // Programs a multicast delivery: frames to `group` go out of `port`.
  // Returns false (and programs nothing) when the group table is full.
  [[nodiscard]] bool join_group(net::Ipv4Addr group, net::PortId port);
  void leave_group(net::Ipv4Addr group, net::PortId port);
  [[nodiscard]] std::size_t group_count() const noexcept { return groups_.size(); }

  // Ingress filter: only multicast groups within [first, last] are accepted
  // on `port`; everything else is dropped at line rate. Multiple ranges may
  // be added; no ranges means accept-all.
  void add_ingress_filter(net::PortId port, net::Ipv4Addr first, net::Ipv4Addr last);
  void clear_ingress_filters(net::PortId port);

  void receive(const net::PacketPtr& packet, net::PortId in_port) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] const FpgaStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FpgaSwitchConfig& config() const noexcept { return config_; }

  // Registers forwarding/filter gauges under "<prefix>.<name>".
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const {
    const std::string base = prefix + "." + name_;
    registry.gauge(base + ".frames_forwarded",
                   [this] { return static_cast<double>(stats_.frames_forwarded); });
    registry.gauge(base + ".frames_filtered",
                   [this] { return static_cast<double>(stats_.frames_filtered); });
    registry.gauge(base + ".no_group_drops",
                   [this] { return static_cast<double>(stats_.no_group_drops); });
    registry.gauge(base + ".replications",
                   [this] { return static_cast<double>(stats_.replications); });
    registry.gauge(base + ".groups", [this] { return static_cast<double>(groups_.size()); });
  }

 private:
  struct Range {
    std::uint32_t first = 0;
    std::uint32_t last = 0;
  };

  [[nodiscard]] bool passes_filter(net::PortId port, net::Ipv4Addr group) const noexcept;

  sim::Scheduler& engine_;
  std::string name_;
  FpgaSwitchConfig config_;
  std::vector<net::Link*> egress_;
  std::unordered_map<net::Ipv4Addr, std::vector<net::PortId>> groups_;
  std::vector<std::vector<Range>> ingress_filters_;
  FpgaStats stats_;
};

}  // namespace tsn::l1s
