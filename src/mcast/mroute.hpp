// The switch-resident multicast route ("mroute") table.
//
// The paper (§3, Multicast Trends) describes the central pain point this
// module models: switch ASICs hold mroute state in dedicated, fixed-size
// memory; when the table overflows, the switch falls back to software
// forwarding, "which cripples performance and induces heavy packet loss."
// `MrouteTable` therefore tracks, per group, whether the entry fit in the
// hardware table; the switch charges a much larger forwarding latency (and
// a loss probability) to groups relegated to the software path.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.hpp"
#include "net/device.hpp"
#include "telemetry/metrics.hpp"

namespace tsn::mcast {

struct MrouteStats {
  std::uint64_t hardware_hits = 0;
  std::uint64_t software_hits = 0;
  std::uint64_t misses = 0;      // lookups for groups with no receivers
  std::uint64_t evictions = 0;   // entries removed by fault injection
};

class MrouteTable {
 public:
  // `hardware_capacity` is the number of groups the ASIC table can hold.
  explicit MrouteTable(std::size_t hardware_capacity) noexcept
      : hardware_capacity_(hardware_capacity) {}

  // Adds `port` to the group's egress set, creating the entry if needed.
  // New entries take a hardware slot if one is free, else live in software.
  void join(net::Ipv4Addr group, net::PortId port);

  // Removes `port`; the entry disappears with its last port. Freed hardware
  // slots are re-used by the next new entry (no automatic promotion —
  // matching observed ASIC behaviour where software entries stay slow until
  // re-programmed).
  void leave(net::Ipv4Addr group, net::PortId port);

  struct Lookup {
    const std::vector<net::PortId>* ports = nullptr;  // nullptr if no entry
    bool hardware = false;
  };

  // Looks up egress ports, recording hit statistics.
  [[nodiscard]] Lookup lookup(net::Ipv4Addr group);

  [[nodiscard]] std::size_t group_count() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t hardware_group_count() const noexcept { return hardware_used_; }
  [[nodiscard]] std::size_t software_group_count() const noexcept {
    return entries_.size() - hardware_used_;
  }
  [[nodiscard]] std::size_t hardware_capacity() const noexcept { return hardware_capacity_; }
  [[nodiscard]] bool overflowed() const noexcept { return entries_.size() > hardware_used_; }
  [[nodiscard]] const MrouteStats& stats() const noexcept { return stats_; }

  // Operator action: clears and re-programs every entry, refilling the
  // hardware table in group order (what "re-provisioning the switch" does).
  void reprogram();

  // Fault injection: drops the group's entry outright — table corruption or
  // exhaustion-driven reprogramming silently black-holing subscribers (§3).
  // The group stays dark until a fresh IGMP report re-installs it. Returns
  // false when the group had no entry.
  bool evict(net::Ipv4Addr group);

  // Exposes table occupancy and hit counters as gauges under `prefix`.
  // Lookup itself stays uninstrumented — it sits on the X1 hot path; the
  // hw/sw split is observable from these counters instead.
  void register_metrics(telemetry::Registry& registry, const std::string& prefix) const {
    registry.gauge(prefix + ".groups", [this] { return static_cast<double>(group_count()); });
    registry.gauge(prefix + ".hardware_groups",
                   [this] { return static_cast<double>(hardware_group_count()); });
    registry.gauge(prefix + ".software_groups",
                   [this] { return static_cast<double>(software_group_count()); });
    registry.gauge(prefix + ".hardware_hits",
                   [this] { return static_cast<double>(stats_.hardware_hits); });
    registry.gauge(prefix + ".software_hits",
                   [this] { return static_cast<double>(stats_.software_hits); });
    registry.gauge(prefix + ".misses", [this] { return static_cast<double>(stats_.misses); });
    registry.gauge(prefix + ".evictions",
                   [this] { return static_cast<double>(stats_.evictions); });
  }

 private:
  struct Entry {
    std::vector<net::PortId> ports;
    bool hardware = false;
  };

  std::size_t hardware_capacity_;
  std::size_t hardware_used_ = 0;
  std::unordered_map<net::Ipv4Addr, Entry> entries_;
  MrouteStats stats_;
};

}  // namespace tsn::mcast
