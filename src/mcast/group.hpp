// Multicast group addressing and allocation.
//
// Exchanges partition their feeds across many multicast groups, and trading
// firms re-partition normalized data across many more (§2, §3). The
// allocator hands out groups from an administratively-scoped range, one
// block per feed, so group assignments are stable and readable in logs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "net/addr.hpp"

namespace tsn::mcast {

// Allocates consecutive groups from 239.x.y.z (administratively scoped).
class GroupAllocator {
 public:
  // `base` must be a multicast address; blocks are carved after it.
  explicit GroupAllocator(net::Ipv4Addr base = net::Ipv4Addr{239, 1, 0, 0})
      : base_(base), next_(base.value()) {
    if (!base.is_multicast()) throw std::invalid_argument{"base must be multicast"};
  }

  // Reserves `count` consecutive groups under `label` and returns the first.
  net::Ipv4Addr allocate_block(const std::string& label, std::uint32_t count) {
    if (count == 0) throw std::invalid_argument{"empty block"};
    const net::Ipv4Addr first{next_};
    if (!net::Ipv4Addr{next_ + count - 1}.is_multicast()) {
      throw std::length_error{"multicast range exhausted"};
    }
    blocks_.emplace(label, Block{first, count});
    next_ += count;
    return first;
  }

  struct Block {
    net::Ipv4Addr first;
    std::uint32_t count = 0;

    [[nodiscard]] net::Ipv4Addr group(std::uint32_t index) const {
      if (index >= count) throw std::out_of_range{"group index outside block"};
      return net::Ipv4Addr{first.value() + index};
    }
    [[nodiscard]] bool contains(net::Ipv4Addr g) const noexcept {
      return g.value() >= first.value() && g.value() < first.value() + count;
    }
    [[nodiscard]] std::uint32_t index_of(net::Ipv4Addr g) const {
      if (!contains(g)) throw std::out_of_range{"group outside block"};
      return g.value() - first.value();
    }
  };

  [[nodiscard]] const Block& block(const std::string& label) const { return blocks_.at(label); }
  [[nodiscard]] bool has_block(const std::string& label) const {
    return blocks_.contains(label);
  }
  [[nodiscard]] std::uint32_t total_allocated() const noexcept { return next_ - base_.value(); }

 private:
  net::Ipv4Addr base_;
  std::uint32_t next_;
  std::unordered_map<std::string, Block> blocks_;
};

}  // namespace tsn::mcast
