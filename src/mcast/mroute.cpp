#include "mcast/mroute.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace tsn::mcast {

void MrouteTable::join(net::Ipv4Addr group, net::PortId port) {
  auto [it, inserted] = entries_.try_emplace(group);
  Entry& entry = it->second;
  if (inserted) {
    entry.hardware = hardware_used_ < hardware_capacity_;
    if (entry.hardware) ++hardware_used_;
  }
  if (std::find(entry.ports.begin(), entry.ports.end(), port) == entry.ports.end()) {
    entry.ports.push_back(port);
  }
  TSN_DCHECK(hardware_used_ <= hardware_capacity_,
             "hardware slot accounting cannot exceed capacity");
}

void MrouteTable::leave(net::Ipv4Addr group, net::PortId port) {
  auto it = entries_.find(group);
  if (it == entries_.end()) return;
  std::erase(it->second.ports, port);
  if (it->second.ports.empty()) {
    TSN_DCHECK(!it->second.hardware || hardware_used_ > 0,
               "releasing a hardware entry requires a slot to be in use");
    if (it->second.hardware && hardware_used_ > 0) --hardware_used_;
    entries_.erase(it);
  }
}

MrouteTable::Lookup MrouteTable::lookup(net::Ipv4Addr group) {
  auto it = entries_.find(group);
  if (it == entries_.end()) {
    ++stats_.misses;
    return {};
  }
  if (it->second.hardware) {
    ++stats_.hardware_hits;
  } else {
    ++stats_.software_hits;
  }
  return Lookup{&it->second.ports, it->second.hardware};
}

bool MrouteTable::evict(net::Ipv4Addr group) {
  auto it = entries_.find(group);
  if (it == entries_.end()) return false;
  TSN_DCHECK(!it->second.hardware || hardware_used_ > 0,
             "evicting a hardware entry requires a slot to be in use");
  if (it->second.hardware && hardware_used_ > 0) --hardware_used_;
  entries_.erase(it);
  ++stats_.evictions;
  return true;
}

void MrouteTable::reprogram() {
  // Deterministic refill: sort groups numerically, then assign hardware
  // slots from the front.
  std::vector<net::Ipv4Addr> groups;
  groups.reserve(entries_.size());
  // tsn-lint: allow(unordered-iter) order-independent: groups sorted before slots are assigned
  for (const auto& [group, entry] : entries_) groups.push_back(group);
  std::sort(groups.begin(), groups.end());
  hardware_used_ = 0;
  for (const auto& group : groups) {
    Entry& entry = entries_.at(group);
    entry.hardware = hardware_used_ < hardware_capacity_;
    if (entry.hardware) ++hardware_used_;
  }
  TSN_DCHECK(hardware_used_ <= hardware_capacity_,
             "reprogram must not oversubscribe hardware slots");
}

}  // namespace tsn::mcast
