#include "mcast/igmp.hpp"

#include "net/wire.hpp"

namespace tsn::mcast {

std::vector<std::byte> IgmpMessage::encode() const {
  std::vector<std::byte> out;
  out.reserve(8);
  net::WireWriter w{out};
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(0);  // max response time (unused for reports/leaves)
  w.u16(0);  // checksum placeholder
  w.u32(group.value());
  const std::uint16_t sum = net::internet_checksum(out);
  w.patch_u16(2, sum);
  return out;
}

std::optional<IgmpMessage> IgmpMessage::decode(std::span<const std::byte> payload) {
  if (payload.size() < 8) return std::nullopt;
  if (net::internet_checksum(payload.subspan(0, 8)) != 0) return std::nullopt;
  net::WireReader r{payload};
  IgmpMessage m;
  const std::uint8_t type = r.u8();
  r.skip(3);
  m.group = net::Ipv4Addr{r.u32()};
  if (!r.ok()) return std::nullopt;
  switch (type) {
    case 0x11:
      m.type = IgmpType::kMembershipQuery;
      break;
    case 0x16:
      m.type = IgmpType::kMembershipReport;
      break;
    case 0x17:
      m.type = IgmpType::kLeaveGroup;
      break;
    default:
      return std::nullopt;
  }
  return m;
}

std::vector<std::byte> build_igmp_frame(net::MacAddr src_mac, net::Ipv4Addr src_ip,
                                        const IgmpMessage& message) {
  const auto payload = message.encode();
  // General queries (group 0) go to the all-hosts group.
  const net::Ipv4Addr dst =
      message.group.is_multicast() ? message.group : kAllHostsGroup;
  std::vector<std::byte> frame;
  frame.reserve(net::kEthernetHeaderSize + net::kIpv4HeaderSize + payload.size() +
                net::kEthernetFcsSize);
  net::WireWriter w{frame};
  net::EthernetHeader{net::multicast_mac(dst), src_mac, net::kEtherTypeIpv4}.encode(w);
  net::Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(net::kIpv4HeaderSize + payload.size());
  ip.ttl = 1;
  ip.protocol = net::kIpProtoIgmp;
  ip.src = src_ip;
  ip.dst = dst;
  ip.encode(w);
  w.bytes(payload);
  if (frame.size() + net::kEthernetFcsSize < net::kMinEthernetFrame) {
    frame.resize(net::kMinEthernetFrame - net::kEthernetFcsSize, std::byte{0});
  }
  frame.insert(frame.end(), net::kEthernetFcsSize, std::byte{0});
  return frame;
}

std::optional<IgmpMessage> parse_igmp_frame(std::span<const std::byte> frame) {
  auto decoded = net::decode_frame(frame);
  if (!decoded || !decoded->ip || decoded->ip->protocol != net::kIpProtoIgmp) {
    return std::nullopt;
  }
  return IgmpMessage::decode(decoded->payload);
}

}  // namespace tsn::mcast
