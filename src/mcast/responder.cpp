#include "mcast/responder.hpp"

#include <algorithm>
#include <vector>

namespace tsn::mcast {

IgmpResponder::IgmpResponder(net::NetStack& stack) : stack_(stack) {
  stack_.nic().subscribe_multicast_mac(net::multicast_mac(kAllHostsGroup));
  stack_.set_igmp_handler([this](std::span<const std::byte> payload, sim::Time) {
    if (const auto message = IgmpMessage::decode(payload)) on_igmp(*message);
  });
}

void IgmpResponder::send_report(net::Ipv4Addr group) {
  stack_.nic().send_frame(build_igmp_frame(stack_.nic().mac(), stack_.nic().ip(),
                                           IgmpMessage{IgmpType::kMembershipReport, group}));
  ++reports_sent_;
}

void IgmpResponder::join(net::Ipv4Addr group) {
  if (!groups_.insert(group).second) return;
  stack_.nic().subscribe_multicast_mac(net::multicast_mac(group));
  send_report(group);
}

void IgmpResponder::leave(net::Ipv4Addr group) {
  if (groups_.erase(group) == 0) return;
  stack_.nic().unsubscribe_multicast_mac(net::multicast_mac(group));
  stack_.nic().send_frame(build_igmp_frame(stack_.nic().mac(), stack_.nic().ip(),
                                           IgmpMessage{IgmpType::kLeaveGroup, group}));
}

void IgmpResponder::on_igmp(const IgmpMessage& message) {
  if (message.type != IgmpType::kMembershipQuery) return;
  ++queries_answered_;
  // General query (group 0) refreshes everything; group-specific queries
  // refresh just that group.
  if (message.group == net::Ipv4Addr{}) {
    // Reports are wire output: send them in address order, not hash order,
    // or the frame sequence differs between runs and breaks replay.
    // tsn-lint: allow(unordered-iter) order-independent: sorted before any frame is sent
    std::vector<net::Ipv4Addr> sorted(groups_.begin(), groups_.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto group : sorted) send_report(group);
  } else if (groups_.contains(message.group)) {
    send_report(message.group);
  }
}

}  // namespace tsn::mcast
