// Minimal IGMPv2-style membership signaling.
//
// Hosts announce multicast membership in-band: a Membership Report joins a
// group, a Leave Group message leaves it. Switches snoop these messages
// (see tsn::l2::CommoditySwitch) to program their mroute tables, as real
// data-center switches do with IGMP snooping.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/addr.hpp"
#include "net/headers.hpp"

namespace tsn::mcast {

enum class IgmpType : std::uint8_t {
  kMembershipQuery = 0x11,
  kMembershipReport = 0x16,  // v2 report
  kLeaveGroup = 0x17,
};

// Destination of general queries (all-hosts).
inline constexpr net::Ipv4Addr kAllHostsGroup{224, 0, 0, 1};

struct IgmpMessage {
  IgmpType type = IgmpType::kMembershipReport;
  net::Ipv4Addr group;

  // Encodes the 8-byte IGMP payload (type, max-resp, checksum, group).
  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static std::optional<IgmpMessage> decode(std::span<const std::byte> payload);
};

// Builds a complete Ethernet frame carrying the IGMP message. Reports and
// leaves are addressed to the group itself (v2 convention; leaves really go
// to 224.0.0.2, but snooping switches accept either — we use the group so
// the snooper can attribute the message without deep inspection).
[[nodiscard]] std::vector<std::byte> build_igmp_frame(net::MacAddr src_mac, net::Ipv4Addr src_ip,
                                                      const IgmpMessage& message);

// True if the frame is an IGMP message; decodes it if so.
[[nodiscard]] std::optional<IgmpMessage> parse_igmp_frame(std::span<const std::byte> frame);

}  // namespace tsn::mcast
