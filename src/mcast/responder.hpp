// Host-side IGMP membership maintenance.
//
// One-shot joins (mcast/subscribe.hpp) are enough when switches never
// forget, but real snooping switches age entries out unless a querier
// periodically confirms receivers. IgmpResponder owns a host's multicast
// membership: it answers General Queries with a Membership Report for
// every joined group, so membership survives aging for exactly as long as
// the application holds the subscription.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "mcast/igmp.hpp"
#include "net/stack.hpp"

namespace tsn::mcast {

class IgmpResponder {
 public:
  // Installs itself as the stack's IGMP handler and subscribes the
  // all-hosts group MAC so queries reach it.
  explicit IgmpResponder(net::NetStack& stack);

  void join(net::Ipv4Addr group);
  void leave(net::Ipv4Addr group);

  [[nodiscard]] bool is_joined(net::Ipv4Addr group) const {
    return groups_.contains(group);
  }
  [[nodiscard]] std::size_t joined_count() const noexcept { return groups_.size(); }
  [[nodiscard]] std::uint64_t reports_sent() const noexcept { return reports_sent_; }
  [[nodiscard]] std::uint64_t queries_answered() const noexcept { return queries_answered_; }

 private:
  void send_report(net::Ipv4Addr group);
  void on_igmp(const IgmpMessage& message);

  net::NetStack& stack_;
  std::unordered_set<net::Ipv4Addr> groups_;
  std::uint64_t reports_sent_ = 0;
  std::uint64_t queries_answered_ = 0;
};

}  // namespace tsn::mcast
