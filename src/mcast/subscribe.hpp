// Host-side multicast membership helper: programs the NIC's hardware MAC
// filter and announces the join/leave in-band via IGMP so snooping switches
// program their mroute tables.
#pragma once

#include "mcast/igmp.hpp"
#include "net/nic.hpp"

namespace tsn::mcast {

inline void join_group(net::Nic& nic, net::Ipv4Addr group) {
  nic.subscribe_multicast_mac(net::multicast_mac(group));
  nic.send_frame(build_igmp_frame(nic.mac(), nic.ip(),
                                  IgmpMessage{IgmpType::kMembershipReport, group}));
}

inline void leave_group(net::Nic& nic, net::Ipv4Addr group) {
  nic.unsubscribe_multicast_mac(net::multicast_mac(group));
  nic.send_frame(build_igmp_frame(nic.mac(), nic.ip(),
                                  IgmpMessage{IgmpType::kLeaveGroup, group}));
}

}  // namespace tsn::mcast
