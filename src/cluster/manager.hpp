// Cluster management for trading networks (§5, Cluster Management).
//
// The paper asks for automated provisioning, placement and scaling that
// optimizes latency above other criteria while respecting bandwidth and
// application constraints (a strategy must reach the normalized feeds it
// subscribes to), plus bare-metal job migration. This module implements:
//  - latency-aware greedy placement over racks (normalizers and gateways
//    gravitate toward the exchange ToR; strategies toward the racks that
//    serve their subscriptions),
//  - the L1S subscription-cap solver (§4.3): given a per-server NIC budget,
//    decide which feeds each strategy takes on dedicated NICs and which
//    must share a merged circuit,
//  - bare-metal migration planning with estimated downtime.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace tsn::cluster {

enum class JobKind : std::uint8_t { kNormalizer, kStrategy, kGateway };

using JobId = std::uint32_t;
using ServerId = std::uint32_t;

struct Job {
  JobId id = 0;
  JobKind kind = JobKind::kStrategy;
  // Normalized partitions this job consumes (strategies) or produces
  // (normalizers).
  std::vector<std::uint32_t> partitions;
  double cpu_cores = 1.0;
};

struct Server {
  ServerId id = 0;
  std::uint32_t rack = 0;
  double cpu_capacity = 16.0;
  std::uint32_t nic_slots = 3;  // management + market data + orders
};

struct PlacementResult {
  // job id -> server id; jobs that could not be placed are absent.
  std::unordered_map<JobId, ServerId> assignment;
  std::vector<JobId> unplaced;
  // Expected switch hops from the exchange ToR to each job's rack plus
  // subscription distance, the objective the optimizer minimizes.
  double total_hop_cost = 0.0;
};

// How one strategy's subscriptions map onto its NICs in the L1S design.
struct SubscriptionPlan {
  JobId strategy = 0;
  std::vector<std::uint32_t> dedicated;  // one NIC each
  std::vector<std::uint32_t> merged;     // share the final NIC via a mux
  [[nodiscard]] bool requires_merge() const noexcept { return !merged.empty(); }
};

struct MigrationStep {
  std::string action;
  sim::Duration estimated_duration;
};

struct MigrationPlan {
  JobId job = 0;
  ServerId from = 0;
  ServerId to = 0;
  std::vector<MigrationStep> steps;
  sim::Duration total_downtime;  // time the job is not consuming its feeds
};

class ClusterManager {
 public:
  // `exchange_rack` is where the dedicated exchange ToR lives (Design 1).
  explicit ClusterManager(std::uint32_t exchange_rack = 0) noexcept
      : exchange_rack_(exchange_rack) {}

  void add_server(const Server& server);
  void add_job(const Job& job);

  [[nodiscard]] const std::vector<Server>& servers() const noexcept { return servers_; }
  [[nodiscard]] const std::vector<Job>& jobs() const noexcept { return jobs_; }

  // Greedy latency-aware placement. Normalizers and gateways fill racks
  // closest to the exchange; each strategy then picks the feasible server
  // minimizing hops to the normalizers producing its partitions.
  [[nodiscard]] PlacementResult place() const;

  // L1S subscription capping: each strategy may use at most
  // `max_feed_nics` market-data NICs. The most active partitions (by the
  // given activity weights) get dedicated NICs; the rest merge onto the
  // last NIC. Fewer NICs -> wider merges -> more burst contention (§4.3).
  [[nodiscard]] std::vector<SubscriptionPlan> plan_l1s_subscriptions(
      std::uint32_t max_feed_nics,
      const std::unordered_map<std::uint32_t, double>& partition_weight) const;

  // Bare-metal migration: drain, re-provision, re-join feeds, cut over.
  [[nodiscard]] MigrationPlan plan_migration(JobId job, ServerId to,
                                             const PlacementResult& current) const;

  // Rack distance in switch hops (1 intra-rack, 3 inter-rack: Design 1).
  [[nodiscard]] static double rack_distance(std::uint32_t a, std::uint32_t b) noexcept {
    return a == b ? 1.0 : 3.0;
  }

 private:
  std::uint32_t exchange_rack_;
  std::vector<Server> servers_;
  std::vector<Job> jobs_;
};

}  // namespace tsn::cluster
