#include "cluster/manager.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace tsn::cluster {

void ClusterManager::add_server(const Server& server) {
  for (const auto& existing : servers_) {
    if (existing.id == server.id) throw std::invalid_argument{"duplicate server id"};
  }
  servers_.push_back(server);
}

void ClusterManager::add_job(const Job& job) {
  for (const auto& existing : jobs_) {
    if (existing.id == job.id) throw std::invalid_argument{"duplicate job id"};
  }
  jobs_.push_back(job);
}

PlacementResult ClusterManager::place() const {
  PlacementResult result;
  std::unordered_map<ServerId, double> cpu_left;
  for (const auto& server : servers_) cpu_left[server.id] = server.cpu_capacity;

  // Sort servers by distance to the exchange rack (stable by id).
  std::vector<const Server*> by_proximity;
  by_proximity.reserve(servers_.size());
  for (const auto& server : servers_) by_proximity.push_back(&server);
  std::sort(by_proximity.begin(), by_proximity.end(), [this](const Server* a, const Server* b) {
    const double da = rack_distance(a->rack, exchange_rack_);
    const double db = rack_distance(b->rack, exchange_rack_);
    if (da != db) return da < db;
    return a->id < b->id;
  });

  // Phase 1: normalizers and gateways hug the exchange. Track which rack
  // produces each partition for phase 2.
  std::unordered_map<std::uint32_t, std::uint32_t> partition_rack;
  auto place_near_exchange = [&](const Job& job) {
    for (const Server* server : by_proximity) {
      if (cpu_left[server->id] >= job.cpu_cores) {
        cpu_left[server->id] -= job.cpu_cores;
        result.assignment[job.id] = server->id;
        result.total_hop_cost += rack_distance(server->rack, exchange_rack_);
        if (job.kind == JobKind::kNormalizer) {
          for (const std::uint32_t p : job.partitions) partition_rack[p] = server->rack;
        }
        return true;
      }
    }
    return false;
  };

  for (const auto& job : jobs_) {
    if (job.kind == JobKind::kStrategy) continue;
    if (!place_near_exchange(job)) result.unplaced.push_back(job.id);
  }

  // Phase 2: each strategy minimizes the hop cost to its subscriptions
  // (and, secondarily, to the exchange for its order path).
  for (const auto& job : jobs_) {
    if (job.kind != JobKind::kStrategy) continue;
    const Server* best = nullptr;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const auto& server : servers_) {
      if (cpu_left[server.id] < job.cpu_cores) continue;
      double cost = 0.1 * rack_distance(server.rack, exchange_rack_);
      for (const std::uint32_t p : job.partitions) {
        const auto it = partition_rack.find(p);
        cost += it == partition_rack.end() ? 3.0 : rack_distance(server.rack, it->second);
      }
      if (cost < best_cost || (cost == best_cost && best != nullptr && server.id < best->id)) {
        best_cost = cost;
        best = &server;
      }
    }
    if (best == nullptr) {
      result.unplaced.push_back(job.id);
      continue;
    }
    cpu_left[best->id] -= job.cpu_cores;
    result.assignment[job.id] = best->id;
    result.total_hop_cost += best_cost;
  }
  return result;
}

std::vector<SubscriptionPlan> ClusterManager::plan_l1s_subscriptions(
    std::uint32_t max_feed_nics,
    const std::unordered_map<std::uint32_t, double>& partition_weight) const {
  if (max_feed_nics == 0) throw std::invalid_argument{"need at least one feed NIC"};
  std::vector<SubscriptionPlan> plans;
  for (const auto& job : jobs_) {
    if (job.kind != JobKind::kStrategy) continue;
    SubscriptionPlan plan;
    plan.strategy = job.id;
    if (job.partitions.size() <= max_feed_nics) {
      plan.dedicated = job.partitions;
      plans.push_back(std::move(plan));
      continue;
    }
    // Busiest partitions get dedicated NICs — merging the hottest feeds is
    // what blows the merged link's budget during correlated bursts.
    std::vector<std::uint32_t> sorted = job.partitions;
    std::sort(sorted.begin(), sorted.end(), [&](std::uint32_t a, std::uint32_t b) {
      const auto wa = partition_weight.count(a) != 0 ? partition_weight.at(a) : 0.0;
      const auto wb = partition_weight.count(b) != 0 ? partition_weight.at(b) : 0.0;
      if (wa != wb) return wa > wb;
      return a < b;
    });
    // Reserve the last NIC for the merge.
    const std::size_t dedicated_count = max_feed_nics - 1;
    plan.dedicated.assign(sorted.begin(),
                          sorted.begin() + static_cast<std::ptrdiff_t>(dedicated_count));
    plan.merged.assign(sorted.begin() + static_cast<std::ptrdiff_t>(dedicated_count),
                       sorted.end());
    plans.push_back(std::move(plan));
  }
  return plans;
}

MigrationPlan ClusterManager::plan_migration(JobId job, ServerId to,
                                             const PlacementResult& current) const {
  const auto it = current.assignment.find(job);
  if (it == current.assignment.end()) throw std::invalid_argument{"job is not placed"};
  const Job* spec = nullptr;
  for (const auto& j : jobs_) {
    if (j.id == job) spec = &j;
  }
  if (spec == nullptr) throw std::invalid_argument{"unknown job"};

  MigrationPlan plan;
  plan.job = job;
  plan.from = it->second;
  plan.to = to;
  // Bare metal: no live migration — provision, warm, re-join, cut over.
  plan.steps = {
      {"provision target server (image, tuning, NIC setup)", sim::seconds(std::int64_t{90})},
      {"warm start application and replay state", sim::seconds(std::int64_t{20})},
      {"join multicast feeds on target and verify gap-free reception",
       sim::millis(std::int64_t{500})},
      {"drain in-flight orders on source", sim::millis(std::int64_t{250})},
      {"cut over (stop source, promote target)", sim::millis(std::int64_t{50})},
  };
  // Only the drain + cutover take the job offline; joins overlap with the
  // source still serving.
  plan.total_downtime = sim::millis(std::int64_t{300});
  return plan;
}

}  // namespace tsn::cluster
